//! Serving queries concurrently: one shared engine, a Zipf-skewed crowd of users, a result
//! cache — and the throughput ratio against serving the same workload serially.
//!
//! Run with: `cargo run -p skyline-service --release --example concurrent_users`

use skyline::prelude::*;
use skyline_service::{ServiceConfig, SkylineService};
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<()> {
    // A scaled-down Table 4 configuration: anti-correlated numerics, Zipfian nominals.
    let config = ExperimentConfig {
        n: 4_000,
        ..ExperimentConfig::paper_default()
    };
    let data = Arc::new(config.generate_dataset());
    let template = config.template(&data);
    println!(
        "dataset: {} tuples, {} numeric + {} nominal dimensions",
        data.len(),
        config.numeric_dims,
        config.nominal_dims
    );

    // One build serves everyone: the engine is Send + Sync.
    let engine = SkylineEngine::build(data, template.clone(), EngineConfig::Hybrid { top_k: 10 })?;

    // A multi-user workload: 2000 queries drawn from a pool of 64 preference profiles with
    // Zipf(θ=1) popularity — a few profiles are asked over and over, as in production.
    let mut generator = config.query_generator();
    let queries = generator.zipf_workload(
        engine.dataset().schema(),
        &template,
        config.pref_order,
        64,
        2_000,
        1.0,
    );
    let engine = SharedEngine::new(engine);

    // Serial baseline: every query runs the engine from scratch.
    let started = Instant::now();
    {
        let engine = engine.read();
        for q in &queries {
            engine.query(q)?;
        }
    }
    let serial = started.elapsed();
    println!(
        "serial engine     : {:>8.1} ms  ({:.0} queries/s)",
        serial.as_secs_f64() * 1e3,
        queries.len() as f64 / serial.as_secs_f64()
    );

    // Concurrent service: worker pool + canonical-preference result cache.
    let service = SkylineService::with_config(engine, ServiceConfig::default());
    let started = Instant::now();
    let answers = service.serve_batch(&queries);
    let batched = started.elapsed();
    let errors = answers.iter().filter(|a| a.is_err()).count();
    assert_eq!(errors, 0, "every query must be served");

    let stats = service.stats();
    println!(
        "concurrent service: {:>8.1} ms  ({:.0} queries/s) on {} workers",
        batched.as_secs_f64() * 1e3,
        queries.len() as f64 / batched.as_secs_f64(),
        service.workers()
    );
    println!(
        "cache: {:.1}% hit rate ({} hits / {} misses), {} entries resident",
        100.0 * stats.hit_rate(),
        stats.hits,
        stats.misses,
        service.cache_len()
    );
    println!("latency: p50 ≤ {:?}, p99 ≤ {:?}", stats.p50, stats.p99);
    println!(
        "speedup: {:.1}× over serial serving",
        serial.as_secs_f64() / batched.as_secs_f64()
    );
    Ok(())
}
