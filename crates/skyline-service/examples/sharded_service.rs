//! Sharded scatter-gather serving end-to-end: the dataset is hash-partitioned across four
//! independently maintained engines, queries scatter to per-shard skylines in parallel and
//! gather through a cross-shard dominance merge, mutations route to exactly one shard (and
//! invalidate exactly what they must, thanks to the epoch-*vector* cache tag), and one
//! shared build pool compacts every shard under a global in-flight cap.
//!
//! Run with: `cargo run -p skyline-service --release --example sharded_service`

use skyline::prelude::*;
use skyline_service::{GlobalRowId, ShardPartition, ShardedConfig, ShardedService};
use std::time::{Duration, Instant};

fn main() -> Result<()> {
    // A scaled-down Table 4 configuration: anti-correlated numerics, Zipfian nominals.
    let config = ExperimentConfig {
        n: 8_000,
        ..ExperimentConfig::paper_default()
    };
    let data = config.generate_dataset();
    let template = config.template(&data);
    let schema = data.schema().clone();

    // Four shards, hash-partitioned on the first nominal dimension, per-shard Adaptive-SFS
    // engines, and a shared two-thread build pool allowed one concurrent rebuild.
    let service = ShardedService::build(
        &data,
        template.clone(),
        EngineConfig::AdaptiveSfs,
        ShardedConfig {
            shards: 4,
            partition: ShardPartition::HashNominal { dim: 0 },
            maintenance: Some(MaintenancePolicy {
                dead_row_ratio: 0.10,
                max_mutations_since_rebuild: u64::MAX,
                poll_interval: Duration::from_millis(10),
            }),
            build_threads: 2,
            max_in_flight_builds: 1,
            ..ShardedConfig::default()
        },
    )?;
    print!(
        "dataset: {} tuples over {} shards of",
        data.len(),
        service.shard_count()
    );
    for s in 0..service.shard_count() {
        print!(" {}", service.shard(s).read().dataset().len());
    }
    println!(" rows (hash on the first nominal dimension)");

    // Scatter-gather: one query fans out to all four engines; the union property
    // SKY(D₁ ∪ … ∪ D₄) ⊆ SKY(D₁) ∪ … ∪ SKY(D₄) makes the per-shard skylines a complete
    // candidate set, and the dominance merge removes cross-shard losers.
    let mut generator = config.query_generator();
    let pref = generator.random_preference(&schema, &template, config.pref_order, None);
    let served = service.serve(&pref)?;
    println!(
        "scatter-gather: {} skyline rows merged from 4 per-shard skylines \
         (methods: {:?}, {:.2} ms cold)",
        served.outcome.skyline.len(),
        served.outcome.methods,
        served.latency.as_secs_f64() * 1e3
    );
    assert!(
        service.serve(&pref)?.cache_hit,
        "second serve hits the cache"
    );

    // A mixed read/write Zipf stream: every write routes to one shard's engine and bumps
    // only that shard's epoch. Deletes address rows by logical insertion order, so keep the
    // logical → global mapping the initial partitioning induced.
    let mut rows: Vec<Option<GlobalRowId>> =
        ShardedService::partition_rows(service.partition(), service.shard_count(), &data)
            .into_iter()
            .map(Some)
            .collect();
    let ops = generator.mixed_workload(
        &schema,
        &template,
        config.pref_order,
        32,    // preference pool
        1_000, // operations
        config.theta,
        0.10, // ~10% writes
        data.len(),
    );
    let (mut queries, mut writes) = (0u64, 0u64);
    let started = Instant::now();
    for op in &ops {
        match op {
            WorkloadOp::Query(pref) => {
                service.serve(pref)?;
                queries += 1;
            }
            WorkloadOp::Insert { numeric, nominal } => {
                rows.push(Some(service.insert_row(numeric, nominal)?));
                writes += 1;
            }
            WorkloadOp::Delete { row } => {
                if let Some(id) = rows[*row as usize].take() {
                    service.delete_row(id)?;
                }
                writes += 1;
            }
        }
    }
    let elapsed = started.elapsed();
    let stats = service.stats();
    println!(
        "mixed stream: {queries} queries + {writes} writes in {:.1} ms — \
         {:.1}% cache hit rate, {} stale entries expired",
        elapsed.as_secs_f64() * 1e3,
        100.0 * stats.hit_rate(),
        stats.stale_evictions
    );

    // The shared build pool compacts shards on its own: push every shard's dead-row ratio
    // over the policy threshold and each gets rebuilt by one of the two pool threads (never
    // more than one rebuild in flight at once). Delete ~12% of each shard's rows, then wait
    // for the queues to drain.
    let mut to_delete: Vec<usize> = service
        .epochs()
        .iter()
        .enumerate()
        .map(|(s, _)| service.shard(s).read().live_rows() * 12 / 100)
        .collect();
    for slot in rows.iter_mut() {
        if let Some(id) = *slot {
            if to_delete[id.shard] > 0 {
                service.delete_row(id)?;
                *slot = None;
                to_delete[id.shard] -= 1;
            }
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.epochs().iter().enumerate().any(|(s, _)| {
        let engine = service.shard(s).read();
        engine.dead_rows() as f64 > 0.10 * engine.dataset().len().max(1) as f64
    }) {
        assert!(Instant::now() < deadline, "build pool never caught up");
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = service.stats();
    println!(
        "shared build pool: {} rebuild(s) across the shards, {} dead rows physically \
         reclaimed, epochs now {:?}",
        stats.rebuilds,
        stats.reclaimed_rows,
        service.epochs().iter().map(|e| e.get()).collect::<Vec<_>>()
    );

    // Generation swaps keep the merged cache warm: cache a fresh answer, force every shard
    // through a rebuild (row ids renumber on each shard independently), and serve again —
    // the entry is translated through each shard's remap chain instead of recomputed.
    let pref = generator.random_preference(&schema, &template, config.pref_order, None);
    service.serve(&pref)?;
    service.force_rebuild_all()?;
    let after = service.serve(&pref)?;
    println!(
        "after force-rebuilding all shards: cache_hit={} (translated per shard, \
         {} remapped hit(s) total, {} unrecoverable remap miss(es))",
        after.cache_hit,
        service.stats().remapped_hits,
        service.stats().remap_misses
    );
    Ok(())
}
