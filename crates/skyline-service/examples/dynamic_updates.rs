//! Dynamic datasets end-to-end: rows are inserted and sold-out rows deleted while a
//! cache-backed service keeps answering — every mutation bumps the dataset epoch, which
//! atomically invalidates the cached skylines (no flush; stale entries expire lazily), and
//! the Adaptive-SFS engine absorbs each update incrementally instead of rebuilding.
//!
//! The second half shows the **generational lifecycle**: a mutated hybrid engine falls back
//! to Adaptive SFS for every query (its truncated IPO tree is stale), until the background
//! maintenance worker compacts the dataset — physically reclaiming tombstoned rows — and
//! re-materializes the tree, after which popular queries are tree-served again.
//!
//! Run with: `cargo run -p skyline-service --release --example dynamic_updates`

use skyline::prelude::*;
use skyline_service::{ServiceConfig, SkylineService};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> Result<()> {
    // A scaled-down Table 4 configuration: anti-correlated numerics, Zipfian nominals.
    let config = ExperimentConfig {
        n: 4_000,
        ..ExperimentConfig::paper_default()
    };
    let data = Arc::new(config.generate_dataset());
    let template = config.template(&data);
    let schema = data.schema().clone();
    println!(
        "dataset: {} tuples, {} numeric + {} nominal dimensions",
        data.len(),
        config.numeric_dims,
        config.nominal_dims
    );

    let engine = SkylineEngine::build(data, template.clone(), EngineConfig::AdaptiveSfs)?;
    let service = SkylineService::with_config(engine, ServiceConfig::default());

    // A mixed read/write stream: Zipf-skewed queries with inserts and deletes interleaved.
    let mut generator = config.query_generator();
    let ops = generator.mixed_workload(
        &schema,
        &template,
        config.pref_order,
        32,    // preference pool
        1_000, // operations
        config.theta,
        0.10, // ~10% writes
        service.engine().read().dataset().len(),
    );
    let (mut queries, mut inserts, mut deletes) = (0u64, 0u64, 0u64);
    let started = Instant::now();
    for op in &ops {
        match op {
            WorkloadOp::Query(pref) => {
                service.serve(pref)?;
                queries += 1;
            }
            WorkloadOp::Insert { numeric, nominal } => {
                service.insert_row(numeric, nominal)?;
                inserts += 1;
            }
            WorkloadOp::Delete { row } => {
                service.delete_row(*row)?;
                deletes += 1;
            }
        }
    }
    let elapsed = started.elapsed();
    let stats = service.stats();
    println!(
        "served {queries} queries with {inserts} inserts + {deletes} deletes interleaved \
         in {:.1} ms",
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "cache: {:.1}% hit rate, {} mutations, {} stale entries lazily expired",
        100.0 * stats.hit_rate(),
        stats.mutations,
        stats.stale_evictions
    );
    println!(
        "engine: epoch {}, {} live rows",
        service.epoch().get(),
        service.engine().read().live_rows()
    );

    // Why incremental maintenance matters: absorb 64 inserts one at a time vs. one full
    // rebuild at the same size. (An all-write stream from an empty dataset is roughly half
    // inserts and half deletes, so over-generate and keep the first 64 inserts.)
    let engine = service.engine();
    let mut generator = QueryGenerator::new(7);
    let fresh_rows: Vec<WorkloadOp> = generator
        .mixed_workload(
            &schema,
            &template,
            config.pref_order,
            1,
            64 * 3,
            1.0,
            1.0,
            0,
        )
        .into_iter()
        .filter(|op| matches!(op, WorkloadOp::Insert { .. }))
        .take(64)
        .collect();
    assert_eq!(fresh_rows.len(), 64);

    let started = Instant::now();
    for op in &fresh_rows {
        if let WorkloadOp::Insert { numeric, nominal } = op {
            engine.write().insert_row(numeric, nominal)?;
        }
    }
    let incremental = started.elapsed();

    let snapshot = engine.read().dataset_arc().clone();
    let started = Instant::now();
    let rebuilt = SkylineEngine::build(snapshot, template.clone(), EngineConfig::AdaptiveSfs)?;
    let rebuild = started.elapsed();
    println!(
        "{} incremental inserts: {:.2} ms total; ONE full rebuild at this size: {:.2} ms",
        fresh_rows.len(),
        incremental.as_secs_f64() * 1e3,
        rebuild.as_secs_f64() * 1e3
    );
    drop(rebuilt);

    // ---- The generational lifecycle: a hybrid engine recovering its IPO tree. ----
    println!("\n-- background maintenance on a hybrid engine --");
    let config = ExperimentConfig {
        n: 2_000,
        ..ExperimentConfig::paper_default()
    };
    let data = Arc::new(config.generate_dataset());
    let template = config.template(&data);
    // `top_k` = the full cardinality keeps the demo deterministic: a truncated tree's top-k
    // *values* can shift when deletions move the frequency ranking, in which case a
    // previously popular preference may (correctly) stay on the fallback after the rebuild.
    let hybrid = SharedEngine::new(SkylineEngine::build(
        data.clone(),
        template.clone(),
        EngineConfig::Hybrid { top_k: 20 },
    )?);
    // Production settings would use something like `dead_row_ratio: 0.25` and
    // `max_mutations_since_rebuild: 4096` (the defaults) and let the worker fire on its own;
    // this demo keeps the thresholds out of reach and triggers the cycle explicitly so the
    // before/after states are deterministic to read.
    let service = SkylineService::with_config(
        hybrid.clone(),
        ServiceConfig {
            maintenance: Some(MaintenancePolicy {
                dead_row_ratio: 1.0,
                max_mutations_since_rebuild: u64::MAX,
                poll_interval: Duration::from_millis(20),
            }),
            ..ServiceConfig::default()
        },
    );
    // A popular preference the truncated tree fully materializes (tree-served when fresh).
    let mut generator = config.query_generator();
    let popular = generator
        .random_preferences(data.schema(), &template, config.pref_order, 64, None)
        .into_iter()
        .find(|p| hybrid.read().serves_from_tree(p))
        .expect("some generated preference is fully materialized");
    assert_eq!(
        service.serve(&popular)?.outcome.method,
        MethodUsed::IpoTree,
        "fresh hybrid: tree-served"
    );

    // Mutations stale the tree: every query now routes to the Adaptive-SFS fallback, and
    // tombstones pile up in the block.
    for p in 0..100u32 {
        service.delete_row(p)?;
    }
    assert_eq!(
        service.serve(&popular)?.outcome.method,
        MethodUsed::AdaptiveSfs,
        "mutated hybrid: fallback-served"
    );
    println!(
        "after 100 deletes: {} dead rows in the block, queries fallback-served",
        hybrid.read().dead_rows()
    );

    // Run one rebuild cycle on the worker thread: snapshot → compact + re-materialize with
    // no lock held (readers keep serving) → atomic swap.
    assert!(service.force_rebuild()?);
    // The answer cached just before the swap survives it: the service translates its row ids
    // through the published remap instead of recomputing.
    let served = service.serve(&popular)?;
    assert!(served.cache_hit, "the swap keeps the cache warm");
    // And the engine itself serves popular preferences from the re-materialized tree again
    // (engine introspection — the hybrid's routing predicate, not timing).
    assert!(hybrid.read().serves_from_tree(&popular));
    assert_eq!(
        hybrid.read().query(&popular)?.method,
        MethodUsed::IpoTree,
        "rebuilt hybrid: tree-served again"
    );
    let stats = service.stats();
    println!(
        "after {} background rebuild(s): {} rows physically reclaimed, {} dead rows left, \
         fresh evaluations tree-served again",
        stats.rebuilds,
        stats.reclaimed_rows,
        hybrid.read().dead_rows(),
    );
    println!(
        "cache after the swap: {} entr{} translated through the row-id remap instead of dropped",
        stats.remapped_hits,
        if stats.remapped_hits == 1 { "y" } else { "ies" }
    );
    Ok(())
}
