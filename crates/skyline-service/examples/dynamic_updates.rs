//! Dynamic datasets end-to-end: rows are inserted and sold-out rows deleted while a
//! cache-backed service keeps answering — every mutation bumps the dataset epoch, which
//! atomically invalidates the cached skylines (no flush; stale entries expire lazily), and
//! the Adaptive-SFS engine absorbs each update incrementally instead of rebuilding.
//!
//! Run with: `cargo run -p skyline-service --release --example dynamic_updates`

use skyline::prelude::*;
use skyline_service::{ServiceConfig, SkylineService};
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<()> {
    // A scaled-down Table 4 configuration: anti-correlated numerics, Zipfian nominals.
    let config = ExperimentConfig {
        n: 4_000,
        ..ExperimentConfig::paper_default()
    };
    let data = Arc::new(config.generate_dataset());
    let template = config.template(&data);
    let schema = data.schema().clone();
    println!(
        "dataset: {} tuples, {} numeric + {} nominal dimensions",
        data.len(),
        config.numeric_dims,
        config.nominal_dims
    );

    let engine = SkylineEngine::build(data, template.clone(), EngineConfig::AdaptiveSfs)?;
    let service = SkylineService::with_config(engine, ServiceConfig::default());

    // A mixed read/write stream: Zipf-skewed queries with inserts and deletes interleaved.
    let mut generator = config.query_generator();
    let ops = generator.mixed_workload(
        &schema,
        &template,
        config.pref_order,
        32,    // preference pool
        1_000, // operations
        config.theta,
        0.10, // ~10% writes
        service.engine().read().dataset().len(),
    );
    let (mut queries, mut inserts, mut deletes) = (0u64, 0u64, 0u64);
    let started = Instant::now();
    for op in &ops {
        match op {
            WorkloadOp::Query(pref) => {
                service.serve(pref)?;
                queries += 1;
            }
            WorkloadOp::Insert { numeric, nominal } => {
                service.insert_row(numeric, nominal)?;
                inserts += 1;
            }
            WorkloadOp::Delete { row } => {
                service.delete_row(*row)?;
                deletes += 1;
            }
        }
    }
    let elapsed = started.elapsed();
    let stats = service.stats();
    println!(
        "served {queries} queries with {inserts} inserts + {deletes} deletes interleaved \
         in {:.1} ms",
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "cache: {:.1}% hit rate, {} mutations, {} stale entries lazily expired",
        100.0 * stats.hit_rate(),
        stats.mutations,
        stats.stale_evictions
    );
    println!(
        "engine: epoch {}, {} live rows",
        service.epoch().get(),
        service.engine().read().live_rows()
    );

    // Why incremental maintenance matters: absorb 64 inserts one at a time vs. one full
    // rebuild at the same size. (An all-write stream from an empty dataset is roughly half
    // inserts and half deletes, so over-generate and keep the first 64 inserts.)
    let engine = service.engine();
    let mut generator = QueryGenerator::new(7);
    let fresh_rows: Vec<WorkloadOp> = generator
        .mixed_workload(
            &schema,
            &template,
            config.pref_order,
            1,
            64 * 3,
            1.0,
            1.0,
            0,
        )
        .into_iter()
        .filter(|op| matches!(op, WorkloadOp::Insert { .. }))
        .take(64)
        .collect();
    assert_eq!(fresh_rows.len(), 64);

    let started = Instant::now();
    for op in &fresh_rows {
        if let WorkloadOp::Insert { numeric, nominal } = op {
            engine.write().insert_row(numeric, nominal)?;
        }
    }
    let incremental = started.elapsed();

    let snapshot = engine.read().dataset_arc().clone();
    let started = Instant::now();
    let rebuilt = SkylineEngine::build(snapshot, template.clone(), EngineConfig::AdaptiveSfs)?;
    let rebuild = started.elapsed();
    println!(
        "{} incremental inserts: {:.2} ms total; ONE full rebuild at this size: {:.2} ms",
        fresh_rows.len(),
        incremental.as_secs_f64() * 1e3,
        rebuild.as_secs_f64() * 1e3
    );
    drop(rebuilt);
    Ok(())
}
