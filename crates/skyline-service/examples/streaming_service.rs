//! Progressive skyline serving end-to-end: time-to-first-row vs whole-answer latency,
//! stream coalescing on the single-flight latch, and a sharded scatter that keeps emitting
//! while one shard is slow — or drops out entirely.
//!
//! Run with: `cargo run -p skyline-service --release --example streaming_service`
//!
//! The fault injector arms itself from the `SKYLINE_FAULTS` environment variable at build
//! time — the same grammar this example feeds to `delay_shard_query` by hand:
//!
//! ```text
//! SKYLINE_FAULTS="delay-on-shard-query=0:40" \
//!     cargo run -p skyline-service --release --example streaming_service
//! ```

use skyline::prelude::*;
use skyline_service::{
    DegradePolicy, RecoveryPolicy, ServiceConfig, ShardedConfig, ShardedService, SkylineService,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> Result<()> {
    let config = ExperimentConfig {
        n: 60_000,
        ..ExperimentConfig::paper_default()
    };
    let data = config.generate_dataset();
    let template = config.template(&data);
    let schema = data.schema().clone();
    let mut generator = config.query_generator();

    // ── Progressive vs batch on one engine ────────────────────────────────────────────
    // `serve_streaming` hands out each skyline member as soon as it is confirmed — in
    // ascending query-score order, never retracted — instead of materializing the whole
    // answer first. The first row is typically ready orders of magnitude before the last.
    let engine = SkylineEngine::build(
        Arc::new(data.clone()),
        template.clone(),
        EngineConfig::AdaptiveSfs,
    )?;
    let service = SkylineService::with_config(
        SharedEngine::new(engine),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let pref = generator.random_preference(&schema, &template, config.pref_order, None);

    let started = Instant::now();
    let mut stream = service.serve_streaming(&pref)?;
    let first = stream.next_row()?.expect("non-empty skyline");
    let ttfr = started.elapsed();
    let mut rows = vec![first];
    rows.extend(stream.collect_rows()?);
    let total = started.elapsed();
    println!(
        "single engine, n={}: first row in {:.2} ms, all {} rows in {:.2} ms \
         ({}x the wait for a batch answer)",
        data.len(),
        ttfr.as_secs_f64() * 1e3,
        rows.len(),
        total.as_secs_f64() * 1e3,
        (total.as_secs_f64() / ttfr.as_secs_f64().max(1e-9)).round() as u64,
    );

    // ── Stream coalescing ─────────────────────────────────────────────────────────────
    // A second stream for the same (preference, epoch) joins the in-flight leader instead
    // of running the engine again: it taps the leader's shared row log, replaying the
    // confirmed prefix instantly and then following row by row. If the leader dies
    // mid-stream the tap recomputes the remainder itself — it never inherits the failure.
    let pref = generator.random_preference(&schema, &template, config.pref_order, None);
    let mut leader = service.serve_streaming(&pref)?;
    let mut tap = service.serve_streaming(&pref)?;
    let lead_rows = [leader.next_row()?, leader.next_row()?];
    let tap_rows = [tap.next_row()?, tap.next_row()?];
    assert_eq!(lead_rows, tap_rows, "a tap replays the leader's prefix");
    drop(leader); // the tap survives the leader's death and finishes on its own
    let rest = tap.collect_rows()?;
    let stats = service.stats();
    println!(
        "coalescing: {} streams started, {} coalesced, tap finished {} rows after its \
         leader was dropped (ttfr p50 {:.2} ms)",
        stats.streams_started,
        stats.stream_coalesced,
        tap_rows.len() + rest.len(),
        stats.ttfr_p50.as_secs_f64() * 1e3,
    );

    // ── Sharded streaming with a slow shard ───────────────────────────────────────────
    // Per-shard engine streams feed a cross-shard progressive merger: a row is published
    // once it has survived dominance against every shard's emitted-so-far prefix, long
    // before the slowest shard finishes its scan. Here shard 0 is slowed 40 ms (the same
    // failpoint `SKYLINE_FAULTS=delay-on-shard-query=0:40` arms from the environment).
    let sharded = ShardedService::build(
        &data,
        template.clone(),
        EngineConfig::AdaptiveSfs,
        ShardedConfig {
            shards: 4,
            workers: 4,
            degrade: DegradePolicy::Tolerate { max_degraded: 1 },
            recovery: RecoveryPolicy {
                max_attempts: 5,
                initial_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(50),
            },
            ..ShardedConfig::default()
        },
    )?;
    if !sharded.fault_injector().is_armed() {
        sharded
            .fault_injector()
            .delay_shard_query(0, Duration::from_millis(40));
    }
    let pref = generator.random_preference(&schema, &template, config.pref_order, None);
    let started = Instant::now();
    let mut stream = sharded.serve_streaming(&pref)?;
    let first = stream.next_row()?.expect("non-empty skyline");
    let ttfr = started.elapsed();
    let mut rows = vec![first];
    rows.extend(stream.collect_rows()?);
    let total = started.elapsed();
    sharded.fault_injector().clear();
    println!(
        "4 shards, shard 0 delayed 40 ms: first row {:?} in {:.2} ms, all {} rows in \
         {:.2} ms",
        first,
        ttfr.as_secs_f64() * 1e3,
        rows.len(),
        total.as_secs_f64() * 1e3,
    );

    // ── A shard dying mid-scatter degrades the stream, not the service ────────────────
    // An injected panic quarantines shard 1 at stream construction; under the tolerant
    // policy the remaining shards keep streaming and the answer is flagged — and never
    // cached. The quarantined shard heals through the backoff rebuild as usual.
    sharded
        .fault_injector()
        .arm_from_spec("panic-on-shard-query=1:1");
    let pref = generator.random_preference(&schema, &template, config.pref_order, None);
    let stream = sharded.serve_streaming(&pref)?;
    let degraded = stream.degraded_shards().to_vec();
    let rows = stream.collect_rows()?;
    println!(
        "degraded stream: shards {:?} missing, {} rows from the healthy shards, \
         quarantined={:?}",
        degraded,
        rows.len(),
        sharded.quarantined_shards(),
    );
    Ok(())
}
