//! Persistence and instant cold start, end-to-end: build a sharded service the expensive
//! way (template scoring, Adaptive-SFS sort, IPO-tree construction), write its per-shard
//! binary snapshots, kill the process state by dropping the service, rehydrate a fresh
//! service from the snapshot files alone, and serve — printing the rebuild-vs-load wall
//! time the snapshot format exists to win.
//!
//! Run with: `cargo run -p skyline-service --release --example snapshot_bootstrap`

use skyline::prelude::*;
use skyline_service::{ShardedConfig, ShardedService};
use std::time::Instant;

fn main() -> Result<()> {
    // A scaled-down Table 4 configuration: anti-correlated numerics, Zipfian nominals.
    let config = ExperimentConfig {
        n: 20_000,
        ..ExperimentConfig::paper_default()
    };
    let data = config.generate_dataset();
    let template = config.template(&data);
    let schema = data.schema().clone();
    let sharded = ShardedConfig {
        shards: 2,
        workers: 2,
        ..ShardedConfig::default()
    };

    // 1. Build: the full preprocessing pipeline, per shard — this is the cost a restart
    //    pays every time when the only durable state is the raw rows.
    let started = Instant::now();
    let service = ShardedService::build(
        &data,
        template.clone(),
        EngineConfig::Hybrid { top_k: 10 },
        sharded.clone(),
    )?;
    let build_elapsed = started.elapsed();
    println!(
        "build:  {} tuples preprocessed into {} hybrid shards in {:.1} ms",
        data.len(),
        service.shard_count(),
        build_elapsed.as_secs_f64() * 1e3
    );

    let mut generator = config.query_generator();
    let pref = generator.random_preference(&schema, &template, config.pref_order, None);
    let before = service.serve(&pref)?;
    println!(
        "serve:  {} skyline rows from the built service",
        before.outcome.skyline.len()
    );

    // 2. Write: one versioned, checksummed `shard-NNNN.snap` per shard. With
    //    `ShardedConfig::snapshot_dir` set, the build pool rewrites these automatically
    //    after every generation swap; here we write explicitly.
    let dir =
        std::env::temp_dir().join(format!("skyline-snapshot-bootstrap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let started = Instant::now();
    let files = service.write_snapshots(&dir)?;
    let mut total_bytes = 0u64;
    for path in &files {
        total_bytes += std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    }
    println!(
        "write:  {} snapshot files ({} KiB) in {:.1} ms",
        files.len(),
        total_bytes / 1024,
        started.elapsed().as_secs_f64() * 1e3
    );

    // 3. Kill: drop every in-memory structure. Only the snapshot files survive.
    let expected = before.outcome.skyline.len();
    drop(service);

    // 4. Reload: rehydrate columns, the sorted Adaptive-SFS list and the IPO-tree bitmaps
    //    directly from the files — no re-scoring, no re-sorting, no tree construction.
    let started = Instant::now();
    let revived = ShardedService::from_snapshots(&dir, sharded)?;
    let load_elapsed = started.elapsed();
    println!(
        "load:   {} shards rehydrated from snapshots in {:.1} ms",
        revived.shard_count(),
        load_elapsed.as_secs_f64() * 1e3
    );

    // 5. Serve: the revived service answers exactly like the one that wrote the files.
    let after = revived.serve(&pref)?;
    assert_eq!(
        after.outcome.skyline.len(),
        expected,
        "snapshot-loaded service must answer like the built one"
    );
    let stats = revived.stats();
    println!(
        "serve:  {} skyline rows from the revived service \
         (stats: {} snapshot loads, {} ms load, {} ms preprocess)",
        after.outcome.skyline.len(),
        stats.snapshot_loads,
        stats.snapshot_load_ms,
        stats.preprocess_build_ms
    );
    println!(
        "cold start: rebuild {:.1} ms vs snapshot load {:.1} ms — {:.1}x",
        build_elapsed.as_secs_f64() * 1e3,
        load_elapsed.as_secs_f64() * 1e3,
        build_elapsed.as_secs_f64() / load_elapsed.as_secs_f64()
    );

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
