//! Robust serving end-to-end: deadlines and cancellation, bounded admission with load
//! shedding, deterministic fault injection, shard quarantine with degraded answers, and
//! recovery through the backoff rebuild.
//!
//! Run with: `cargo run -p skyline-service --release --example overload_and_faults`
//!
//! The fault injector also arms itself from the `SKYLINE_FAULTS` environment variable at
//! build time — the same grammar this example feeds to `arm_from_spec` by hand:
//!
//! ```text
//! SKYLINE_FAULTS="panic-on-shard-query=1:1,delay-on-shard-query=0:25" \
//!     cargo run -p skyline-service --release --example overload_and_faults
//! ```

use skyline::prelude::*;
use skyline_core::{CancelToken, Deadline};
use skyline_service::{
    DegradePolicy, RecoveryPolicy, ShardPartition, ShardedConfig, ShardedService,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn main() -> Result<()> {
    let config = ExperimentConfig {
        n: 6_000,
        ..ExperimentConfig::paper_default()
    };
    let data = config.generate_dataset();
    let template = config.template(&data);
    let schema = data.schema().clone();

    // Three shards under a *tolerant* degrade policy: up to one shard may drop out of a
    // gather and the service still answers (flagged, never cached). The admission queue
    // holds two requests; everything beyond that is shed with `Overloaded` instead of
    // queueing without bound. A quarantined shard is retried with exponential backoff.
    let service = Arc::new(ShardedService::build(
        &data,
        template.clone(),
        EngineConfig::AdaptiveSfs,
        ShardedConfig {
            shards: 3,
            partition: ShardPartition::HashNominal { dim: 0 },
            // One scatter worker per shard: the injected 30 ms delay below must stall only
            // its own shard, not a worker another shard's query is queued behind.
            workers: 3,
            admission_depth: 2,
            degrade: DegradePolicy::Tolerate { max_degraded: 1 },
            recovery: RecoveryPolicy {
                max_attempts: 5,
                initial_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(50),
            },
            ..ShardedConfig::default()
        },
    )?);
    println!(
        "service: {} tuples over {} shards, admission depth 2, tolerate ≤1 degraded shard \
         (SKYLINE_FAULTS armed: {})",
        data.len(),
        service.shard_count(),
        service.fault_injector().is_armed()
    );
    // Start the walkthrough from a known state even when SKYLINE_FAULTS pre-armed faults.
    service.fault_injector().clear();

    let mut generator = config.query_generator();
    let pref = generator.random_preference(&schema, &template, config.pref_order, None);

    // ── Deadlines and cancellation ────────────────────────────────────────────────────
    // A bounded deadline threads through the scatter and the per-shard elimination scans;
    // an expired (or cancelled) request fails fast with `DeadlineExceeded` and caches
    // nothing — the cache never learns from an answer that didn't finish.
    let served = service.serve_deadline(&pref, &Deadline::within(Duration::from_secs(5)))?;
    println!(
        "deadline serve: {} skyline rows in {:.2} ms, degraded={}",
        served.outcome.skyline.len(),
        served.latency.as_secs_f64() * 1e3,
        served.is_degraded()
    );
    let token = CancelToken::new();
    token.cancel();
    let err = service
        .serve_deadline(&pref, &Deadline::none().with_cancel(token))
        .unwrap_err();
    println!(
        "cancelled serve: {err} ({} deadline miss(es) counted)",
        service.stats().deadline_misses
    );

    // ── Injected slowness: degraded, but never quarantined ────────────────────────────
    // `delay-on-shard-query` makes shard 0 miss a tight deadline. Slow is not broken:
    // the shard is reported degraded for this request but stays in service. (Each section
    // takes a fresh preference — a cache hit would never reach the scatter.)
    service
        .fault_injector()
        .delay_shard_query(0, Duration::from_millis(30));
    let pref = generator.random_preference(&schema, &template, config.pref_order, None);
    let slow = service.serve_deadline(&pref, &Deadline::within(Duration::from_millis(8)))?;
    println!(
        "delayed shard: degraded_shards={:?}, quarantined={:?}, cached entries={}",
        slow.degraded_shards,
        service.quarantined_shards(),
        service.cache_len()
    );
    service.fault_injector().clear();

    // ── Injected panic: quarantine, degraded gathers, backoff recovery ────────────────
    // `panic-on-shard-query` panics shard 1's next scatter leg. The panic is contained,
    // the shard is quarantined, and gathers keep answering from the healthy shards.
    service
        .fault_injector()
        .arm_from_spec("panic-on-shard-query=1:1");
    let pref = generator.random_preference(&schema, &template, config.pref_order, None);
    let degraded = service.serve(&pref)?;
    println!(
        "after injected panic: degraded_shards={:?}, quarantined={:?}, answer has {} rows",
        degraded.degraded_shards,
        service.quarantined_shards(),
        degraded.outcome.skyline.len()
    );

    // Serves opportunistically retry quarantined shards once their backoff elapses; the
    // failpoint consumed itself above, so the proof-of-health rebuild succeeds.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let served = service.serve(&pref)?;
        if !served.is_degraded() && service.quarantined_shards().is_empty() {
            println!(
                "recovered: complete {}-row answer, quarantine empty, {} degraded \
                 gather(s) along the way",
                served.outcome.skyline.len(),
                service.stats().degraded
            );
            break;
        }
        assert!(Instant::now() < deadline, "shard never recovered");
        std::thread::sleep(Duration::from_millis(5));
    }

    // ── Overload: bounded admission sheds the excess ──────────────────────────────────
    // Six clients race two admission slots while every shard is slowed 20 ms, so each
    // accepted request holds its slot long enough for the others to pile up and shed.
    for s in 0..service.shard_count() {
        service
            .fault_injector()
            .delay_shard_query(s, Duration::from_millis(20));
    }
    let fresh: Vec<Preference> = (0..6)
        .map(|_| generator.random_preference(&schema, &template, config.pref_order, None))
        .collect();
    let barrier = Arc::new(Barrier::new(fresh.len()));
    let shed = Arc::new(AtomicUsize::new(0));
    let clients: Vec<_> = fresh
        .into_iter()
        .map(|pref| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            let shed = Arc::clone(&shed);
            std::thread::spawn(move || {
                barrier.wait();
                match service.serve(&pref) {
                    Ok(_) => {}
                    Err(SkylineError::Overloaded) => {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(other) => panic!("unexpected error under overload: {other}"),
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }
    service.fault_injector().clear();
    let stats = service.stats();
    println!(
        "overload: 6 clients over 2 admission slots — {} shed this round \
         ({} total, queue depth back to {})",
        shed.load(Ordering::Relaxed),
        stats.shed,
        stats.queue_depth
    );
    Ok(())
}
