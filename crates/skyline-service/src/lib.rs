//! # skyline-service
//!
//! A concurrent, cache-backed query service over the engines of the `skyline` facade —
//! the serving layer the paper's premise calls for: *many* users issue implicit-preference
//! skyline queries over the *same* dataset, and popular preferences repeat with the same
//! Zipfian skew as the nominal values themselves.
//!
//! Three pieces:
//!
//! * [`SkylineService`] — wraps an `Arc<SkylineEngine>` (the engine is `Send + Sync`, so one
//!   preprocessing pass serves every thread) and answers queries via
//!   [`SkylineService::serve`] / [`SkylineService::serve_batch`];
//! * [`cache::ResultCache`] — a sharded LRU keyed on [`skyline_core::CanonicalPreference`],
//!   so semantically equal preferences share one memoized answer;
//! * a worker-pool batch executor on `std::thread` + channels, plus lock-free
//!   [`stats`] (hit rate, p50/p99 latency).
//!
//! ```
//! use skyline::prelude::*;
//! use skyline_service::{ServiceConfig, SkylineService};
//! use std::sync::Arc;
//!
//! // Table 1 of the paper, served to a crowd.
//! let schema = Schema::new(vec![
//!     Dimension::numeric("price"),
//!     Dimension::numeric("class-neg"),
//!     Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
//! ]).unwrap();
//! let mut builder = DatasetBuilder::new(schema);
//! for (price, class, group) in [
//!     (1600.0, 4.0, "T"), (2400.0, 1.0, "T"), (3000.0, 5.0, "H"),
//!     (3600.0, 4.0, "H"), (2400.0, 2.0, "M"), (3000.0, 3.0, "M"),
//! ] {
//!     builder.push_row([RowValue::Num(price), RowValue::Num(-class), group.into()]).unwrap();
//! }
//! let data = Arc::new(builder.build().unwrap());
//! let template = Template::empty(data.schema());
//! let engine = SkylineEngine::build(data, template, EngineConfig::Hybrid { top_k: 10 }).unwrap();
//! // One worker keeps the miss count exactly 1 for this example. With a pool, the per-key
//! // single-flight latch collapses concurrent cold misses onto one engine run — but a worker
//! // that misses just after the leader released can still recompute, so the count is "very
//! // few", not "one".
//! let service = SkylineService::with_config(
//!     engine,
//!     ServiceConfig { workers: 1, ..ServiceConfig::default() },
//! );
//!
//! let schema = service.engine().read().dataset().schema().clone();
//! let alice = Preference::parse(&schema, [("hotel-group", "T < M < *")]).unwrap();
//! let batch: Vec<Preference> = std::iter::repeat(alice.clone()).take(100).collect();
//! let answers = service.serve_batch(&batch);
//! assert!(answers.iter().all(|a| a.as_ref().unwrap().outcome.skyline == vec![0, 2]));
//! // 100 equivalent queries, one engine evaluation.
//! assert_eq!(service.stats().misses, 1);
//! assert_eq!(service.stats().hits, 99);
//!
//! // Dynamic data: a mutation bumps the dataset epoch, which atomically invalidates every
//! // cached result — the next serve recomputes instead of replaying the stale answer.
//! service.insert_row(&[1000.0, -5.0], &[0]).unwrap(); // an even better Tulips package
//! let fresh = service.serve(&alice).unwrap();
//! assert!(!fresh.cache_hit);
//! assert_eq!(fresh.outcome.skyline, vec![6]);
//! assert_eq!(service.stats().mutations, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
mod executor;
pub mod faults;
pub mod flight;
pub mod service;
pub mod sharded;
pub mod stats;
pub mod streaming;

pub use admission::{AdmissionPermit, AdmissionQueue};
pub use cache::ResultCache;
pub use faults::FaultInjector;
pub use flight::{FlightGuard, FlightRole, SingleFlight, StreamFlightRole};
pub use service::{Served, ServedStream, ServiceConfig, SkylineService};
pub use sharded::{
    DegradePolicy, GlobalRowId, PartialSkyline, RecoveryPolicy, ShardPartition, ShardedConfig,
    ShardedOutcome, ShardedServed, ShardedService, ShardedStream,
};
pub use stats::{ServiceMetrics, StatsSnapshot};
pub use streaming::{NextRow, StreamCore};
