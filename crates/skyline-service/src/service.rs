//! The concurrent query service: one shared engine, many users, dynamic data.

use crate::admission::{AdmissionPermit, AdmissionQueue};
use crate::cache::ResultCache;
use crate::executor;
use crate::flight::{FlightGuard, FlightRole, SingleFlight, StreamFlightRole};
use crate::stats::{ServiceMetrics, StatsSnapshot};
use crate::streaming::{NextRow, StreamCore};
use skyline::{
    EngineScratch, EngineStream, MaintenanceHandle, MaintenancePolicy, MaintenanceWorker,
    QueryOutcome, SharedEngine,
};
use skyline_core::score::ScoreFn;
use skyline_core::{
    CanonicalPreference, DatasetEpoch, Deadline, PointId, Preference, Result, SkylineError, ValueId,
};
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`SkylineService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Maximum number of cached query results (0 disables the cache).
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Worker threads used by [`SkylineService::serve_batch`] (0 = one per available core).
    pub workers: usize,
    /// When set, the service spawns a background [`MaintenanceWorker`] that rebuilds the
    /// engine's generation — physical compaction, row-id remapping, IPO re-materialization —
    /// under this policy. The worker is nudged after every mutation the service applies and
    /// shuts down when the service is dropped.
    pub maintenance: Option<MaintenancePolicy>,
    /// Maximum concurrently admitted requests (batch items count individually); arrivals past
    /// the bound are shed immediately with [`SkylineError::Overloaded`] (reject-newest) and
    /// counted in [`StatsSnapshot::shed`]. `0` disables admission control.
    pub admission_depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            cache_capacity: 4096,
            cache_shards: 16,
            workers: 0,
            maintenance: None,
            admission_depth: 0,
        }
    }
}

/// One answered query, with serving provenance.
#[derive(Debug, Clone)]
pub struct Served {
    /// The query answer. On a cache hit this is the memoized outcome, shared (not copied)
    /// between every user asking the equivalent preference; `outcome.method` then reports the
    /// algorithm that computed the *original* answer.
    pub outcome: Arc<QueryOutcome>,
    /// Whether the answer came from the result cache.
    pub cache_hit: bool,
    /// The dataset epoch the answer is valid for.
    pub epoch: DatasetEpoch,
    /// Wall-clock time spent serving this query.
    pub latency: Duration,
}

/// A concurrent, cache-backed skyline query service over one [`SharedEngine`].
///
/// Queries take the engine's read lock (many concurrent readers), so a single preprocessing
/// pass serves every user: wrap the service itself in an `Arc` and call
/// [`serve`](SkylineService::serve) from as many threads as you like, or hand a whole batch to
/// [`serve_batch`](SkylineService::serve_batch) and let the built-in worker pool spread it
/// over the cores. Results are memoized in a sharded LRU cache keyed on
/// [`CanonicalPreference`], so the Zipf-skewed preference streams of the paper's workload
/// (many users, few popular preferences) are mostly answered without touching the engine.
///
/// # Dynamic datasets
///
/// [`SkylineService::insert_row`] and [`SkylineService::delete_row`] mutate the engine under
/// its write lock. Every cached result is tagged with the [`DatasetEpoch`] it was computed at
/// and every lookup runs at the engine's current epoch, so one mutation atomically invalidates
/// the whole cached state — without a flush: stale entries expire lazily on their next touch
/// (counted in [`StatsSnapshot::stale_evictions`]). A mutated engine can therefore never serve
/// a stale skyline.
#[derive(Debug)]
pub struct SkylineService {
    engine: SharedEngine,
    cache: ResultCache,
    metrics: ServiceMetrics,
    flight: SingleFlight<DatasetEpoch, Arc<StreamCore<PointId>>>,
    admission: AdmissionQueue,
    maintenance: Option<MaintenanceHandle>,
    workers: usize,
}

impl SkylineService {
    /// Wraps an engine with the default configuration. Accepts an owned
    /// [`skyline::SkylineEngine`] or an existing [`SharedEngine`] clone.
    pub fn new(engine: impl Into<SharedEngine>) -> Self {
        Self::with_config(engine, ServiceConfig::default())
    }

    /// Wraps an engine with explicit cache/worker settings.
    pub fn with_config(engine: impl Into<SharedEngine>, config: ServiceConfig) -> Self {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            config.workers
        };
        let engine = engine.into();
        let maintenance = config
            .maintenance
            .map(|policy| MaintenanceWorker::spawn(engine.clone(), policy));
        Self {
            engine,
            cache: ResultCache::new(config.cache_capacity, config.cache_shards),
            metrics: ServiceMetrics::new(),
            flight: SingleFlight::new(),
            admission: AdmissionQueue::new(config.admission_depth),
            maintenance,
            workers,
        }
    }

    /// The shared engine answering cache misses (read-lock it to inspect or query directly;
    /// do not hold the guard across service calls).
    pub fn engine(&self) -> &SharedEngine {
        &self.engine
    }

    /// Worker threads a batch is spread over.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Current number of cached results.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The engine's current mutation epoch.
    pub fn epoch(&self) -> DatasetEpoch {
        self.engine.read().epoch()
    }

    /// Counters accumulated since the service was built, including the engine's maintenance
    /// lifecycle (generation rebuilds installed, rows physically reclaimed).
    pub fn stats(&self) -> StatsSnapshot {
        let mut snapshot = self.metrics.snapshot();
        snapshot.stale_evictions = self.cache.stale_evictions();
        snapshot.remap_misses = self.cache.remap_misses();
        snapshot.queue_depth = self.admission.depth() as u64;
        let maintenance = self.engine.read().maintenance_stats();
        snapshot.rebuilds = maintenance.rebuilds;
        snapshot.reclaimed_rows = maintenance.reclaimed_rows;
        snapshot
    }

    /// The background maintenance handle, when [`ServiceConfig::maintenance`] enabled one.
    pub fn maintenance(&self) -> Option<&MaintenanceHandle> {
        self.maintenance.as_ref()
    }

    /// Runs one generation rebuild right now and waits for it: through the background worker
    /// when one is enabled, synchronously via [`SharedEngine::rebuild_now`] otherwise.
    /// Returns whether a new generation was installed.
    pub fn force_rebuild(&self) -> Result<bool> {
        match &self.maintenance {
            Some(handle) => handle.force_rebuild(),
            None => self.engine.rebuild_now().map(|_| true),
        }
    }

    /// Inserts a row into the served dataset and returns the new epoch.
    ///
    /// Takes the engine's write lock; in-flight queries finish first (tagged with the old
    /// epoch), queries starting afterwards run — and cache — at the new one. Stale cached
    /// results are invalidated atomically by the epoch bump and expire lazily.
    pub fn insert_row(&self, numeric: &[f64], nominal: &[ValueId]) -> Result<DatasetEpoch> {
        let mut engine = self.engine.write();
        let epoch = engine
            .insert_row(numeric, nominal)
            .inspect_err(|_| self.metrics.record_error())?;
        drop(engine);
        self.metrics.record_mutation();
        if let Some(handle) = &self.maintenance {
            handle.notify();
        }
        Ok(epoch)
    }

    /// Logically deletes a row from the served dataset and returns the new epoch. Deleting an
    /// already-deleted row is a no-op (the epoch — and hence the cache — is untouched).
    pub fn delete_row(&self, p: PointId) -> Result<DatasetEpoch> {
        let mut engine = self.engine.write();
        let before = engine.epoch();
        let epoch = engine
            .delete_row(p)
            .inspect_err(|_| self.metrics.record_error())?;
        drop(engine);
        if epoch != before {
            self.metrics.record_mutation();
            if let Some(handle) = &self.maintenance {
                handle.notify();
            }
        }
        Ok(epoch)
    }

    /// Answers one query, consulting the result cache first.
    ///
    /// Errors (invalid preference, refinement violation, …) are returned verbatim and never
    /// cached.
    pub fn serve(&self, pref: &Preference) -> Result<Served> {
        let mut scratch = EngineScratch::default();
        self.serve_with_scratch(pref, &mut scratch)
    }

    /// Like [`SkylineService::serve`] under a per-request [`Deadline`]: the elimination scan
    /// polls the budget at block granularity and the request fails with
    /// [`SkylineError::DeadlineExceeded`] instead of finishing an answer nobody is waiting
    /// for. An expired request is counted in [`StatsSnapshot::deadline_misses`]; it never
    /// poisons the cache (partial answers are not inserted) nor the single-flight latch (the
    /// leader's guard releases on the error path, a follower gives up without touching it).
    pub fn serve_deadline(&self, pref: &Preference, deadline: &Deadline) -> Result<Served> {
        let mut scratch = EngineScratch::default();
        self.serve_deadline_scratch(pref, deadline, &mut scratch)
    }

    /// Like [`SkylineService::serve`] with caller-owned engine scratch buffers, reused across
    /// calls (each batch worker keeps one scratch for its whole share of the batch).
    pub fn serve_with_scratch(
        &self,
        pref: &Preference,
        scratch: &mut EngineScratch,
    ) -> Result<Served> {
        self.serve_deadline_scratch(pref, &Deadline::none(), scratch)
    }

    /// [`SkylineService::serve_deadline`] with caller-owned scratch buffers. This is the full
    /// entry point every other serve delegates to; admission control runs first, so a shed
    /// request costs one atomic compare-exchange and touches nothing else.
    pub fn serve_deadline_scratch(
        &self,
        pref: &Preference,
        deadline: &Deadline,
        scratch: &mut EngineScratch,
    ) -> Result<Served> {
        let _permit = self.admission.try_admit().inspect_err(|_| {
            self.metrics.record_shed();
        })?;
        let result = self.serve_admitted(pref, deadline, scratch);
        if matches!(result, Err(SkylineError::DeadlineExceeded)) {
            self.metrics.record_deadline_miss();
        }
        result
    }

    /// The admitted serve path (the caller holds the admission permit).
    fn serve_admitted(
        &self,
        pref: &Preference,
        deadline: &Deadline,
        scratch: &mut EngineScratch,
    ) -> Result<Served> {
        // A request that arrives already expired or cancelled fails fast — even when the
        // answer would have been a cache hit, returning it to a caller that revoked the
        // request is wrong.
        deadline.check()?;
        let started = Instant::now();
        // The read guard is held across epoch read, cache lookup and (on a miss) the engine
        // query: mutations cannot interleave, so the answer, its epoch tag and the cache entry
        // are mutually consistent.
        let engine = self.engine.read();
        let epoch = engine.epoch();
        let key = CanonicalPreference::new(engine.dataset().schema(), pref)
            .inspect_err(|_| self.metrics.record_error())?;
        // Servability (refinement, materialization) is judged on the *written* preference
        // while canonical keys are *semantic*, so the engine's acceptance policy must run
        // before the cache lookup: a preference the engine would reject could otherwise be
        // answered from an entry cached by an equivalent accepted one, making the same input
        // succeed or fail depending on cache state.
        engine
            .check_servable(pref)
            .inspect_err(|_| self.metrics.record_error())?;
        // Remap-aware lookup: an entry tagged with an epoch some generation swaps behind is
        // still semantically correct — the swaps only renumbered rows — so it is translated
        // through the engine's published remap chain (back-to-back rebuilds compose) instead
        // of dropped.
        if let Some((outcome, translated)) =
            self.cache
                .get_or_translate(&key, epoch, engine.remap_chain())
        {
            let latency = started.elapsed();
            self.metrics.record(true, latency);
            if translated {
                self.metrics.record_remapped_hit();
            }
            return Ok(Served {
                outcome,
                cache_hit: true,
                epoch,
                latency,
            });
        }
        // Cold miss: collapse concurrent identical misses into one engine run. The first
        // thread to miss this (key, epoch) leads and computes; the rest block until it
        // finishes, then hit the entry it cached. Both sides hold the engine read lock
        // throughout, so the leader always makes progress.
        match self
            .flight
            .join_deadline(&key, epoch, deadline)
            .inspect_err(|_| self.metrics.record_error())?
        {
            FlightRole::Leader(guard) => {
                let served =
                    self.compute_and_cache(&engine, pref, key, epoch, deadline, scratch, started);
                drop(guard); // wakes followers (also on the error path, via Drop on `?`)
                served
            }
            FlightRole::Followed => {
                self.metrics.record_coalesced();
                if let Some(outcome) = self.cache.get(&key, epoch) {
                    let latency = started.elapsed();
                    self.metrics.record(true, latency);
                    return Ok(Served {
                        outcome,
                        cache_hit: true,
                        epoch,
                        latency,
                    });
                }
                // The leader failed (errors are never cached); compute individually so every
                // caller gets its own verbatim error or answer.
                self.compute_and_cache(&engine, pref, key, epoch, deadline, scratch, started)
            }
        }
    }

    /// The cache-miss path: run the engine under the (already held) read guard, cache the
    /// answer at its epoch, record the miss. A deadline expiry aborts the engine scan
    /// mid-block and — via the early `?` — guarantees nothing partial reaches the cache.
    #[allow(clippy::too_many_arguments)]
    fn compute_and_cache(
        &self,
        engine: &skyline::SkylineEngine,
        pref: &Preference,
        key: CanonicalPreference,
        epoch: DatasetEpoch,
        deadline: &Deadline,
        scratch: &mut EngineScratch,
        started: Instant,
    ) -> Result<Served> {
        // `query_at_deadline` re-validates the epoch inside the engine — free under the read
        // lock, and it keeps the "answer matches its tag" property even if this code is ever
        // rearranged.
        let outcome = engine
            .query_at_deadline(pref, epoch, deadline, scratch)
            .map(Arc::new)
            .inspect_err(|_| self.metrics.record_error())?;
        self.cache.insert(key, epoch, outcome.clone());
        let latency = started.elapsed();
        self.metrics.record(false, latency);
        Ok(Served {
            outcome,
            cache_hit: false,
            epoch,
            latency,
        })
    }

    /// Answers one query **progressively**: returns a [`ServedStream`] whose
    /// [`next_row`](ServedStream::next_row) calls yield confirmed skyline members one at a
    /// time, in ascending query-score order, long before the full answer exists. Every
    /// yielded row is final (no retractions) and the complete set equals the batch
    /// [`SkylineService::serve`] answer at the same epoch.
    ///
    /// The path is fully integrated with the service's machinery:
    ///
    /// * **cache** — a hit replays the memoized answer in score order (no engine work);
    ///   a finished stream caches its answer, so the batch and streaming paths warm each
    ///   other;
    /// * **single-flight** — concurrent streaming misses of the same `(key, epoch)` coalesce:
    ///   one leader runs the engine and publishes each confirmed row into a shared
    ///   [`StreamCore`]; the rest *tap* that live log, replaying its confirmed prefix
    ///   immediately and then following the leader row by row (counted in
    ///   [`StatsSnapshot::stream_coalesced`]);
    /// * **fault isolation** — a tap whose leader fails mid-stream (deadline expiry, error,
    ///   or drop) falls back to running the remainder of the query itself at the pinned
    ///   epoch; the rows it already delivered stay valid, and it never inherits the leader's
    ///   error;
    /// * **admission control** — the stream holds its admission permit for its whole
    ///   lifetime, so open streams count against [`ServiceConfig::admission_depth`].
    pub fn serve_streaming(&self, pref: &Preference) -> Result<ServedStream<'_>> {
        self.serve_streaming_deadline(pref, Deadline::none())
    }

    /// [`SkylineService::serve_streaming`] under a per-request [`Deadline`]. The budget is
    /// polled at block granularity inside each [`ServedStream::next_row`] pull; expiry fails
    /// the *pull* (counted in [`StatsSnapshot::deadline_misses`]), and
    /// [`ServedStream::set_deadline`] plus another pull resumes the stream where it stopped.
    pub fn serve_streaming_deadline(
        &self,
        pref: &Preference,
        deadline: Deadline,
    ) -> Result<ServedStream<'_>> {
        let permit = self.admission.try_admit().inspect_err(|_| {
            self.metrics.record_shed();
        })?;
        deadline.check().inspect_err(|_| {
            self.metrics.record_deadline_miss();
        })?;
        let started = Instant::now();
        let engine = self.engine.read();
        let epoch = engine.epoch();
        let key = CanonicalPreference::new(engine.dataset().schema(), pref)
            .inspect_err(|_| self.metrics.record_error())?;
        engine
            .check_servable(pref)
            .inspect_err(|_| self.metrics.record_error())?;
        let state = if let Some((outcome, translated)) =
            self.cache
                .get_or_translate(&key, epoch, engine.remap_chain())
        {
            self.metrics.record(true, started.elapsed());
            if translated {
                self.metrics.record_remapped_hit();
            }
            StreamState::Replay {
                ids: Self::score_ordered(&engine, pref, &outcome.skyline)?.into_iter(),
            }
        } else {
            match self
                .flight
                .join_streaming(&key, epoch, &deadline)
                .inspect_err(|e| self.record_stream_failure(e))?
            {
                StreamFlightRole::Leader(guard) => {
                    let stream = engine
                        .query_streaming(pref, deadline)
                        .inspect_err(|e| self.record_stream_failure(e))?;
                    let core = Arc::new(StreamCore::new());
                    guard.publish(core.clone());
                    StreamState::Leader {
                        stream,
                        core: Some(core),
                        guard: Some(guard),
                        key,
                        collected: Vec::new(),
                    }
                }
                StreamFlightRole::Tap(core) => {
                    self.metrics.record_stream_coalesced();
                    StreamState::Tap {
                        core,
                        idx: 0,
                        deadline,
                        pref: pref.clone(),
                        key,
                    }
                }
                StreamFlightRole::Followed => {
                    // The previous leader finished while we waited: its answer is cached
                    // (replay it), unless it failed — then run our own stream, solo (no
                    // guard: a failed key is likely to keep failing, serializing retries
                    // behind one another would only add latency).
                    if let Some(outcome) = self.cache.get(&key, epoch) {
                        self.metrics.record(true, started.elapsed());
                        StreamState::Replay {
                            ids: Self::score_ordered(&engine, pref, &outcome.skyline)?.into_iter(),
                        }
                    } else {
                        let stream = engine
                            .query_streaming(pref, deadline)
                            .inspect_err(|e| self.record_stream_failure(e))?;
                        StreamState::Leader {
                            stream,
                            core: None,
                            guard: None,
                            key,
                            collected: Vec::new(),
                        }
                    }
                }
            }
        };
        drop(engine);
        self.metrics.record_stream_started();
        Ok(ServedStream {
            service: self,
            _permit: permit,
            epoch,
            started,
            ttfr_recorded: false,
            state,
        })
    }

    /// Replays a cached (id-sorted) answer in the stream's ascending-score order.
    fn score_ordered(
        engine: &skyline::SkylineEngine,
        pref: &Preference,
        ids: &[PointId],
    ) -> Result<Vec<PointId>> {
        let score = ScoreFn::for_preference(engine.dataset().schema(), pref)?;
        Ok(score.sort_by_score(engine.dataset(), ids))
    }

    /// Error bookkeeping shared by every streaming failure site (mirrors the batch path:
    /// an expired deadline counts as both an error and a deadline miss).
    fn record_stream_failure(&self, e: &SkylineError) {
        self.metrics.record_error();
        if matches!(e, SkylineError::DeadlineExceeded) {
            self.metrics.record_deadline_miss();
        }
    }

    /// Answers a batch of queries on the worker pool, preserving input order.
    ///
    /// Each worker pulls the next query as soon as it finishes its previous one (work
    /// stealing), so a mix of cache hits and expensive misses still balances across threads,
    /// and keeps one [`EngineScratch`] for its whole share of the batch so per-query candidate
    /// and kernel buffers are reused instead of reallocated.
    pub fn serve_batch(&self, prefs: &[Preference]) -> Vec<Result<Served>> {
        self.serve_batch_deadline(prefs, &Deadline::none())
    }

    /// Like [`SkylineService::serve_batch`] under one shared per-request [`Deadline`]: each
    /// item is served with the same budget (and cancel token), so cancelling the token — or
    /// the budget running out — drains the rest of the batch as
    /// [`SkylineError::DeadlineExceeded`] errors within one scan block each, releasing the
    /// workers instead of grinding out answers nobody is waiting for.
    pub fn serve_batch_deadline(
        &self,
        prefs: &[Preference],
        deadline: &Deadline,
    ) -> Vec<Result<Served>> {
        executor::run_indexed_scratch(
            prefs,
            self.workers,
            EngineScratch::default,
            |_, pref, scratch| self.serve_deadline_scratch(pref, deadline, scratch),
        )
    }
}

/// The per-stream serving state (see [`ServedStream`]).
#[derive(Debug)]
enum StreamState<'a> {
    /// Cache hit: replay the memoized answer in ascending score order.
    Replay { ids: std::vec::IntoIter<PointId> },
    /// This request runs the engine. When it won the single-flight latch it carries the
    /// published [`StreamCore`] (taps follow it) and the flight guard; a solo recompute
    /// after a failed leader carries neither.
    Leader {
        stream: EngineStream,
        core: Option<Arc<StreamCore<PointId>>>,
        guard: Option<FlightGuard<'a, DatasetEpoch, Arc<StreamCore<PointId>>>>,
        key: CanonicalPreference,
        collected: Vec<PointId>,
    },
    /// This request follows another request's live stream core, replaying its confirmed
    /// prefix. `pref`/`key` are kept for the fall-back recompute if the leader fails.
    Tap {
        core: Arc<StreamCore<PointId>>,
        idx: usize,
        deadline: Deadline,
        pref: Preference,
        key: CanonicalPreference,
    },
    /// Exhausted (terminal bookkeeping already done).
    Done,
}

/// A progressive query answer handed out by [`SkylineService::serve_streaming`]: confirmed
/// skyline members, one per [`ServedStream::next_row`] call, in ascending query-score order.
///
/// The stream is pinned to the dataset epoch it was created at ([`ServedStream::epoch`]) and
/// stays valid across later mutations. It holds its admission permit until dropped. Dropping
/// a leader stream mid-way seals its shared core with an error, so coalesced taps fall back
/// to computing the remainder themselves rather than waiting forever.
#[derive(Debug)]
pub struct ServedStream<'a> {
    service: &'a SkylineService,
    _permit: AdmissionPermit,
    epoch: DatasetEpoch,
    started: Instant,
    ttfr_recorded: bool,
    state: StreamState<'a>,
}

impl ServedStream<'_> {
    /// The dataset epoch the stream's answer is valid for.
    pub fn epoch(&self) -> DatasetEpoch {
        self.epoch
    }

    /// Replaces the stream's deadline: an expired pull can be retried under a fresh budget
    /// and resumes exactly where it stopped. (A replayed cache hit has no budget to renew.)
    pub fn set_deadline(&mut self, deadline: Deadline) {
        match &mut self.state {
            StreamState::Leader { stream, .. } => stream.set_deadline(deadline),
            StreamState::Tap { deadline: d, .. } => *d = deadline,
            StreamState::Replay { .. } | StreamState::Done => {}
        }
    }

    /// Pulls the next confirmed skyline member, or `Ok(None)` once the answer is complete.
    ///
    /// An `Err` does **not** invalidate rows already delivered (they are final), and for
    /// deadline expiry the stream's position is preserved — see
    /// [`ServedStream::set_deadline`].
    pub fn next_row(&mut self) -> Result<Option<PointId>> {
        loop {
            match &mut self.state {
                StreamState::Done => return Ok(None),
                StreamState::Replay { ids } => match ids.next() {
                    Some(p) => {
                        if !self.ttfr_recorded {
                            self.ttfr_recorded = true;
                            self.service.metrics.record_ttfr(self.started.elapsed());
                        }
                        return Ok(Some(p));
                    }
                    None => {
                        self.state = StreamState::Done;
                        return Ok(None);
                    }
                },
                StreamState::Leader {
                    stream,
                    core,
                    guard,
                    key,
                    collected,
                } => match stream.next_row() {
                    Ok(Some(p)) => {
                        if let Some(core) = core.as_ref() {
                            core.publish(p);
                        }
                        collected.push(p);
                        if !self.ttfr_recorded {
                            self.ttfr_recorded = true;
                            self.service.metrics.record_ttfr(self.started.elapsed());
                        }
                        return Ok(Some(p));
                    }
                    Ok(None) => {
                        let method = stream.method();
                        let mut skyline = std::mem::take(collected);
                        skyline.sort_unstable();
                        // Cache before releasing the flight: batch followers woken by the
                        // guard drop re-check the cache and must find the entry.
                        self.service.cache.insert(
                            key.clone(),
                            self.epoch,
                            Arc::new(QueryOutcome { skyline, method }),
                        );
                        if let Some(core) = core.take() {
                            core.finish(Ok(()));
                        }
                        *guard = None;
                        self.service.metrics.record(false, self.started.elapsed());
                        self.state = StreamState::Done;
                        return Ok(None);
                    }
                    Err(e) => {
                        // Seal the shared core so taps fall back to their own computation;
                        // release the flight so later arrivals are not serialized behind a
                        // stream that may never be pulled again.
                        if let Some(core) = core.take() {
                            core.finish(Err(e.clone()));
                        }
                        *guard = None;
                        self.service.record_stream_failure(&e);
                        return Err(e);
                    }
                },
                StreamState::Tap {
                    core,
                    idx,
                    deadline,
                    pref,
                    key,
                } => match core.wait_next(*idx, deadline) {
                    Ok(NextRow::Row(p)) => {
                        *idx += 1;
                        if !self.ttfr_recorded {
                            self.ttfr_recorded = true;
                            self.service.metrics.record_ttfr(self.started.elapsed());
                        }
                        return Ok(Some(p));
                    }
                    Ok(NextRow::Finished) => {
                        self.service.metrics.record(true, self.started.elapsed());
                        self.state = StreamState::Done;
                        return Ok(None);
                    }
                    Ok(NextRow::Failed(_)) => {
                        // The leader died mid-stream. Its published prefix is still a
                        // correct prefix of the answer (no retractions), so re-run the
                        // query at the pinned epoch, silently skip the rows already
                        // delivered — the emission order is deterministic per (epoch,
                        // preference) — and continue as a solo leader. If the dataset
                        // moved past the pinned epoch the recompute fails with
                        // `EpochMismatch`, which is surfaced verbatim.
                        let engine = self.service.engine.read();
                        let mut stream = engine
                            .query_streaming_at(pref, self.epoch, deadline.clone())
                            .inspect_err(|e| self.service.record_stream_failure(e))?;
                        drop(engine);
                        let mut collected = Vec::with_capacity(*idx);
                        for _ in 0..*idx {
                            match stream
                                .next_row()
                                .inspect_err(|e| self.service.record_stream_failure(e))?
                            {
                                Some(p) => collected.push(p),
                                None => break,
                            }
                        }
                        let key = key.clone();
                        self.state = StreamState::Leader {
                            stream,
                            core: None,
                            guard: None,
                            key,
                            collected,
                        };
                        // Loop: the next iteration pulls from the recomputed stream.
                    }
                    Err(e) => {
                        self.service.record_stream_failure(&e);
                        return Err(e);
                    }
                },
            }
        }
    }

    /// Drains the rest of the stream, returning the remaining rows in emission (ascending
    /// query-score) order.
    pub fn collect_rows(mut self) -> Result<Vec<PointId>> {
        let mut rows = Vec::new();
        while let Some(p) = self.next_row()? {
            rows.push(p);
        }
        Ok(rows)
    }
}

impl Drop for ServedStream<'_> {
    fn drop(&mut self) {
        // An abandoned leader must not leave its taps blocked on a core nobody feeds.
        if let StreamState::Leader { core, .. } = &mut self.state {
            if let Some(core) = core.take() {
                core.finish(Err(SkylineError::InvalidArgument(
                    "streaming leader dropped before finishing".into(),
                )));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline::prelude::*;

    fn engine() -> SharedEngine {
        let config = ExperimentConfig {
            n: 300,
            numeric_dims: 2,
            nominal_dims: 2,
            cardinality: 6,
            theta: 1.0,
            pref_order: 2,
            distribution: Distribution::AntiCorrelated,
            seed: 5,
        };
        let data = Arc::new(config.generate_dataset());
        let template = config.template(&data);
        SharedEngine::new(
            SkylineEngine::build(data, template, EngineConfig::Hybrid { top_k: 3 }).unwrap(),
        )
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SkylineService>();
        assert_send_sync::<Served>();
    }

    #[test]
    fn repeated_queries_hit_the_cache_with_identical_answers() {
        let engine = engine();
        let service = SkylineService::new(engine.clone());
        let schema = engine.read().dataset().schema().clone();
        let template = engine.read().template().clone();
        let mut generator = QueryGenerator::new(77);
        let pref = generator.random_preference(&schema, &template, 2, None);

        let first = service.serve(&pref).unwrap();
        assert!(!first.cache_hit);
        let second = service.serve(&pref).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.epoch, second.epoch);
        assert_eq!(first.outcome.skyline, second.outcome.skyline);
        assert_eq!(
            first.outcome.skyline,
            engine.read().query(&pref).unwrap().skyline
        );

        let stats = service.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(service.cache_len(), 1);
    }

    #[test]
    fn serve_batch_preserves_order_and_matches_serial() {
        let engine = engine();
        let service = SkylineService::with_config(
            engine.clone(),
            ServiceConfig {
                workers: 4,
                ..ServiceConfig::default()
            },
        );
        let schema = engine.read().dataset().schema().clone();
        let template = engine.read().template().clone();
        let mut generator = QueryGenerator::new(13);
        let prefs = generator.zipf_workload(&schema, &template, 2, 10, 80, 1.0);

        let served = service.serve_batch(&prefs);
        assert_eq!(served.len(), prefs.len());
        for (pref, result) in prefs.iter().zip(&served) {
            let served_skyline = &result.as_ref().unwrap().outcome.skyline;
            assert_eq!(served_skyline, &engine.read().query(pref).unwrap().skyline);
        }
        let stats = service.stats();
        assert_eq!(stats.served(), 80);
        assert!(stats.hit_rate() > 0.5, "hit rate {}", stats.hit_rate());
    }

    #[test]
    fn errors_pass_through_and_are_counted() {
        let engine = engine();
        let service = SkylineService::new(engine);
        // Wrong arity: one nominal dimension instead of two.
        let bad = Preference::none(1);
        assert!(service.serve(&bad).is_err());
        let stats = service.stats();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.served(), 0);
        assert_eq!(service.cache_len(), 0);
    }

    #[test]
    fn mutations_bump_the_epoch_and_are_counted() {
        let engine = engine();
        let service = SkylineService::new(engine.clone());
        let e0 = service.epoch();
        assert_eq!(e0, DatasetEpoch::INITIAL);
        let e1 = service.insert_row(&[0.5, 0.5], &[0, 0]).unwrap();
        assert!(e1 > e0);
        let e2 = service.delete_row(0).unwrap();
        assert!(e2 > e1);
        // Deleting the same row again is a no-op: same epoch, no mutation counted.
        let e3 = service.delete_row(0).unwrap();
        assert_eq!(e3, e2);
        // Deleting a row that never existed is an error.
        assert!(service.delete_row(999_999).is_err());
        let stats = service.stats();
        assert_eq!(stats.mutations, 2);
        assert_eq!(stats.errors, 1);
        assert_eq!(service.epoch(), engine.read().epoch());
    }

    #[test]
    fn non_refining_queries_error_even_after_an_equivalent_entry_was_cached() {
        // Template with the *full-domain* implicit list [0, 1] on a cardinality-2 dimension:
        // the refining query [0, 1] and the non-refining query [0] induce the same partial
        // order, hence share a canonical cache key — but only the first may be answered.
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal("g", NominalDomain::anonymous(2)),
        ])
        .unwrap();
        let data = Arc::new(
            Dataset::from_columns(schema.clone(), vec![vec![1.0, 2.0]], vec![vec![0, 1]]).unwrap(),
        );
        let template = Template::from_preference(
            &schema,
            Preference::from_dims(vec![ImplicitPreference::new([0, 1]).unwrap()]),
        )
        .unwrap();
        let engine = SharedEngine::new(
            SkylineEngine::build(data, template, EngineConfig::AdaptiveSfs).unwrap(),
        );
        let service = SkylineService::new(engine.clone());

        let refining = Preference::from_dims(vec![ImplicitPreference::new([0, 1]).unwrap()]);
        let non_refining = Preference::from_dims(vec![ImplicitPreference::new([0]).unwrap()]);
        // Same canonical key, different refinement status.
        assert_eq!(
            refining.canonicalize(&schema).unwrap(),
            non_refining.canonicalize(&schema).unwrap()
        );
        assert!(engine.read().query(&non_refining).is_err());

        assert!(service.serve(&refining).is_ok());
        assert!(
            matches!(
                service.serve(&non_refining),
                Err(SkylineError::NotARefinement { .. })
            ),
            "cache state must not change which inputs are rejected"
        );
        assert_eq!(service.stats().errors, 1);
    }

    #[test]
    fn unmaterialized_queries_error_even_after_an_equivalent_entry_was_cached() {
        // IpoTreeTopK(1) over a cardinality-2 dimension materializes only the most frequent
        // value 0. `[0]` (servable) and `[0, 1]` (lists unmaterialized value 1) share a
        // canonical key, so the rejection must run before the cache lookup.
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal("g", NominalDomain::anonymous(2)),
        ])
        .unwrap();
        let data = Arc::new(
            Dataset::from_columns(
                schema.clone(),
                vec![vec![1.0, 2.0, 3.0]],
                vec![vec![0, 0, 1]],
            )
            .unwrap(),
        );
        let template = Template::empty(&schema);
        let engine = SharedEngine::new(
            SkylineEngine::build(data, template, EngineConfig::IpoTreeTopK(1)).unwrap(),
        );
        let service = SkylineService::new(engine.clone());

        let servable = Preference::from_dims(vec![ImplicitPreference::new([0]).unwrap()]);
        let unmaterialized = Preference::from_dims(vec![ImplicitPreference::new([0, 1]).unwrap()]);
        assert_eq!(
            servable.canonicalize(&schema).unwrap(),
            unmaterialized.canonicalize(&schema).unwrap()
        );
        assert!(engine.read().query(&unmaterialized).is_err());

        assert!(service.serve(&servable).is_ok());
        assert!(
            matches!(
                service.serve(&unmaterialized),
                Err(SkylineError::NotMaterialized { .. })
            ),
            "cache state must not change which inputs are rejected"
        );
        // The hybrid engine keeps answering the same shape of query via its fallback.
        let data = Arc::new(
            Dataset::from_columns(
                schema.clone(),
                vec![vec![1.0, 2.0, 3.0]],
                vec![vec![0, 0, 1]],
            )
            .unwrap(),
        );
        let hybrid = SkylineEngine::build(
            data,
            Template::empty(&schema),
            EngineConfig::Hybrid { top_k: 1 },
        )
        .unwrap();
        let hybrid_service = SkylineService::new(hybrid);
        assert!(hybrid_service.serve(&servable).is_ok());
        assert!(hybrid_service.serve(&unmaterialized).is_ok());
    }

    /// Satellite regression: entries cached *before* two back-to-back generation rebuilds
    /// used to be silently dropped (translation only looked at the latest remap); they must
    /// now compose through the engine's remap chain and keep serving as hits.
    #[test]
    fn back_to_back_rebuilds_keep_pre_swap_entries_warm() {
        let engine = engine();
        let service = SkylineService::new(engine.clone());
        let schema = engine.read().dataset().schema().clone();
        let template = engine.read().template().clone();
        let mut generator = QueryGenerator::new(21);
        let pref = generator.random_preference(&schema, &template, 2, None);

        // A tombstone gives the first rebuild something to reclaim (non-trivial remap); the
        // entry is cached *after* it, at the epoch the rebuild will snapshot from.
        service.delete_row(0).unwrap();
        let before = service.serve(&pref).unwrap();
        assert!(!before.cache_hit);

        // Two back-to-back rebuilds: swap 1 compacts, swap 2 has nothing to reclaim but
        // still opens a fresh epoch.
        assert!(service.force_rebuild().unwrap());
        assert!(service.force_rebuild().unwrap());
        assert_eq!(service.stats().rebuilds, 2);

        // The entry is now two swaps behind — it must translate, not drop.
        let after = service.serve(&pref).unwrap();
        assert!(after.cache_hit, "pre-swap entry must survive both swaps");
        assert_eq!(
            after.outcome.skyline,
            engine.read().query(&pref).unwrap().skyline,
            "translated ids must name the same rows in the new id space"
        );
        let stats = service.stats();
        assert_eq!(stats.remapped_hits, 1);
        assert_eq!(stats.remap_misses, 0);
        assert_eq!(stats.stale_evictions, 0);

        // Push the entry's swaps off the bounded chain: it becomes an unrecoverable
        // (counted) remap miss instead of a silent drop.
        let other = generator.random_preference(&schema, &template, 2, None);
        let cached_at = service.serve(&other).unwrap();
        assert!(!cached_at.cache_hit);
        for _ in 0..=skyline::REMAP_CHAIN_LIMIT {
            service.force_rebuild().unwrap();
        }
        let recomputed = service.serve(&other).unwrap();
        assert!(!recomputed.cache_hit, "entry fell off the remap chain");
        assert_eq!(service.stats().remap_misses, 1);
    }

    #[test]
    fn workers_default_to_available_parallelism() {
        let service = SkylineService::new(engine());
        assert!(service.workers() >= 1);
        assert!(!service.engine().read().dataset().is_empty());
    }

    #[test]
    fn streaming_matches_batch_and_emits_in_ascending_score_order() {
        let engine = engine();
        let service = SkylineService::new(engine.clone());
        let schema = engine.read().dataset().schema().clone();
        let template = engine.read().template().clone();
        let mut generator = QueryGenerator::new(21);
        let pref = generator.random_preference(&schema, &template, 2, None);

        let rows = service
            .serve_streaming(&pref)
            .unwrap()
            .collect_rows()
            .unwrap();
        let guard = engine.read();
        let score = ScoreFn::for_preference(guard.dataset().schema(), &pref).unwrap();
        let scores: Vec<f64> = rows
            .iter()
            .map(|&p| score.score(guard.dataset(), p))
            .collect();
        assert!(
            scores.windows(2).all(|w| w[0] <= w[1]),
            "emission must be in ascending query-score order"
        );
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, guard.query(&pref).unwrap().skyline);
        drop(guard);

        // The finished stream warmed the cache: the batch path replays it...
        let served = service.serve(&pref).unwrap();
        assert!(served.cache_hit);
        assert_eq!(served.outcome.skyline, sorted);
        // ...and so does a second stream (same rows, same order, no engine work).
        let replay = service
            .serve_streaming(&pref)
            .unwrap()
            .collect_rows()
            .unwrap();
        assert_eq!(replay, rows);

        let stats = service.stats();
        assert_eq!(stats.streams_started, 2);
        assert!(stats.ttfr_p50 > std::time::Duration::ZERO);
    }

    #[test]
    fn concurrent_streams_coalesce_on_the_leader_log() {
        let engine = engine();
        let service = SkylineService::new(engine.clone());
        let schema = engine.read().dataset().schema().clone();
        let template = engine.read().template().clone();
        let mut generator = QueryGenerator::new(33);
        let pref = generator.random_preference(&schema, &template, 2, None);

        let mut leader = service.serve_streaming(&pref).unwrap();
        // Joins the in-flight leader's published core instead of running the engine.
        let mut tap = service.serve_streaming(&pref).unwrap();
        assert_eq!(service.stats().stream_coalesced, 1);

        // The leader publishes as it pulls; the tap replays the confirmed prefix instantly.
        let first = leader.next_row().unwrap().unwrap();
        let second = leader.next_row().unwrap().unwrap();
        assert_eq!(tap.next_row().unwrap(), Some(first));
        assert_eq!(tap.next_row().unwrap(), Some(second));

        let mut rows = vec![first, second];
        rows.extend(leader.collect_rows().unwrap());
        let mut tap_rows = vec![first, second];
        tap_rows.extend(tap.collect_rows().unwrap());
        assert_eq!(tap_rows, rows);

        let mut sorted = rows;
        sorted.sort_unstable();
        assert_eq!(sorted, engine.read().query(&pref).unwrap().skyline);
        // Two streams, one engine evaluation: the leader finish is the miss, the tap's
        // completion the hit.
        let stats = service.stats();
        assert_eq!(stats.streams_started, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn a_taps_leader_expiring_mid_stream_does_not_fail_the_tap() {
        let engine = engine();
        let service = SkylineService::new(engine.clone());
        let schema = engine.read().dataset().schema().clone();
        let template = engine.read().template().clone();
        let mut generator = QueryGenerator::new(55);
        let pref = generator.random_preference(&schema, &template, 2, None);

        let token = skyline_core::CancelToken::new();
        let mut leader = service
            .serve_streaming_deadline(&pref, Deadline::none().with_cancel(token.clone()))
            .unwrap();
        let mut tap = service.serve_streaming(&pref).unwrap();
        assert_eq!(service.stats().stream_coalesced, 1);

        let first = leader.next_row().unwrap().unwrap();
        assert_eq!(tap.next_row().unwrap(), Some(first));

        // The leader's budget dies mid-stream; its own pull fails...
        token.cancel();
        assert_eq!(
            leader.next_row().unwrap_err(),
            SkylineError::DeadlineExceeded
        );

        // ...but the tap falls back to computing the remainder itself rather than
        // inheriting the leader's expiry, and its full answer matches the batch path.
        let mut rows = vec![first];
        rows.extend(tap.collect_rows().unwrap());
        let mut sorted = rows;
        sorted.sort_unstable();
        assert_eq!(sorted, engine.read().query(&pref).unwrap().skyline);
    }

    #[test]
    fn a_dropped_leader_seals_its_core_and_taps_recover() {
        let engine = engine();
        let service = SkylineService::new(engine.clone());
        let schema = engine.read().dataset().schema().clone();
        let template = engine.read().template().clone();
        let mut generator = QueryGenerator::new(89);
        let pref = generator.random_preference(&schema, &template, 2, None);

        let mut leader = service.serve_streaming(&pref).unwrap();
        let mut tap = service.serve_streaming(&pref).unwrap();
        let first = leader.next_row().unwrap().unwrap();
        drop(leader); // abandons the flight with one row published

        // The tap replays the published prefix, sees the sealed core, and recovers.
        assert_eq!(tap.next_row().unwrap(), Some(first));
        let mut rows = vec![first];
        rows.extend(tap.collect_rows().unwrap());
        let mut sorted = rows;
        sorted.sort_unstable();
        assert_eq!(sorted, engine.read().query(&pref).unwrap().skyline);
    }

    #[test]
    fn a_stream_pins_its_epoch_across_mutations() {
        let engine = engine();
        let service = SkylineService::new(engine.clone());
        let schema = engine.read().dataset().schema().clone();
        let template = engine.read().template().clone();
        let mut generator = QueryGenerator::new(144);
        let pref = generator.random_preference(&schema, &template, 2, None);
        let expected = engine.read().query(&pref).unwrap().skyline;

        let mut stream = service.serve_streaming(&pref).unwrap();
        let pinned = stream.epoch();
        let first = stream.next_row().unwrap();
        // A mutation mid-stream bumps the service epoch but not the stream's snapshot.
        service.insert_row(&[0.0, 0.0], &[0, 0]).unwrap();
        assert_ne!(service.epoch(), pinned);

        let mut rows: Vec<PointId> = first.into_iter().collect();
        rows.extend(stream.collect_rows().unwrap());
        rows.sort_unstable();
        assert_eq!(rows, expected, "stream must serve its pinned snapshot");
    }
}
