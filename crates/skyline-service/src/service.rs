//! The concurrent query service: one shared engine, many users, dynamic data.

use crate::admission::AdmissionQueue;
use crate::cache::ResultCache;
use crate::executor;
use crate::flight::{FlightRole, SingleFlight};
use crate::stats::{ServiceMetrics, StatsSnapshot};
use skyline::{
    EngineScratch, MaintenanceHandle, MaintenancePolicy, MaintenanceWorker, QueryOutcome,
    SharedEngine,
};
use skyline_core::{
    CanonicalPreference, DatasetEpoch, Deadline, PointId, Preference, Result, SkylineError, ValueId,
};
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`SkylineService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Maximum number of cached query results (0 disables the cache).
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Worker threads used by [`SkylineService::serve_batch`] (0 = one per available core).
    pub workers: usize,
    /// When set, the service spawns a background [`MaintenanceWorker`] that rebuilds the
    /// engine's generation — physical compaction, row-id remapping, IPO re-materialization —
    /// under this policy. The worker is nudged after every mutation the service applies and
    /// shuts down when the service is dropped.
    pub maintenance: Option<MaintenancePolicy>,
    /// Maximum concurrently admitted requests (batch items count individually); arrivals past
    /// the bound are shed immediately with [`SkylineError::Overloaded`] (reject-newest) and
    /// counted in [`StatsSnapshot::shed`]. `0` disables admission control.
    pub admission_depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            cache_capacity: 4096,
            cache_shards: 16,
            workers: 0,
            maintenance: None,
            admission_depth: 0,
        }
    }
}

/// One answered query, with serving provenance.
#[derive(Debug, Clone)]
pub struct Served {
    /// The query answer. On a cache hit this is the memoized outcome, shared (not copied)
    /// between every user asking the equivalent preference; `outcome.method` then reports the
    /// algorithm that computed the *original* answer.
    pub outcome: Arc<QueryOutcome>,
    /// Whether the answer came from the result cache.
    pub cache_hit: bool,
    /// The dataset epoch the answer is valid for.
    pub epoch: DatasetEpoch,
    /// Wall-clock time spent serving this query.
    pub latency: Duration,
}

/// A concurrent, cache-backed skyline query service over one [`SharedEngine`].
///
/// Queries take the engine's read lock (many concurrent readers), so a single preprocessing
/// pass serves every user: wrap the service itself in an `Arc` and call
/// [`serve`](SkylineService::serve) from as many threads as you like, or hand a whole batch to
/// [`serve_batch`](SkylineService::serve_batch) and let the built-in worker pool spread it
/// over the cores. Results are memoized in a sharded LRU cache keyed on
/// [`CanonicalPreference`], so the Zipf-skewed preference streams of the paper's workload
/// (many users, few popular preferences) are mostly answered without touching the engine.
///
/// # Dynamic datasets
///
/// [`SkylineService::insert_row`] and [`SkylineService::delete_row`] mutate the engine under
/// its write lock. Every cached result is tagged with the [`DatasetEpoch`] it was computed at
/// and every lookup runs at the engine's current epoch, so one mutation atomically invalidates
/// the whole cached state — without a flush: stale entries expire lazily on their next touch
/// (counted in [`StatsSnapshot::stale_evictions`]). A mutated engine can therefore never serve
/// a stale skyline.
#[derive(Debug)]
pub struct SkylineService {
    engine: SharedEngine,
    cache: ResultCache,
    metrics: ServiceMetrics,
    flight: SingleFlight,
    admission: AdmissionQueue,
    maintenance: Option<MaintenanceHandle>,
    workers: usize,
}

impl SkylineService {
    /// Wraps an engine with the default configuration. Accepts an owned
    /// [`skyline::SkylineEngine`] or an existing [`SharedEngine`] clone.
    pub fn new(engine: impl Into<SharedEngine>) -> Self {
        Self::with_config(engine, ServiceConfig::default())
    }

    /// Wraps an engine with explicit cache/worker settings.
    pub fn with_config(engine: impl Into<SharedEngine>, config: ServiceConfig) -> Self {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            config.workers
        };
        let engine = engine.into();
        let maintenance = config
            .maintenance
            .map(|policy| MaintenanceWorker::spawn(engine.clone(), policy));
        Self {
            engine,
            cache: ResultCache::new(config.cache_capacity, config.cache_shards),
            metrics: ServiceMetrics::new(),
            flight: SingleFlight::new(),
            admission: AdmissionQueue::new(config.admission_depth),
            maintenance,
            workers,
        }
    }

    /// The shared engine answering cache misses (read-lock it to inspect or query directly;
    /// do not hold the guard across service calls).
    pub fn engine(&self) -> &SharedEngine {
        &self.engine
    }

    /// Worker threads a batch is spread over.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Current number of cached results.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The engine's current mutation epoch.
    pub fn epoch(&self) -> DatasetEpoch {
        self.engine.read().epoch()
    }

    /// Counters accumulated since the service was built, including the engine's maintenance
    /// lifecycle (generation rebuilds installed, rows physically reclaimed).
    pub fn stats(&self) -> StatsSnapshot {
        let mut snapshot = self.metrics.snapshot();
        snapshot.stale_evictions = self.cache.stale_evictions();
        snapshot.remap_misses = self.cache.remap_misses();
        snapshot.queue_depth = self.admission.depth() as u64;
        let maintenance = self.engine.read().maintenance_stats();
        snapshot.rebuilds = maintenance.rebuilds;
        snapshot.reclaimed_rows = maintenance.reclaimed_rows;
        snapshot
    }

    /// The background maintenance handle, when [`ServiceConfig::maintenance`] enabled one.
    pub fn maintenance(&self) -> Option<&MaintenanceHandle> {
        self.maintenance.as_ref()
    }

    /// Runs one generation rebuild right now and waits for it: through the background worker
    /// when one is enabled, synchronously via [`SharedEngine::rebuild_now`] otherwise.
    /// Returns whether a new generation was installed.
    pub fn force_rebuild(&self) -> Result<bool> {
        match &self.maintenance {
            Some(handle) => handle.force_rebuild(),
            None => self.engine.rebuild_now().map(|_| true),
        }
    }

    /// Inserts a row into the served dataset and returns the new epoch.
    ///
    /// Takes the engine's write lock; in-flight queries finish first (tagged with the old
    /// epoch), queries starting afterwards run — and cache — at the new one. Stale cached
    /// results are invalidated atomically by the epoch bump and expire lazily.
    pub fn insert_row(&self, numeric: &[f64], nominal: &[ValueId]) -> Result<DatasetEpoch> {
        let mut engine = self.engine.write();
        let epoch = engine
            .insert_row(numeric, nominal)
            .inspect_err(|_| self.metrics.record_error())?;
        drop(engine);
        self.metrics.record_mutation();
        if let Some(handle) = &self.maintenance {
            handle.notify();
        }
        Ok(epoch)
    }

    /// Logically deletes a row from the served dataset and returns the new epoch. Deleting an
    /// already-deleted row is a no-op (the epoch — and hence the cache — is untouched).
    pub fn delete_row(&self, p: PointId) -> Result<DatasetEpoch> {
        let mut engine = self.engine.write();
        let before = engine.epoch();
        let epoch = engine
            .delete_row(p)
            .inspect_err(|_| self.metrics.record_error())?;
        drop(engine);
        if epoch != before {
            self.metrics.record_mutation();
            if let Some(handle) = &self.maintenance {
                handle.notify();
            }
        }
        Ok(epoch)
    }

    /// Answers one query, consulting the result cache first.
    ///
    /// Errors (invalid preference, refinement violation, …) are returned verbatim and never
    /// cached.
    pub fn serve(&self, pref: &Preference) -> Result<Served> {
        let mut scratch = EngineScratch::default();
        self.serve_with_scratch(pref, &mut scratch)
    }

    /// Like [`SkylineService::serve`] under a per-request [`Deadline`]: the elimination scan
    /// polls the budget at block granularity and the request fails with
    /// [`SkylineError::DeadlineExceeded`] instead of finishing an answer nobody is waiting
    /// for. An expired request is counted in [`StatsSnapshot::deadline_misses`]; it never
    /// poisons the cache (partial answers are not inserted) nor the single-flight latch (the
    /// leader's guard releases on the error path, a follower gives up without touching it).
    pub fn serve_deadline(&self, pref: &Preference, deadline: &Deadline) -> Result<Served> {
        let mut scratch = EngineScratch::default();
        self.serve_deadline_scratch(pref, deadline, &mut scratch)
    }

    /// Like [`SkylineService::serve`] with caller-owned engine scratch buffers, reused across
    /// calls (each batch worker keeps one scratch for its whole share of the batch).
    pub fn serve_with_scratch(
        &self,
        pref: &Preference,
        scratch: &mut EngineScratch,
    ) -> Result<Served> {
        self.serve_deadline_scratch(pref, &Deadline::none(), scratch)
    }

    /// [`SkylineService::serve_deadline`] with caller-owned scratch buffers. This is the full
    /// entry point every other serve delegates to; admission control runs first, so a shed
    /// request costs one atomic compare-exchange and touches nothing else.
    pub fn serve_deadline_scratch(
        &self,
        pref: &Preference,
        deadline: &Deadline,
        scratch: &mut EngineScratch,
    ) -> Result<Served> {
        let _permit = self.admission.try_admit().inspect_err(|_| {
            self.metrics.record_shed();
        })?;
        let result = self.serve_admitted(pref, deadline, scratch);
        if matches!(result, Err(SkylineError::DeadlineExceeded)) {
            self.metrics.record_deadline_miss();
        }
        result
    }

    /// The admitted serve path (the caller holds the admission permit).
    fn serve_admitted(
        &self,
        pref: &Preference,
        deadline: &Deadline,
        scratch: &mut EngineScratch,
    ) -> Result<Served> {
        // A request that arrives already expired or cancelled fails fast — even when the
        // answer would have been a cache hit, returning it to a caller that revoked the
        // request is wrong.
        deadline.check()?;
        let started = Instant::now();
        // The read guard is held across epoch read, cache lookup and (on a miss) the engine
        // query: mutations cannot interleave, so the answer, its epoch tag and the cache entry
        // are mutually consistent.
        let engine = self.engine.read();
        let epoch = engine.epoch();
        let key = CanonicalPreference::new(engine.dataset().schema(), pref)
            .inspect_err(|_| self.metrics.record_error())?;
        // Servability (refinement, materialization) is judged on the *written* preference
        // while canonical keys are *semantic*, so the engine's acceptance policy must run
        // before the cache lookup: a preference the engine would reject could otherwise be
        // answered from an entry cached by an equivalent accepted one, making the same input
        // succeed or fail depending on cache state.
        engine
            .check_servable(pref)
            .inspect_err(|_| self.metrics.record_error())?;
        // Remap-aware lookup: an entry tagged with an epoch some generation swaps behind is
        // still semantically correct — the swaps only renumbered rows — so it is translated
        // through the engine's published remap chain (back-to-back rebuilds compose) instead
        // of dropped.
        if let Some((outcome, translated)) =
            self.cache
                .get_or_translate(&key, epoch, engine.remap_chain())
        {
            let latency = started.elapsed();
            self.metrics.record(true, latency);
            if translated {
                self.metrics.record_remapped_hit();
            }
            return Ok(Served {
                outcome,
                cache_hit: true,
                epoch,
                latency,
            });
        }
        // Cold miss: collapse concurrent identical misses into one engine run. The first
        // thread to miss this (key, epoch) leads and computes; the rest block until it
        // finishes, then hit the entry it cached. Both sides hold the engine read lock
        // throughout, so the leader always makes progress.
        match self
            .flight
            .join_deadline(&key, epoch, deadline)
            .inspect_err(|_| self.metrics.record_error())?
        {
            FlightRole::Leader(guard) => {
                let served =
                    self.compute_and_cache(&engine, pref, key, epoch, deadline, scratch, started);
                drop(guard); // wakes followers (also on the error path, via Drop on `?`)
                served
            }
            FlightRole::Followed => {
                self.metrics.record_coalesced();
                if let Some(outcome) = self.cache.get(&key, epoch) {
                    let latency = started.elapsed();
                    self.metrics.record(true, latency);
                    return Ok(Served {
                        outcome,
                        cache_hit: true,
                        epoch,
                        latency,
                    });
                }
                // The leader failed (errors are never cached); compute individually so every
                // caller gets its own verbatim error or answer.
                self.compute_and_cache(&engine, pref, key, epoch, deadline, scratch, started)
            }
        }
    }

    /// The cache-miss path: run the engine under the (already held) read guard, cache the
    /// answer at its epoch, record the miss. A deadline expiry aborts the engine scan
    /// mid-block and — via the early `?` — guarantees nothing partial reaches the cache.
    #[allow(clippy::too_many_arguments)]
    fn compute_and_cache(
        &self,
        engine: &skyline::SkylineEngine,
        pref: &Preference,
        key: CanonicalPreference,
        epoch: DatasetEpoch,
        deadline: &Deadline,
        scratch: &mut EngineScratch,
        started: Instant,
    ) -> Result<Served> {
        // `query_at_deadline` re-validates the epoch inside the engine — free under the read
        // lock, and it keeps the "answer matches its tag" property even if this code is ever
        // rearranged.
        let outcome = engine
            .query_at_deadline(pref, epoch, deadline, scratch)
            .map(Arc::new)
            .inspect_err(|_| self.metrics.record_error())?;
        self.cache.insert(key, epoch, outcome.clone());
        let latency = started.elapsed();
        self.metrics.record(false, latency);
        Ok(Served {
            outcome,
            cache_hit: false,
            epoch,
            latency,
        })
    }

    /// Answers a batch of queries on the worker pool, preserving input order.
    ///
    /// Each worker pulls the next query as soon as it finishes its previous one (work
    /// stealing), so a mix of cache hits and expensive misses still balances across threads,
    /// and keeps one [`EngineScratch`] for its whole share of the batch so per-query candidate
    /// and kernel buffers are reused instead of reallocated.
    pub fn serve_batch(&self, prefs: &[Preference]) -> Vec<Result<Served>> {
        self.serve_batch_deadline(prefs, &Deadline::none())
    }

    /// Like [`SkylineService::serve_batch`] under one shared per-request [`Deadline`]: each
    /// item is served with the same budget (and cancel token), so cancelling the token — or
    /// the budget running out — drains the rest of the batch as
    /// [`SkylineError::DeadlineExceeded`] errors within one scan block each, releasing the
    /// workers instead of grinding out answers nobody is waiting for.
    pub fn serve_batch_deadline(
        &self,
        prefs: &[Preference],
        deadline: &Deadline,
    ) -> Vec<Result<Served>> {
        executor::run_indexed_scratch(
            prefs,
            self.workers,
            EngineScratch::default,
            |_, pref, scratch| self.serve_deadline_scratch(pref, deadline, scratch),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline::prelude::*;

    fn engine() -> SharedEngine {
        let config = ExperimentConfig {
            n: 300,
            numeric_dims: 2,
            nominal_dims: 2,
            cardinality: 6,
            theta: 1.0,
            pref_order: 2,
            distribution: Distribution::AntiCorrelated,
            seed: 5,
        };
        let data = Arc::new(config.generate_dataset());
        let template = config.template(&data);
        SharedEngine::new(
            SkylineEngine::build(data, template, EngineConfig::Hybrid { top_k: 3 }).unwrap(),
        )
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SkylineService>();
        assert_send_sync::<Served>();
    }

    #[test]
    fn repeated_queries_hit_the_cache_with_identical_answers() {
        let engine = engine();
        let service = SkylineService::new(engine.clone());
        let schema = engine.read().dataset().schema().clone();
        let template = engine.read().template().clone();
        let mut generator = QueryGenerator::new(77);
        let pref = generator.random_preference(&schema, &template, 2, None);

        let first = service.serve(&pref).unwrap();
        assert!(!first.cache_hit);
        let second = service.serve(&pref).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.epoch, second.epoch);
        assert_eq!(first.outcome.skyline, second.outcome.skyline);
        assert_eq!(
            first.outcome.skyline,
            engine.read().query(&pref).unwrap().skyline
        );

        let stats = service.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(service.cache_len(), 1);
    }

    #[test]
    fn serve_batch_preserves_order_and_matches_serial() {
        let engine = engine();
        let service = SkylineService::with_config(
            engine.clone(),
            ServiceConfig {
                workers: 4,
                ..ServiceConfig::default()
            },
        );
        let schema = engine.read().dataset().schema().clone();
        let template = engine.read().template().clone();
        let mut generator = QueryGenerator::new(13);
        let prefs = generator.zipf_workload(&schema, &template, 2, 10, 80, 1.0);

        let served = service.serve_batch(&prefs);
        assert_eq!(served.len(), prefs.len());
        for (pref, result) in prefs.iter().zip(&served) {
            let served_skyline = &result.as_ref().unwrap().outcome.skyline;
            assert_eq!(served_skyline, &engine.read().query(pref).unwrap().skyline);
        }
        let stats = service.stats();
        assert_eq!(stats.served(), 80);
        assert!(stats.hit_rate() > 0.5, "hit rate {}", stats.hit_rate());
    }

    #[test]
    fn errors_pass_through_and_are_counted() {
        let engine = engine();
        let service = SkylineService::new(engine);
        // Wrong arity: one nominal dimension instead of two.
        let bad = Preference::none(1);
        assert!(service.serve(&bad).is_err());
        let stats = service.stats();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.served(), 0);
        assert_eq!(service.cache_len(), 0);
    }

    #[test]
    fn mutations_bump_the_epoch_and_are_counted() {
        let engine = engine();
        let service = SkylineService::new(engine.clone());
        let e0 = service.epoch();
        assert_eq!(e0, DatasetEpoch::INITIAL);
        let e1 = service.insert_row(&[0.5, 0.5], &[0, 0]).unwrap();
        assert!(e1 > e0);
        let e2 = service.delete_row(0).unwrap();
        assert!(e2 > e1);
        // Deleting the same row again is a no-op: same epoch, no mutation counted.
        let e3 = service.delete_row(0).unwrap();
        assert_eq!(e3, e2);
        // Deleting a row that never existed is an error.
        assert!(service.delete_row(999_999).is_err());
        let stats = service.stats();
        assert_eq!(stats.mutations, 2);
        assert_eq!(stats.errors, 1);
        assert_eq!(service.epoch(), engine.read().epoch());
    }

    #[test]
    fn non_refining_queries_error_even_after_an_equivalent_entry_was_cached() {
        // Template with the *full-domain* implicit list [0, 1] on a cardinality-2 dimension:
        // the refining query [0, 1] and the non-refining query [0] induce the same partial
        // order, hence share a canonical cache key — but only the first may be answered.
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal("g", NominalDomain::anonymous(2)),
        ])
        .unwrap();
        let data = Arc::new(
            Dataset::from_columns(schema.clone(), vec![vec![1.0, 2.0]], vec![vec![0, 1]]).unwrap(),
        );
        let template = Template::from_preference(
            &schema,
            Preference::from_dims(vec![ImplicitPreference::new([0, 1]).unwrap()]),
        )
        .unwrap();
        let engine = SharedEngine::new(
            SkylineEngine::build(data, template, EngineConfig::AdaptiveSfs).unwrap(),
        );
        let service = SkylineService::new(engine.clone());

        let refining = Preference::from_dims(vec![ImplicitPreference::new([0, 1]).unwrap()]);
        let non_refining = Preference::from_dims(vec![ImplicitPreference::new([0]).unwrap()]);
        // Same canonical key, different refinement status.
        assert_eq!(
            refining.canonicalize(&schema).unwrap(),
            non_refining.canonicalize(&schema).unwrap()
        );
        assert!(engine.read().query(&non_refining).is_err());

        assert!(service.serve(&refining).is_ok());
        assert!(
            matches!(
                service.serve(&non_refining),
                Err(SkylineError::NotARefinement { .. })
            ),
            "cache state must not change which inputs are rejected"
        );
        assert_eq!(service.stats().errors, 1);
    }

    #[test]
    fn unmaterialized_queries_error_even_after_an_equivalent_entry_was_cached() {
        // IpoTreeTopK(1) over a cardinality-2 dimension materializes only the most frequent
        // value 0. `[0]` (servable) and `[0, 1]` (lists unmaterialized value 1) share a
        // canonical key, so the rejection must run before the cache lookup.
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal("g", NominalDomain::anonymous(2)),
        ])
        .unwrap();
        let data = Arc::new(
            Dataset::from_columns(
                schema.clone(),
                vec![vec![1.0, 2.0, 3.0]],
                vec![vec![0, 0, 1]],
            )
            .unwrap(),
        );
        let template = Template::empty(&schema);
        let engine = SharedEngine::new(
            SkylineEngine::build(data, template, EngineConfig::IpoTreeTopK(1)).unwrap(),
        );
        let service = SkylineService::new(engine.clone());

        let servable = Preference::from_dims(vec![ImplicitPreference::new([0]).unwrap()]);
        let unmaterialized = Preference::from_dims(vec![ImplicitPreference::new([0, 1]).unwrap()]);
        assert_eq!(
            servable.canonicalize(&schema).unwrap(),
            unmaterialized.canonicalize(&schema).unwrap()
        );
        assert!(engine.read().query(&unmaterialized).is_err());

        assert!(service.serve(&servable).is_ok());
        assert!(
            matches!(
                service.serve(&unmaterialized),
                Err(SkylineError::NotMaterialized { .. })
            ),
            "cache state must not change which inputs are rejected"
        );
        // The hybrid engine keeps answering the same shape of query via its fallback.
        let data = Arc::new(
            Dataset::from_columns(
                schema.clone(),
                vec![vec![1.0, 2.0, 3.0]],
                vec![vec![0, 0, 1]],
            )
            .unwrap(),
        );
        let hybrid = SkylineEngine::build(
            data,
            Template::empty(&schema),
            EngineConfig::Hybrid { top_k: 1 },
        )
        .unwrap();
        let hybrid_service = SkylineService::new(hybrid);
        assert!(hybrid_service.serve(&servable).is_ok());
        assert!(hybrid_service.serve(&unmaterialized).is_ok());
    }

    /// Satellite regression: entries cached *before* two back-to-back generation rebuilds
    /// used to be silently dropped (translation only looked at the latest remap); they must
    /// now compose through the engine's remap chain and keep serving as hits.
    #[test]
    fn back_to_back_rebuilds_keep_pre_swap_entries_warm() {
        let engine = engine();
        let service = SkylineService::new(engine.clone());
        let schema = engine.read().dataset().schema().clone();
        let template = engine.read().template().clone();
        let mut generator = QueryGenerator::new(21);
        let pref = generator.random_preference(&schema, &template, 2, None);

        // A tombstone gives the first rebuild something to reclaim (non-trivial remap); the
        // entry is cached *after* it, at the epoch the rebuild will snapshot from.
        service.delete_row(0).unwrap();
        let before = service.serve(&pref).unwrap();
        assert!(!before.cache_hit);

        // Two back-to-back rebuilds: swap 1 compacts, swap 2 has nothing to reclaim but
        // still opens a fresh epoch.
        assert!(service.force_rebuild().unwrap());
        assert!(service.force_rebuild().unwrap());
        assert_eq!(service.stats().rebuilds, 2);

        // The entry is now two swaps behind — it must translate, not drop.
        let after = service.serve(&pref).unwrap();
        assert!(after.cache_hit, "pre-swap entry must survive both swaps");
        assert_eq!(
            after.outcome.skyline,
            engine.read().query(&pref).unwrap().skyline,
            "translated ids must name the same rows in the new id space"
        );
        let stats = service.stats();
        assert_eq!(stats.remapped_hits, 1);
        assert_eq!(stats.remap_misses, 0);
        assert_eq!(stats.stale_evictions, 0);

        // Push the entry's swaps off the bounded chain: it becomes an unrecoverable
        // (counted) remap miss instead of a silent drop.
        let other = generator.random_preference(&schema, &template, 2, None);
        let cached_at = service.serve(&other).unwrap();
        assert!(!cached_at.cache_hit);
        for _ in 0..=skyline::REMAP_CHAIN_LIMIT {
            service.force_rebuild().unwrap();
        }
        let recomputed = service.serve(&other).unwrap();
        assert!(!recomputed.cache_hit, "entry fell off the remap chain");
        assert_eq!(service.stats().remap_misses, 1);
    }

    #[test]
    fn workers_default_to_available_parallelism() {
        let service = SkylineService::new(engine());
        assert!(service.workers() >= 1);
        assert!(!service.engine().read().dataset().is_empty());
    }
}
