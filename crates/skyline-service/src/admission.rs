//! Bounded admission with load shedding: the overload valve in front of the executor.
//!
//! A service without admission control converts overload into unbounded queueing — every
//! request eventually gets an answer, long after its caller stopped waiting, and the latency
//! distribution collapses. [`AdmissionQueue`] bounds how many requests may be inside the
//! service at once; past the bound, new arrivals are *shed immediately* with
//! [`SkylineError::Overloaded`] (reject-newest: the requests already inside are closest to
//! completing, so they keep their slots). Shedding is a single compare-exchange on an atomic
//! counter — the overloaded path is the cheapest path in the whole service, which is the
//! point: a service at 10× offered load must spend its cycles finishing work, not queueing
//! more of it.
//!
//! The queue is depth-only (no FIFO ordering of waiters): callers that are admitted proceed
//! straight to the executor, so "depth" measures concurrent in-service requests, batch items
//! included. Depth `0` disables the bound.

use skyline_core::{Result, SkylineError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A depth-bounded admission counter shared by every entry point of a service.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    /// Maximum concurrent admitted requests; `usize::MAX` when unbounded.
    depth: usize,
    in_service: AtomicUsize,
}

impl AdmissionQueue {
    /// A queue admitting at most `depth` concurrent requests; `0` means unbounded (admission
    /// control disabled — `try_admit` never sheds).
    pub fn new(depth: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                depth: if depth == 0 { usize::MAX } else { depth },
                in_service: AtomicUsize::new(0),
            }),
        }
    }

    /// Admits the request or sheds it: `Ok` returns a permit that holds the slot until
    /// dropped, `Err(SkylineError::Overloaded)` means the queue is full (reject-newest).
    pub fn try_admit(&self) -> Result<AdmissionPermit> {
        let mut current = self.inner.in_service.load(Ordering::Relaxed);
        loop {
            if current >= self.inner.depth {
                return Err(SkylineError::Overloaded);
            }
            match self.inner.in_service.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Ok(AdmissionPermit {
                        queue: self.inner.clone(),
                    })
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// Requests currently admitted (in service). A gauge; racy by nature.
    pub fn depth(&self) -> usize {
        self.inner.in_service.load(Ordering::Relaxed)
    }

    /// The configured bound, or `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        (self.inner.depth != usize::MAX).then_some(self.inner.depth)
    }
}

/// An admitted request's slot; dropping it (on any path — success, error, panic unwind)
/// releases the slot to the next arrival.
#[derive(Debug)]
pub struct AdmissionPermit {
    queue: Arc<Inner>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.queue.in_service.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_depth_then_sheds() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.capacity(), Some(2));
        let a = q.try_admit().unwrap();
        let b = q.try_admit().unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.try_admit().unwrap_err(), SkylineError::Overloaded);
        drop(a);
        assert_eq!(q.depth(), 1);
        let _c = q.try_admit().expect("slot freed by drop");
        drop(b);
    }

    #[test]
    fn zero_depth_disables_the_bound() {
        let q = AdmissionQueue::new(0);
        assert_eq!(q.capacity(), None);
        let permits: Vec<_> = (0..10_000).map(|_| q.try_admit().unwrap()).collect();
        assert_eq!(q.depth(), 10_000);
        drop(permits);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn clones_share_one_counter() {
        let q = AdmissionQueue::new(1);
        let q2 = q.clone();
        let _a = q.try_admit().unwrap();
        assert_eq!(q2.try_admit().unwrap_err(), SkylineError::Overloaded);
    }
}
