//! Per-key single-flight latch for cache misses.
//!
//! Right after a mutation (or a generation swap) empties the epoch-tagged cache, a popular
//! preference's next wave of queries all miss at once; without coordination each of them runs
//! the engine for the same answer. The latch collapses the wave: the first thread to miss a
//! `(canonical key, epoch)` pair becomes the **leader** and computes, the rest become
//! **followers** and block until the leader finishes, then re-check the cache — in the normal
//! case hitting the entry the leader just inserted.
//!
//! Followers block while holding the engine's *read* lock, which is safe: the leader also
//! only holds a read lock, so it always makes progress and wakes them. The latch is keyed on
//! the epoch too, so flights for different dataset versions never interfere. A leader that
//! fails (query error) still releases and wakes its followers, who then compute individually
//! — single-flight is an optimization of the success path, never a correctness gate.
//!
//! ## Streaming coalescing
//!
//! The registry is additionally generic over a **payload** `P` a streaming leader can attach
//! to its latch via [`FlightGuard::publish`] *before* it finishes. A concurrent
//! [`SingleFlight::join_streaming`] call that finds the payload returns
//! [`StreamFlightRole::Tap`] with a clone immediately — without waiting for the leader — so
//! a streaming follower can tap the leader's live emitter instead of blocking for the full
//! answer. Batch callers use the `()` default and are unaffected.

use skyline_core::{CanonicalPreference, DatasetEpoch, Deadline, Result};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// How often a blocked follower re-polls a cancel token that has no time bound attached
/// (a pure-timeout deadline wakes exactly at expiry instead).
const FOLLOWER_POLL: Duration = Duration::from_millis(10);

/// Both flags live under one mutex so a publisher's `notify_all` can never race a waiter
/// that checked the payload, found it empty, and is about to park: the publish happens-before
/// the wait or after the waiter re-acquires the lock and re-checks.
#[derive(Debug)]
struct LatchState<P> {
    done: bool,
    payload: Option<P>,
}

#[derive(Debug)]
struct Latch<P> {
    state: Mutex<LatchState<P>>,
    cv: Condvar,
}

impl<P> Default for Latch<P> {
    fn default() -> Self {
        Self {
            state: Mutex::new(LatchState {
                done: false,
                payload: None,
            }),
            cv: Condvar::new(),
        }
    }
}

/// Every critical section in this module is a single map or flag update — no invariant can
/// be left torn by a panic inside one — so a poisoned mutex (a fault-injected panic
/// elsewhere on the thread's stack) is recovered, not propagated to every later serve.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| {
        m.clear_poison();
        poisoned.into_inner()
    })
}

type Key<E> = (CanonicalPreference, E);

/// The in-flight registry (one per service). Generic over the epoch tag `E` — a
/// [`DatasetEpoch`] for a single-engine service, a per-shard epoch vector for a sharded one —
/// and over the streaming payload `P` (see the module docs; `()` for batch-only use).
#[derive(Debug)]
pub struct SingleFlight<E = DatasetEpoch, P = ()> {
    inflight: Mutex<HashMap<Key<E>, Arc<Latch<P>>>>,
}

impl<E, P> Default for SingleFlight<E, P> {
    fn default() -> Self {
        Self {
            inflight: Mutex::new(HashMap::new()),
        }
    }
}

/// What `join` decided for the calling thread.
#[derive(Debug)]
pub enum FlightRole<'a, E: Hash + Eq = DatasetEpoch, P = ()> {
    /// This thread computes; dropping the guard (success, error or panic) releases the latch
    /// and wakes every follower.
    Leader(FlightGuard<'a, E, P>),
    /// Another thread was already computing this key at this epoch; it has since finished.
    /// Re-check the cache — and on a second miss (the leader failed), compute directly.
    Followed,
}

/// What [`SingleFlight::join_streaming`] decided for the calling thread.
#[derive(Debug)]
pub enum StreamFlightRole<'a, E: Hash + Eq = DatasetEpoch, P = ()> {
    /// This thread computes (and should [`FlightGuard::publish`] its stream core so
    /// concurrent streaming joiners can tap it).
    Leader(FlightGuard<'a, E, P>),
    /// A leader is (or was) computing this key at this epoch and published its payload:
    /// tap it instead of recomputing.
    Tap(P),
    /// A leader was computing this key but finished without publishing a payload (a batch
    /// leader, or a streaming leader that failed before publishing). Re-check the cache,
    /// then compute directly on a second miss.
    Followed,
}

/// Leader's release-on-drop guard.
#[derive(Debug)]
pub struct FlightGuard<'a, E: Hash + Eq, P = ()> {
    flight: &'a SingleFlight<E, P>,
    key: Key<E>,
    latch: Arc<Latch<P>>,
}

impl<E: Hash + Eq + Clone, P> SingleFlight<E, P> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Joins the flight for `(key, epoch)`: returns [`FlightRole::Leader`] when this thread
    /// should compute, or — after having **blocked until the current leader finished** —
    /// [`FlightRole::Followed`].
    pub fn join(&self, key: &CanonicalPreference, epoch: E) -> FlightRole<'_, E, P> {
        self.join_deadline(key, epoch, &Deadline::none())
            .expect("an unbounded deadline never expires")
    }

    /// [`SingleFlight::join`] under a request [`Deadline`]: a follower waits for its leader
    /// at most until expiry, then gets [`skyline_core::SkylineError::DeadlineExceeded`] —
    /// **without touching the latch**. The leader is unaffected (it finishes, wakes the
    /// surviving followers and caches its answer as usual), and a leader's own expiry is
    /// handled by its computation erroring out, after which `FlightGuard`'s drop releases
    /// the latch on the ordinary error path.
    pub fn join_deadline(
        &self,
        key: &CanonicalPreference,
        epoch: E,
        deadline: &Deadline,
    ) -> Result<FlightRole<'_, E, P>> {
        let latch = match self.claim(key, epoch) {
            Ok(guard) => return Ok(FlightRole::Leader(guard)),
            Err(latch) => latch,
        };
        let mut state = lock_recover(&latch.state);
        while !state.done {
            state = Self::wait(&latch, state, deadline)?;
        }
        Ok(FlightRole::Followed)
    }

    /// The streaming variant of [`SingleFlight::join_deadline`]: if the current leader has
    /// [`FlightGuard::publish`]ed a payload (its live stream core), returns
    /// [`StreamFlightRole::Tap`] with a clone **immediately**, without waiting for the
    /// leader to finish. A latch whose leader already finished still serves its payload —
    /// late streaming joiners replay the finished stream for free.
    pub fn join_streaming(
        &self,
        key: &CanonicalPreference,
        epoch: E,
        deadline: &Deadline,
    ) -> Result<StreamFlightRole<'_, E, P>>
    where
        P: Clone,
    {
        let latch = match self.claim(key, epoch) {
            Ok(guard) => return Ok(StreamFlightRole::Leader(guard)),
            Err(latch) => latch,
        };
        let mut state = lock_recover(&latch.state);
        loop {
            // Payload before done: a finished latch that carries a payload is still a Tap.
            if let Some(payload) = state.payload.as_ref() {
                return Ok(StreamFlightRole::Tap(payload.clone()));
            }
            if state.done {
                return Ok(StreamFlightRole::Followed);
            }
            state = Self::wait(&latch, state, deadline)?;
        }
    }

    /// Registers this thread as leader for `(key, epoch)` or returns the existing latch.
    #[allow(clippy::type_complexity)]
    fn claim(
        &self,
        key: &CanonicalPreference,
        epoch: E,
    ) -> std::result::Result<FlightGuard<'_, E, P>, Arc<Latch<P>>> {
        let full_key = (key.clone(), epoch);
        let mut inflight = lock_recover(&self.inflight);
        match inflight.get(&full_key) {
            Some(latch) => Err(latch.clone()),
            None => {
                let latch = Arc::new(Latch::default());
                inflight.insert(full_key.clone(), latch.clone());
                Ok(FlightGuard {
                    flight: self,
                    key: full_key,
                    latch,
                })
            }
        }
    }

    /// One bounded (or unbounded) wait on the latch's condvar under `deadline`.
    fn wait<'l>(
        latch: &'l Latch<P>,
        state: MutexGuard<'l, LatchState<P>>,
        deadline: &Deadline,
    ) -> Result<MutexGuard<'l, LatchState<P>>> {
        if deadline.is_bounded() {
            deadline.check()?;
            // Wake at expiry; a cancel-only deadline has no instant to wake at, so poll
            // its token every FOLLOWER_POLL instead.
            let wait = deadline
                .remaining()
                .map_or(FOLLOWER_POLL, |rem| rem.min(FOLLOWER_POLL));
            Ok(latch
                .cv
                .wait_timeout(state, wait)
                .unwrap_or_else(|poisoned| {
                    latch.state.clear_poison();
                    poisoned.into_inner()
                })
                .0)
        } else {
            Ok(latch.cv.wait(state).unwrap_or_else(|poisoned| {
                latch.state.clear_poison();
                poisoned.into_inner()
            }))
        }
    }

    /// Number of flights currently in progress (diagnostics).
    pub fn in_flight(&self) -> usize {
        lock_recover(&self.inflight).len()
    }
}

impl<E: Hash + Eq, P> FlightGuard<'_, E, P> {
    /// Attaches the leader's payload (its live stream core) to the latch and wakes every
    /// waiter: concurrent [`SingleFlight::join_streaming`] calls for the same key now tap
    /// it instead of blocking. Idempotent — the latest publish wins.
    pub fn publish(&self, payload: P) {
        let mut state = lock_recover(&self.latch.state);
        state.payload = Some(payload);
        self.latch.cv.notify_all();
    }
}

impl<E: Hash + Eq, P> Drop for FlightGuard<'_, E, P> {
    fn drop(&mut self) {
        let mut inflight = lock_recover(&self.flight.inflight);
        inflight.remove(&self.key);
        drop(inflight);
        let mut state = lock_recover(&self.latch.state);
        state.done = true;
        self.latch.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::{Dimension, NominalDomain, Preference, Schema};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn key(v: u16) -> CanonicalPreference {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal("g", NominalDomain::anonymous(8)),
        ])
        .unwrap();
        let pref = Preference::from_dims(vec![skyline_core::ImplicitPreference::new([v]).unwrap()]);
        CanonicalPreference::new(&schema, &pref).unwrap()
    }

    #[test]
    fn one_leader_many_followers() {
        const THREADS: usize = 8;
        let flight = SingleFlight::<DatasetEpoch>::new();
        let leaders = AtomicUsize::new(0);
        let followers = AtomicUsize::new(0);
        let barrier = Barrier::new(THREADS);
        let k = key(1);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    barrier.wait();
                    match flight.join(&k, DatasetEpoch::INITIAL) {
                        FlightRole::Leader(_guard) => {
                            // Hold the flight long enough that the others pile up behind it.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                        FlightRole::Followed => {
                            followers.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        // Followers may re-join as a new leader only if they arrived after the release; with
        // the barrier + sleep, everyone piles onto the first flight.
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
        assert_eq!(followers.load(Ordering::SeqCst), THREADS - 1);
        assert_eq!(flight.in_flight(), 0, "guard drop cleans the registry");
    }

    #[test]
    fn follower_deadline_expires_without_touching_the_latch() {
        let flight = SingleFlight::<DatasetEpoch>::new();
        let k = key(1);
        let leader = flight.join(&k, DatasetEpoch::INITIAL);
        assert!(matches!(leader, FlightRole::Leader(_)));
        // A bounded follower gives up at expiry...
        let err = flight
            .join_deadline(
                &k,
                DatasetEpoch::INITIAL,
                &Deadline::within(Duration::from_millis(5)),
            )
            .unwrap_err();
        assert_eq!(err, skyline_core::SkylineError::DeadlineExceeded);
        // ...and a fired cancel token (no time bound) gives up on its next poll.
        let token = skyline_core::CancelToken::new();
        token.cancel();
        assert!(flight
            .join_deadline(
                &k,
                DatasetEpoch::INITIAL,
                &Deadline::none().with_cancel(token)
            )
            .is_err());
        // The flight itself is untouched: still in progress, releases normally.
        assert_eq!(flight.in_flight(), 1);
        drop(leader);
        assert_eq!(flight.in_flight(), 0);
        assert!(matches!(
            flight.join(&k, DatasetEpoch::INITIAL),
            FlightRole::Leader(_)
        ));
    }

    #[test]
    fn distinct_keys_and_epochs_fly_separately() {
        let flight = SingleFlight::<DatasetEpoch>::new();
        let a = flight.join(&key(1), DatasetEpoch::INITIAL);
        let b = flight.join(&key(2), DatasetEpoch::INITIAL);
        assert!(matches!(a, FlightRole::Leader(_)));
        assert!(matches!(b, FlightRole::Leader(_)));
        assert_eq!(flight.in_flight(), 2);
        drop(a);
        drop(b);
        // Same key, new epoch: a fresh flight (the epoch is part of the key).
        let mut block = skyline_core::PointBlock::new(
            &skyline_core::Dataset::from_columns(
                Schema::new(vec![Dimension::numeric("x")]).unwrap(),
                vec![vec![1.0]],
                vec![],
            )
            .unwrap(),
        );
        block.tombstone(0).unwrap();
        let later = block.epoch();
        let c = flight.join(&key(1), later);
        assert!(matches!(c, FlightRole::Leader(_)));
    }

    #[test]
    fn streaming_joiners_tap_a_published_payload() {
        let flight = SingleFlight::<DatasetEpoch, Arc<u64>>::new();
        let k = key(3);
        let none = Deadline::none();
        let leader = match flight
            .join_streaming(&k, DatasetEpoch::INITIAL, &none)
            .unwrap()
        {
            StreamFlightRole::Leader(guard) => guard,
            other => panic!("first joiner must lead, got {other:?}"),
        };
        // Before publish: a bounded streaming joiner waits and times out like a batch one.
        let err = flight
            .join_streaming(
                &k,
                DatasetEpoch::INITIAL,
                &Deadline::within(Duration::from_millis(5)),
            )
            .unwrap_err();
        assert_eq!(err, skyline_core::SkylineError::DeadlineExceeded);

        leader.publish(Arc::new(42));
        // After publish: taps return immediately, even under a tight deadline.
        match flight
            .join_streaming(
                &k,
                DatasetEpoch::INITIAL,
                &Deadline::within(Duration::from_secs(5)),
            )
            .unwrap()
        {
            StreamFlightRole::Tap(payload) => assert_eq!(*payload, 42),
            other => panic!("expected a tap, got {other:?}"),
        }

        // Re-publishing replaces the payload: the latest one wins for later joiners.
        leader.publish(Arc::new(43));
        match flight
            .join_streaming(&k, DatasetEpoch::INITIAL, &none)
            .unwrap()
        {
            StreamFlightRole::Tap(payload) => assert_eq!(*payload, 43),
            other => panic!("expected a tap, got {other:?}"),
        }
        drop(leader);
        assert_eq!(flight.in_flight(), 0);

        // Concurrent waiter parked before any publish is woken into a tap by the first one.
        let k2 = key(7);
        let fresh = match flight
            .join_streaming(&k2, DatasetEpoch::INITIAL, &none)
            .unwrap()
        {
            StreamFlightRole::Leader(guard) => guard,
            other => panic!("first joiner must lead, got {other:?}"),
        };
        let barrier = Barrier::new(2);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                barrier.wait();
                flight
                    .join_streaming(&k2, DatasetEpoch::INITIAL, &none)
                    .unwrap()
            });
            barrier.wait();
            std::thread::sleep(Duration::from_millis(20));
            fresh.publish(Arc::new(7));
            match waiter.join().unwrap() {
                StreamFlightRole::Tap(payload) => assert_eq!(*payload, 7),
                other => panic!("expected a tap, got {other:?}"),
            }
        });
        drop(fresh);
        assert_eq!(flight.in_flight(), 0);

        // A finished latch is gone from the registry: the next streaming joiner leads anew.
        assert!(matches!(
            flight
                .join_streaming(&k, DatasetEpoch::INITIAL, &none)
                .unwrap(),
            StreamFlightRole::Leader(_)
        ));
    }

    #[test]
    fn batch_leader_without_payload_yields_followed_to_streamers() {
        let flight = SingleFlight::<DatasetEpoch, Arc<u64>>::new();
        let k = key(4);
        let leader = flight.join(&k, DatasetEpoch::INITIAL);
        assert!(matches!(leader, FlightRole::Leader(_)));
        let barrier = Barrier::new(2);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                barrier.wait();
                flight
                    .join_streaming(&k, DatasetEpoch::INITIAL, &Deadline::none())
                    .unwrap()
            });
            barrier.wait();
            std::thread::sleep(Duration::from_millis(20));
            drop(leader);
            assert!(matches!(waiter.join().unwrap(), StreamFlightRole::Followed));
        });
    }
}
