//! Per-key single-flight latch for cache misses.
//!
//! Right after a mutation (or a generation swap) empties the epoch-tagged cache, a popular
//! preference's next wave of queries all miss at once; without coordination each of them runs
//! the engine for the same answer. The latch collapses the wave: the first thread to miss a
//! `(canonical key, epoch)` pair becomes the **leader** and computes, the rest become
//! **followers** and block until the leader finishes, then re-check the cache — in the normal
//! case hitting the entry the leader just inserted.
//!
//! Followers block while holding the engine's *read* lock, which is safe: the leader also
//! only holds a read lock, so it always makes progress and wakes them. The latch is keyed on
//! the epoch too, so flights for different dataset versions never interfere. A leader that
//! fails (query error) still releases and wakes its followers, who then compute individually
//! — single-flight is an optimization of the success path, never a correctness gate.

use skyline_core::{CanonicalPreference, DatasetEpoch, Deadline, Result};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// How often a blocked follower re-polls a cancel token that has no time bound attached
/// (a pure-timeout deadline wakes exactly at expiry instead).
const FOLLOWER_POLL: Duration = Duration::from_millis(10);

#[derive(Debug, Default)]
struct Latch {
    done: Mutex<bool>,
    cv: Condvar,
}

/// Every critical section in this module is a single map or bool update — no invariant can
/// be left torn by a panic inside one — so a poisoned mutex (a fault-injected panic
/// elsewhere on the thread's stack) is recovered, not propagated to every later serve.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| {
        m.clear_poison();
        poisoned.into_inner()
    })
}

type Key<E> = (CanonicalPreference, E);

/// The in-flight registry (one per service). Generic over the epoch tag `E` — a
/// [`DatasetEpoch`] for a single-engine service, a per-shard epoch vector for a sharded one.
#[derive(Debug)]
pub struct SingleFlight<E = DatasetEpoch> {
    inflight: Mutex<HashMap<Key<E>, Arc<Latch>>>,
}

impl<E> Default for SingleFlight<E> {
    fn default() -> Self {
        Self {
            inflight: Mutex::new(HashMap::new()),
        }
    }
}

/// What `join` decided for the calling thread.
#[derive(Debug)]
pub enum FlightRole<'a, E: Hash + Eq = DatasetEpoch> {
    /// This thread computes; dropping the guard (success, error or panic) releases the latch
    /// and wakes every follower.
    Leader(FlightGuard<'a, E>),
    /// Another thread was already computing this key at this epoch; it has since finished.
    /// Re-check the cache — and on a second miss (the leader failed), compute directly.
    Followed,
}

/// Leader's release-on-drop guard.
#[derive(Debug)]
pub struct FlightGuard<'a, E: Hash + Eq = DatasetEpoch> {
    flight: &'a SingleFlight<E>,
    key: Key<E>,
    latch: Arc<Latch>,
}

impl<E: Hash + Eq + Clone> SingleFlight<E> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Joins the flight for `(key, epoch)`: returns [`FlightRole::Leader`] when this thread
    /// should compute, or — after having **blocked until the current leader finished** —
    /// [`FlightRole::Followed`].
    pub fn join(&self, key: &CanonicalPreference, epoch: E) -> FlightRole<'_, E> {
        self.join_deadline(key, epoch, &Deadline::none())
            .expect("an unbounded deadline never expires")
    }

    /// [`SingleFlight::join`] under a request [`Deadline`]: a follower waits for its leader
    /// at most until expiry, then gets [`skyline_core::SkylineError::DeadlineExceeded`] —
    /// **without touching the latch**. The leader is unaffected (it finishes, wakes the
    /// surviving followers and caches its answer as usual), and a leader's own expiry is
    /// handled by its computation erroring out, after which `FlightGuard`'s drop releases
    /// the latch on the ordinary error path.
    pub fn join_deadline(
        &self,
        key: &CanonicalPreference,
        epoch: E,
        deadline: &Deadline,
    ) -> Result<FlightRole<'_, E>> {
        let full_key = (key.clone(), epoch);
        let latch = {
            let mut inflight = lock_recover(&self.inflight);
            match inflight.get(&full_key) {
                Some(latch) => latch.clone(),
                None => {
                    let latch = Arc::new(Latch::default());
                    inflight.insert(full_key.clone(), latch.clone());
                    return Ok(FlightRole::Leader(FlightGuard {
                        flight: self,
                        key: full_key,
                        latch,
                    }));
                }
            }
        };
        let mut done = lock_recover(&latch.done);
        while !*done {
            if deadline.is_bounded() {
                deadline.check()?;
                // Wake at expiry; a cancel-only deadline has no instant to wake at, so
                // poll its token every FOLLOWER_POLL instead.
                let wait = deadline
                    .remaining()
                    .map_or(FOLLOWER_POLL, |rem| rem.min(FOLLOWER_POLL));
                done = latch
                    .cv
                    .wait_timeout(done, wait)
                    .unwrap_or_else(|poisoned| {
                        latch.done.clear_poison();
                        poisoned.into_inner()
                    })
                    .0;
            } else {
                done = latch.cv.wait(done).unwrap_or_else(|poisoned| {
                    latch.done.clear_poison();
                    poisoned.into_inner()
                });
            }
        }
        Ok(FlightRole::Followed)
    }

    /// Number of flights currently in progress (diagnostics).
    pub fn in_flight(&self) -> usize {
        lock_recover(&self.inflight).len()
    }
}

impl<E: Hash + Eq> Drop for FlightGuard<'_, E> {
    fn drop(&mut self) {
        let mut inflight = lock_recover(&self.flight.inflight);
        inflight.remove(&self.key);
        drop(inflight);
        let mut done = lock_recover(&self.latch.done);
        *done = true;
        self.latch.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::{Dimension, NominalDomain, Preference, Schema};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn key(v: u16) -> CanonicalPreference {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal("g", NominalDomain::anonymous(8)),
        ])
        .unwrap();
        let pref = Preference::from_dims(vec![skyline_core::ImplicitPreference::new([v]).unwrap()]);
        CanonicalPreference::new(&schema, &pref).unwrap()
    }

    #[test]
    fn one_leader_many_followers() {
        const THREADS: usize = 8;
        let flight = SingleFlight::new();
        let leaders = AtomicUsize::new(0);
        let followers = AtomicUsize::new(0);
        let barrier = Barrier::new(THREADS);
        let k = key(1);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    barrier.wait();
                    match flight.join(&k, DatasetEpoch::INITIAL) {
                        FlightRole::Leader(_guard) => {
                            // Hold the flight long enough that the others pile up behind it.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                        FlightRole::Followed => {
                            followers.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        // Followers may re-join as a new leader only if they arrived after the release; with
        // the barrier + sleep, everyone piles onto the first flight.
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
        assert_eq!(followers.load(Ordering::SeqCst), THREADS - 1);
        assert_eq!(flight.in_flight(), 0, "guard drop cleans the registry");
    }

    #[test]
    fn follower_deadline_expires_without_touching_the_latch() {
        let flight = SingleFlight::new();
        let k = key(1);
        let leader = flight.join(&k, DatasetEpoch::INITIAL);
        assert!(matches!(leader, FlightRole::Leader(_)));
        // A bounded follower gives up at expiry...
        let err = flight
            .join_deadline(
                &k,
                DatasetEpoch::INITIAL,
                &Deadline::within(Duration::from_millis(5)),
            )
            .unwrap_err();
        assert_eq!(err, skyline_core::SkylineError::DeadlineExceeded);
        // ...and a fired cancel token (no time bound) gives up on its next poll.
        let token = skyline_core::CancelToken::new();
        token.cancel();
        assert!(flight
            .join_deadline(
                &k,
                DatasetEpoch::INITIAL,
                &Deadline::none().with_cancel(token)
            )
            .is_err());
        // The flight itself is untouched: still in progress, releases normally.
        assert_eq!(flight.in_flight(), 1);
        drop(leader);
        assert_eq!(flight.in_flight(), 0);
        assert!(matches!(
            flight.join(&k, DatasetEpoch::INITIAL),
            FlightRole::Leader(_)
        ));
    }

    #[test]
    fn distinct_keys_and_epochs_fly_separately() {
        let flight = SingleFlight::new();
        let a = flight.join(&key(1), DatasetEpoch::INITIAL);
        let b = flight.join(&key(2), DatasetEpoch::INITIAL);
        assert!(matches!(a, FlightRole::Leader(_)));
        assert!(matches!(b, FlightRole::Leader(_)));
        assert_eq!(flight.in_flight(), 2);
        drop(a);
        drop(b);
        // Same key, new epoch: a fresh flight (the epoch is part of the key).
        let mut block = skyline_core::PointBlock::new(
            &skyline_core::Dataset::from_columns(
                Schema::new(vec![Dimension::numeric("x")]).unwrap(),
                vec![vec![1.0]],
                vec![],
            )
            .unwrap(),
        );
        block.tombstone(0).unwrap();
        let later = block.epoch();
        let c = flight.join(&key(1), later);
        assert!(matches!(c, FlightRole::Leader(_)));
    }
}
