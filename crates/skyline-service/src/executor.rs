//! Worker-pool batch executor on `std::thread` + channels (no external dependencies).
//!
//! A batch is pushed through one shared task channel that `workers` scoped threads drain;
//! results flow back over a second channel tagged with their input index, so the output vector
//! preserves input order regardless of which worker finished first. Scoped threads let workers
//! borrow the batch and the service directly — no `'static` bounds, no cloning per task.

use std::sync::{mpsc, Mutex};
use std::thread;

/// Applies `f` to every item of `items` on a pool of `workers` threads, returning the results
/// in input order. Every worker owns one scratch value created by `init`, reused across all
/// tasks that worker processes.
///
/// `workers` is clamped to `1..=items.len()`; with one worker (or one item) the pool is
/// skipped entirely and the batch runs inline on the caller's thread (still with exactly one
/// scratch). The per-worker scratch is how the service avoids per-query allocations: a worker
/// drains hundreds of queries with a single set of candidate/kernel buffers instead of
/// allocating fresh ones per task.
pub(crate) fn run_indexed_scratch<T, R, S, I, F>(
    items: &[T],
    workers: usize,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &T, &mut S) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, items.len());
    if workers == 1 {
        let mut scratch = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(i, t, &mut scratch))
            .collect();
    }

    let (task_tx, task_rx) = mpsc::channel::<usize>();
    // mpsc receivers are single-consumer; the mutex turns the pool into work stealing — an
    // idle worker grabs the next index as soon as it finishes, so skewed per-item costs
    // (cache hit vs. full engine query) still balance.
    let task_rx = Mutex::new(task_rx);
    let (result_tx, result_rx) = mpsc::channel::<(usize, R)>();

    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            let result_tx = result_tx.clone();
            let task_rx = &task_rx;
            let f = &f;
            let init = &init;
            scope.spawn(move || {
                let mut scratch = init();
                loop {
                    // Recovered rather than propagated: `recv` holds no shared mutable state
                    // a panic could tear, and one worker dying (a panicking task closure
                    // caught further up) must not strand the rest of the batch.
                    let next = task_rx
                        .lock()
                        .unwrap_or_else(|poisoned| {
                            task_rx.clear_poison();
                            poisoned.into_inner()
                        })
                        .recv();
                    match next {
                        Ok(i) => {
                            if result_tx.send((i, f(i, &items[i], &mut scratch))).is_err() {
                                break; // Receiver gone: the batch was abandoned.
                            }
                        }
                        Err(_) => break, // Sender dropped: batch fully dispatched.
                    }
                }
            });
        }
        for i in 0..items.len() {
            task_tx.send(i).expect("workers outlive dispatch");
        }
        drop(task_tx);
        drop(result_tx);
        for (i, r) in result_rx {
            results[i] = Some(r);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index produced exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = run_indexed_scratch(
            &items,
            8,
            || (),
            |i, &x, ()| {
                // Stagger completion so out-of-order finishes are likely.
                std::thread::sleep(std::time::Duration::from_micros((100 - i as u64) % 7));
                x * 2
            },
        );
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_returns_empty() {
        let out: Vec<u32> = run_indexed_scratch(&[] as &[u32], 4, || (), |_, &x, ()| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_runs_inline() {
        let calls = AtomicUsize::new(0);
        let items = [1, 2, 3];
        let out = run_indexed_scratch(
            &items,
            1,
            || (),
            |i, &x, ()| {
                calls.fetch_add(1, Ordering::Relaxed);
                x + i
            },
        );
        assert_eq!(out, vec![1, 3, 5]);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn oversized_worker_count_is_clamped() {
        let items = [10, 20];
        let out = run_indexed_scratch(&items, 64, || (), |_, &x, ()| x);
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn scratch_is_created_once_per_worker_and_reused() {
        let inits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let out = run_indexed_scratch(
            &items,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |_, &x, buf| {
                buf.push(x);
                buf.len()
            },
        );
        assert_eq!(out.len(), 64);
        assert!(
            inits.load(Ordering::Relaxed) <= 4,
            "at most one scratch per worker"
        );
        assert!(
            out.iter().any(|&n| n > 1),
            "some worker must reuse its scratch across tasks"
        );
    }

    #[test]
    fn inline_path_uses_a_single_scratch() {
        let inits = AtomicUsize::new(0);
        let items = [1, 2, 3];
        let out = run_indexed_scratch(
            &items,
            1,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |_, &x, acc| {
                *acc += x;
                *acc
            },
        );
        assert_eq!(out, vec![1, 3, 6]);
        assert_eq!(inits.load(Ordering::Relaxed), 1);
    }
}
