//! Sharded LRU result cache keyed on canonical preferences, tagged with dataset epochs.
//!
//! Thousands of users sharing the exact same preference is the normal case in the paper's
//! workload (nominal values — and hence stated preferences — follow a Zipfian skew), so the
//! service memoizes full query answers. Keys are [`skyline_core::CanonicalPreference`]s: two
//! textually different but semantically equal preferences hit the same entry.
//!
//! Every entry carries the [`DatasetEpoch`] it was computed at. A lookup passes the engine's
//! *current* epoch; an entry from another epoch is stale, counts as a miss and is dropped on
//! the spot. A dataset mutation therefore invalidates every cached result **atomically** (the
//! epoch moved, so no stale entry can ever be returned) without flushing anything — stale
//! entries expire lazily, one by one, exactly when they are next touched or evicted by
//! capacity.
//!
//! The cache is split into independently locked shards so concurrent workers rarely contend;
//! a key's shard is chosen from its stable fingerprint. Each shard runs the classic
//! stamp-queue LRU: every touch pushes a fresh `(stamp, key)` pair onto a queue, and eviction
//! pops queue entries until one's stamp matches the live entry — amortized O(1), no linked
//! lists, no unsafe.

use skyline::{GenerationRemap, QueryOutcome};
use skyline_core::{CanonicalPreference, DatasetEpoch};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A sharded, thread-safe LRU cache from canonical preferences to epoch-tagged query
/// outcomes.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    /// Entries dropped because their epoch no longer matched the engine's (lazy expiry).
    stale_evictions: AtomicU64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CanonicalPreference, Entry>,
    /// `(stamp, key)` pairs, oldest first; an entry is stale when its stamp no longer matches
    /// the map entry's current stamp (the key was touched again later).
    queue: VecDeque<(u64, CanonicalPreference)>,
    next_stamp: u64,
}

#[derive(Debug)]
struct Entry {
    value: Arc<QueryOutcome>,
    stamp: u64,
    /// The dataset epoch the outcome was computed at.
    epoch: DatasetEpoch,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries spread over `shards` locks.
    ///
    /// A `capacity` of 0 disables caching (every lookup misses, inserts are dropped); `shards`
    /// is clamped to at least 1 and at most `capacity.max(1)`. When `capacity` is not a
    /// multiple of the shard count, the per-shard budget rounds **up**, so the effective
    /// maximum — reported by [`ResultCache::capacity`] — can exceed the request by up to
    /// `shards - 1` entries.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shard_count = shards.clamp(1, capacity.max(1));
        let capacity_per_shard = capacity.div_ceil(shard_count);
        Self {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            capacity_per_shard,
            stale_evictions: AtomicU64::new(0),
        }
    }

    /// Entries dropped so far because their epoch no longer matched the lookup's.
    pub fn stale_evictions(&self) -> u64 {
        self.stale_evictions.load(Ordering::Relaxed)
    }

    /// Number of shards the key space is split over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Maximum number of entries the cache will hold.
    pub fn capacity(&self) -> usize {
        self.capacity_per_shard * self.shards.len()
    }

    /// Current number of cached entries (sums per-shard sizes; a racing snapshot).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, key: &CanonicalPreference) -> &Mutex<Shard> {
        // The map itself re-hashes the fingerprint, so using its upper bits for shard
        // selection does not correlate with bucket placement inside the shard.
        let idx = (key.fingerprint() >> 32) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Looks up a cached outcome computed at exactly `epoch`, refreshing the entry's recency
    /// on a hit. An entry tagged with any other epoch is stale: it is dropped immediately,
    /// counted in [`ResultCache::stale_evictions`], and the lookup misses.
    pub fn get(&self, key: &CanonicalPreference, epoch: DatasetEpoch) -> Option<Arc<QueryOutcome>> {
        self.get_or_translate(key, epoch, None).map(|(v, _)| v)
    }

    /// Like [`ResultCache::get`], but **remap-aware**: when the engine's most recent
    /// generation swap is the *only* thing separating an entry from the lookup — the entry is
    /// tagged with exactly [`GenerationRemap::from`] and the lookup runs at
    /// [`GenerationRemap::to`] — the entry's skyline is semantically still correct, just
    /// written in the old (pre-compaction) row-id space. Instead of dropping it, the ids are
    /// rewritten through the remap and the entry is re-tagged at the new epoch, so a swap does
    /// not cold-start the cache. Returns the outcome plus whether a translation happened.
    ///
    /// Entries from *earlier* epochs predate real mutations the remap knows nothing about and
    /// expire as usual. A skyline at `from` only names rows live at `from`, all of which
    /// survive the compaction (it reclaims rows that were already dead), so the translation
    /// itself cannot fail; if it ever did, the entry is dropped as stale.
    pub fn get_or_translate(
        &self,
        key: &CanonicalPreference,
        epoch: DatasetEpoch,
        remap: Option<&GenerationRemap>,
    ) -> Option<(Arc<QueryOutcome>, bool)> {
        if self.capacity_per_shard == 0 {
            return None;
        }
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        let stamp = shard.bump_stamp();
        let entry = shard.map.get_mut(key)?;
        if entry.epoch != epoch {
            let translated = remap
                .filter(|r| entry.epoch == r.from && epoch == r.to)
                .and_then(|r| r.remap.translate_ids(&entry.value.skyline));
            let Some(skyline) = translated else {
                shard.map.remove(key);
                self.stale_evictions.fetch_add(1, Ordering::Relaxed);
                return None;
            };
            entry.value = Arc::new(QueryOutcome {
                skyline,
                method: entry.value.method,
            });
            entry.epoch = epoch;
            entry.stamp = stamp;
            let value = entry.value.clone();
            shard.queue.push_back((stamp, key.clone()));
            shard.compact_if_bloated();
            return Some((value, true));
        }
        entry.stamp = stamp;
        let value = entry.value.clone();
        shard.queue.push_back((stamp, key.clone()));
        shard.compact_if_bloated();
        Some((value, false))
    }

    /// Inserts (or refreshes) an outcome computed at `epoch`, evicting least-recently-used
    /// entries over capacity.
    pub fn insert(&self, key: CanonicalPreference, epoch: DatasetEpoch, value: Arc<QueryOutcome>) {
        if self.capacity_per_shard == 0 {
            return;
        }
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        let stamp = shard.bump_stamp();
        shard.queue.push_back((stamp, key.clone()));
        shard.map.insert(
            key,
            Entry {
                value,
                stamp,
                epoch,
            },
        );
        while shard.map.len() > self.capacity_per_shard {
            let Some((stamp, key)) = shard.queue.pop_front() else {
                break; // Unreachable: every map entry has a live queue pair.
            };
            if shard.map.get(&key).is_some_and(|e| e.stamp == stamp) {
                shard.map.remove(&key);
            }
        }
        shard.compact_if_bloated();
    }
}

impl Shard {
    fn bump_stamp(&mut self) -> u64 {
        self.next_stamp += 1;
        self.next_stamp
    }

    /// Drops stale queue pairs when hits have let the queue outgrow the map, so a read-heavy
    /// steady state cannot grow memory without bound.
    fn compact_if_bloated(&mut self) {
        if self.queue.len() > 2 * self.map.len() + 16 {
            let map = &self.map;
            self.queue
                .retain(|(stamp, key)| map.get(key).is_some_and(|e| e.stamp == *stamp));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline::{MethodUsed, QueryOutcome};
    use skyline_core::{Dimension, NominalDomain, Preference, Schema};

    const E0: DatasetEpoch = DatasetEpoch::INITIAL;

    fn schema(cardinality: usize) -> Schema {
        Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal("g", NominalDomain::anonymous(cardinality)),
        ])
        .unwrap()
    }

    fn key(schema: &Schema, choices: &[u16]) -> CanonicalPreference {
        let pref = Preference::from_dims(vec![skyline_core::ImplicitPreference::new(
            choices.iter().copied(),
        )
        .unwrap()]);
        CanonicalPreference::new(schema, &pref).unwrap()
    }

    fn outcome(id: u32) -> Arc<QueryOutcome> {
        Arc::new(QueryOutcome {
            skyline: vec![id],
            method: MethodUsed::IpoTree,
        })
    }

    #[test]
    fn get_after_insert_round_trips() {
        let schema = schema(8);
        let cache = ResultCache::new(16, 4);
        assert!(cache.is_empty());
        let k = key(&schema, &[3]);
        assert!(cache.get(&k, E0).is_none());
        cache.insert(k.clone(), E0, outcome(7));
        assert_eq!(cache.get(&k, E0).unwrap().skyline, vec![7]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.capacity(), 16);
        assert_eq!(cache.shard_count(), 4);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let schema = schema(16);
        // Single shard so recency order is deterministic.
        let cache = ResultCache::new(3, 1);
        let keys: Vec<CanonicalPreference> = (0u16..4).map(|v| key(&schema, &[v])).collect();
        for (i, k) in keys.iter().take(3).enumerate() {
            cache.insert(k.clone(), E0, outcome(i as u32));
        }
        // Touch key 0 so key 1 becomes the LRU victim.
        assert!(cache.get(&keys[0], E0).is_some());
        cache.insert(keys[3].clone(), E0, outcome(3));
        assert_eq!(cache.len(), 3);
        assert!(cache.get(&keys[0], E0).is_some());
        assert!(
            cache.get(&keys[1], E0).is_none(),
            "coldest entry must be gone"
        );
        assert!(cache.get(&keys[2], E0).is_some());
        assert!(cache.get(&keys[3], E0).is_some());
    }

    #[test]
    fn reinserting_a_key_refreshes_instead_of_growing() {
        let schema = schema(8);
        let cache = ResultCache::new(2, 1);
        let k = key(&schema, &[1]);
        cache.insert(k.clone(), E0, outcome(1));
        cache.insert(k.clone(), E0, outcome(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&k, E0).unwrap().skyline, vec![2]);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let schema = schema(8);
        let cache = ResultCache::new(0, 8);
        let k = key(&schema, &[1]);
        cache.insert(k.clone(), E0, outcome(1));
        assert!(cache.get(&k, E0).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn hit_heavy_workloads_do_not_grow_the_queue_without_bound() {
        let schema = schema(8);
        let cache = ResultCache::new(4, 1);
        let k = key(&schema, &[2]);
        cache.insert(k.clone(), E0, outcome(1));
        for _ in 0..10_000 {
            assert!(cache.get(&k, E0).is_some());
        }
        let shard = cache.shards[0].lock().unwrap();
        assert!(
            shard.queue.len() <= 2 * shard.map.len() + 17,
            "queue length {} not compacted",
            shard.queue.len()
        );
    }

    #[test]
    fn epoch_mismatch_expires_lazily_and_is_counted() {
        let schema = schema(8);
        let cache = ResultCache::new(8, 2);
        let (k1, k2) = (key(&schema, &[1]), key(&schema, &[2]));
        cache.insert(k1.clone(), E0, outcome(1));
        cache.insert(k2.clone(), E0, outcome(2));
        assert_eq!(cache.len(), 2);

        // The "mutation": lookups now run at a later epoch. Nothing is flushed eagerly…
        let bumped = {
            let mut block = skyline_core::PointBlock::new(
                &skyline_core::Dataset::from_columns(
                    schema.clone(),
                    vec![vec![1.0]],
                    vec![vec![0]],
                )
                .unwrap(),
            );
            block.tombstone(0).unwrap();
            block.epoch()
        };
        assert_eq!(cache.len(), 2, "no global flush");
        // …but a stale entry can never be returned: it expires on first touch.
        assert!(cache.get(&k1, bumped).is_none());
        assert_eq!(cache.stale_evictions(), 1);
        assert_eq!(cache.len(), 1, "expired entry is dropped in place");
        // A fresh answer cached at the new epoch serves normally.
        cache.insert(k1.clone(), bumped, outcome(9));
        assert_eq!(cache.get(&k1, bumped).unwrap().skyline, vec![9]);
        // The untouched key still holds its stale entry until it is looked up.
        assert!(cache.get(&k2, bumped).is_none());
        assert_eq!(cache.stale_evictions(), 2);
        assert!(cache.get(&k2, E0).is_none(), "dropped, not resurrected");
    }

    #[test]
    fn generation_swaps_translate_entries_instead_of_dropping_them() {
        use skyline_core::{Dataset, PointBlock};

        let schema = schema(8);
        let cache = ResultCache::new(8, 2);
        let k = key(&schema, &[1]);

        // A block whose rows 0 and 2 are dead; the swap compacts it.
        let data = Dataset::from_columns(
            schema.clone(),
            vec![vec![1.0, 2.0, 3.0, 4.0, 5.0]],
            vec![vec![0, 1, 2, 3, 4]],
        )
        .unwrap();
        let mut block = PointBlock::new(&data);
        block.tombstone(0).unwrap();
        block.tombstone(2).unwrap();
        let from = block.epoch();
        let (compact, remap) = block.compacted();
        let swap = GenerationRemap {
            remap: Arc::new(remap),
            from,
            to: compact.epoch(),
        };

        // An entry cached at exactly the pre-swap epoch, naming (live) rows 1, 3, 4.
        cache.insert(
            k.clone(),
            from,
            Arc::new(QueryOutcome {
                skyline: vec![1, 3, 4],
                method: MethodUsed::AdaptiveSfs,
            }),
        );
        // Looked up at the post-swap epoch with the remap: translated, not dropped.
        let (outcome, translated) = cache.get_or_translate(&k, swap.to, Some(&swap)).unwrap();
        assert!(translated);
        assert_eq!(
            outcome.skyline,
            vec![0, 1, 2],
            "ids rewritten to the new space"
        );
        assert_eq!(outcome.method, MethodUsed::AdaptiveSfs);
        assert_eq!(cache.stale_evictions(), 0);
        // The entry is now re-tagged: a plain lookup at the new epoch hits without a remap.
        let (again, translated) = cache.get_or_translate(&k, swap.to, None).unwrap();
        assert!(!translated);
        assert_eq!(again.skyline, vec![0, 1, 2]);

        // An entry from an *older* epoch is not translatable and expires as usual.
        let k2 = key(&schema, &[2]);
        cache.insert(k2.clone(), E0, outcome.clone());
        assert!(cache.get_or_translate(&k2, swap.to, Some(&swap)).is_none());
        assert_eq!(cache.stale_evictions(), 1);
    }

    #[test]
    fn equivalent_preferences_share_an_entry() {
        let schema = schema(2);
        let cache = ResultCache::new(8, 2);
        // On a 2-value domain, [0, 1] and [0] are the same partial order.
        cache.insert(key(&schema, &[0, 1]), E0, outcome(9));
        assert_eq!(cache.get(&key(&schema, &[0]), E0).unwrap().skyline, vec![9]);
        assert_eq!(cache.len(), 1);
    }
}
