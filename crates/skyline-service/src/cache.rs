//! Sharded LRU result cache keyed on canonical preferences, tagged with dataset epochs.
//!
//! Thousands of users sharing the exact same preference is the normal case in the paper's
//! workload (nominal values — and hence stated preferences — follow a Zipfian skew), so the
//! service memoizes full query answers. Keys are [`skyline_core::CanonicalPreference`]s: two
//! textually different but semantically equal preferences hit the same entry.
//!
//! Every entry carries the epoch tag it was computed at — a single [`DatasetEpoch`] for a
//! one-engine service, a per-shard epoch vector for a sharded one (the cache is generic over
//! the tag). A lookup passes the *current* tag; an entry from another tag is stale, counts
//! as a miss and is dropped on the spot. A dataset mutation therefore invalidates every
//! cached result **atomically** (the epoch moved, so no stale entry can ever be returned)
//! without flushing anything — stale entries expire lazily, one by one, exactly when they
//! are next touched or evicted by capacity.
//!
//! Staleness has one reprieve: when only generation swaps (id renumberings, not real
//! mutations) separate an entry from the lookup, [`ResultCache::get_or_salvage`] lets the
//! caller rewrite the entry into the current id space instead of dropping it —
//! [`ResultCache::get_or_translate`] composes the engine's bounded [`GenerationRemap`]
//! chain, so even several back-to-back rebuilds keep the cache warm. Entries that fell off
//! the bounded chain are unrecoverable and counted in [`ResultCache::remap_misses`].
//!
//! The cache is split into independently locked shards so concurrent workers rarely contend;
//! a key's shard is chosen from its stable fingerprint. Each shard runs the classic
//! stamp-queue LRU: every touch pushes a fresh `(stamp, key)` pair onto a queue, and eviction
//! pops queue entries until one's stamp matches the live entry — amortized O(1), no linked
//! lists, no unsafe.

use skyline::{GenerationRemap, QueryOutcome};
use skyline_core::{CanonicalPreference, DatasetEpoch, PointId};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A poisoned shard lock is recovered, not propagated: the only caller-supplied code that
/// runs under it is the salvage callback, which executes *before* the entry is touched, so
/// a panic there (or anywhere else on a thread that happens to hold the lock) can at worst
/// leave a dangling recency pair in the queue — a state the stamp-checked eviction already
/// tolerates by design.
fn lock_shard<E, V>(shard: &Mutex<Shard<E, V>>) -> MutexGuard<'_, Shard<E, V>> {
    shard.lock().unwrap_or_else(|poisoned| {
        shard.clear_poison();
        poisoned.into_inner()
    })
}

/// A sharded, thread-safe LRU cache from canonical preferences to epoch-tagged values.
///
/// Generic over the epoch tag `E` (a [`DatasetEpoch`] for one engine, an `Arc<[DatasetEpoch]>`
/// shard-epoch vector for a sharded service) and the cached value `V`.
#[derive(Debug)]
pub struct ResultCache<E = DatasetEpoch, V = QueryOutcome> {
    shards: Vec<Mutex<Shard<E, V>>>,
    capacity_per_shard: usize,
    /// Entries dropped because their epoch no longer matched the engine's (lazy expiry).
    stale_evictions: AtomicU64,
    /// The subset of stale drops that were *unrecoverable remap misses*: the entry was only
    /// generation swaps behind, but the swaps it needed had already fallen off the engine's
    /// bounded remap chain.
    remap_misses: AtomicU64,
}

#[derive(Debug)]
struct Shard<E, V> {
    map: HashMap<CanonicalPreference, Entry<E, V>>,
    /// `(stamp, key)` pairs, oldest first; an entry is stale when its stamp no longer matches
    /// the map entry's current stamp (the key was touched again later).
    queue: VecDeque<(u64, CanonicalPreference)>,
    next_stamp: u64,
}

impl<E, V> Default for Shard<E, V> {
    fn default() -> Self {
        Self {
            map: HashMap::new(),
            queue: VecDeque::new(),
            next_stamp: 0,
        }
    }
}

impl<E, V> Shard<E, V> {
    fn bump_stamp(&mut self) -> u64 {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        stamp
    }

    /// Drops dead queue pairs once they outnumber live entries: a hit-heavy workload pushes
    /// a recency pair per touch without evicting, so the queue must be compacted on a size
    /// trigger (amortized O(1) per touch) to stay proportional to the map.
    fn compact_if_bloated(&mut self) {
        if self.queue.len() > 2 * self.map.len() + 16 {
            let map = &self.map;
            self.queue
                .retain(|(stamp, key)| map.get(key).is_some_and(|e| e.stamp == *stamp));
        }
    }
}

#[derive(Debug)]
struct Entry<E, V> {
    value: Arc<V>,
    stamp: u64,
    /// The epoch tag the value was computed at.
    epoch: E,
}

/// What a [`ResultCache::get_or_salvage`] callback decided about an entry whose epoch tag no
/// longer matches the lookup's.
pub enum Salvage<V> {
    /// The entry is semantically still correct and has been rewritten into the current id
    /// space; cache the rewritten value re-tagged at the lookup epoch and return it.
    Translated(V),
    /// The entry predates real mutations and must expire (counted as a stale eviction).
    Stale,
    /// The entry was only generation swaps behind but the translations it needed are no
    /// longer available — expire it and additionally count a [`ResultCache::remap_misses`].
    RemapMiss,
}

impl<E: PartialEq + Clone, V> ResultCache<E, V> {
    /// Creates a cache holding at most `capacity` entries spread over `shards` locks.
    ///
    /// A `capacity` of 0 disables caching (every lookup misses, inserts are dropped); `shards`
    /// is clamped to at least 1 and at most `capacity.max(1)`. When `capacity` is not a
    /// multiple of the shard count, the per-shard budget rounds **up**, so the effective
    /// maximum — reported by [`ResultCache::capacity`] — can exceed the request by up to
    /// `shards - 1` entries.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shard_count = shards.clamp(1, capacity.max(1));
        let capacity_per_shard = capacity.div_ceil(shard_count);
        Self {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            capacity_per_shard,
            stale_evictions: AtomicU64::new(0),
            remap_misses: AtomicU64::new(0),
        }
    }

    /// Entries dropped so far because their epoch no longer matched the lookup's.
    pub fn stale_evictions(&self) -> u64 {
        self.stale_evictions.load(Ordering::Relaxed)
    }

    /// The subset of [`ResultCache::stale_evictions`] that were unrecoverable remap misses:
    /// entries that were only generation swaps behind the lookup but whose translations had
    /// already fallen off the engine's bounded remap chain.
    pub fn remap_misses(&self) -> u64 {
        self.remap_misses.load(Ordering::Relaxed)
    }

    /// Number of shards the key space is split over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Maximum number of entries the cache will hold.
    pub fn capacity(&self) -> usize {
        self.capacity_per_shard * self.shards.len()
    }

    /// Current number of cached entries (sums per-shard sizes; a racing snapshot).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).map.len()).sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, key: &CanonicalPreference) -> &Mutex<Shard<E, V>> {
        // The map itself re-hashes the fingerprint, so using its upper bits for shard
        // selection does not correlate with bucket placement inside the shard.
        let idx = (key.fingerprint() >> 32) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Looks up a cached value computed at exactly `epoch`, refreshing the entry's recency
    /// on a hit. An entry tagged with any other epoch is stale: it is dropped immediately,
    /// counted in [`ResultCache::stale_evictions`], and the lookup misses.
    pub fn get(&self, key: &CanonicalPreference, epoch: E) -> Option<Arc<V>> {
        self.get_or_salvage(key, &epoch, |_, _| Salvage::Stale)
            .map(|(v, _)| v)
    }

    /// Like [`ResultCache::get`], but giving the caller one chance to **salvage** an entry
    /// whose epoch tag differs from the lookup's instead of dropping it.
    ///
    /// The callback receives the entry's tag and value and decides: translate the value into
    /// the current id space (a generation swap renumbered rows but changed no data), expire
    /// it as genuinely stale, or expire it as an unrecoverable [`Salvage::RemapMiss`].
    /// Translated entries are cached back re-tagged at the lookup epoch, so the salvage cost
    /// is paid once per entry per swap, not per hit. Returns the value plus whether a
    /// translation happened.
    pub fn get_or_salvage(
        &self,
        key: &CanonicalPreference,
        epoch: &E,
        salvage: impl FnOnce(&E, &V) -> Salvage<V>,
    ) -> Option<(Arc<V>, bool)> {
        if self.capacity_per_shard == 0 {
            return None;
        }
        let mut shard = lock_shard(self.shard(key));
        let stamp = shard.bump_stamp();
        let entry = shard.map.get_mut(key)?;
        if entry.epoch != *epoch {
            match salvage(&entry.epoch, &entry.value) {
                Salvage::Translated(value) => {
                    entry.value = Arc::new(value);
                    entry.epoch = epoch.clone();
                    entry.stamp = stamp;
                    let value = entry.value.clone();
                    shard.queue.push_back((stamp, key.clone()));
                    shard.compact_if_bloated();
                    return Some((value, true));
                }
                verdict @ (Salvage::Stale | Salvage::RemapMiss) => {
                    shard.map.remove(key);
                    self.stale_evictions.fetch_add(1, Ordering::Relaxed);
                    if matches!(verdict, Salvage::RemapMiss) {
                        self.remap_misses.fetch_add(1, Ordering::Relaxed);
                    }
                    return None;
                }
            }
        }
        entry.stamp = stamp;
        let value = entry.value.clone();
        shard.queue.push_back((stamp, key.clone()));
        shard.compact_if_bloated();
        Some((value, false))
    }

    /// Inserts (or refreshes) a value computed at `epoch`, evicting least-recently-used
    /// entries over capacity.
    pub fn insert(&self, key: CanonicalPreference, epoch: E, value: Arc<V>) {
        if self.capacity_per_shard == 0 {
            return;
        }
        let mut shard = lock_shard(self.shard(&key));
        let stamp = shard.bump_stamp();
        shard.queue.push_back((stamp, key.clone()));
        shard.map.insert(
            key,
            Entry {
                value,
                stamp,
                epoch,
            },
        );
        while shard.map.len() > self.capacity_per_shard {
            let Some((stamp, key)) = shard.queue.pop_front() else {
                break; // Unreachable: every map entry has a live queue pair.
            };
            if shard.map.get(&key).is_some_and(|e| e.stamp == stamp) {
                shard.map.remove(&key);
            }
        }
        shard.compact_if_bloated();
    }
}

impl ResultCache<DatasetEpoch, QueryOutcome> {
    /// [`ResultCache::get_or_salvage`] specialized to a single engine's remap chain: when
    /// one or more **consecutive** generation swaps are the only thing separating an entry
    /// from the lookup, the entry's skyline is rewritten through the composed remaps and
    /// re-tagged at the new epoch, so even back-to-back rebuilds do not cold-start the
    /// cache. Returns the outcome plus whether a translation happened.
    ///
    /// `chain` is the engine's published remap history, oldest first (see
    /// `SkylineEngine::remap_chain`). Entries whose epoch matches no chain link — real
    /// mutations happened — expire as usual; entries older than the retained chain are
    /// counted in [`ResultCache::remap_misses`] as unrecoverable drops.
    pub fn get_or_translate(
        &self,
        key: &CanonicalPreference,
        epoch: DatasetEpoch,
        chain: &[GenerationRemap],
    ) -> Option<(Arc<QueryOutcome>, bool)> {
        self.get_or_salvage(
            key,
            &epoch,
            |&entry_epoch, value| match translate_through_chain(
                &value.skyline,
                entry_epoch,
                epoch,
                chain,
            ) {
                Ok(skyline) => Salvage::Translated(QueryOutcome {
                    skyline,
                    method: value.method,
                }),
                Err(TranslateFailure::Stale) => Salvage::Stale,
                Err(TranslateFailure::ChainTruncated) => Salvage::RemapMiss,
            },
        )
    }
}

/// Why a remap-chain translation could not bridge an entry to the lookup epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateFailure {
    /// Real mutations separate the entry from the lookup (or the translation hit a row the
    /// compaction reclaimed): the cached answer is semantically outdated.
    Stale,
    /// The entry is older than the oldest retained remap — only swaps separate it from the
    /// lookup, but the translations it needs are gone (an unrecoverable remap miss).
    ChainTruncated,
}

/// Rewrites `ids` from the id space of `entry_epoch` into the id space of `target` by
/// composing consecutive links of `chain` (the engine's bounded remap history, oldest
/// first). Succeeds only when the walk starts exactly at `entry_epoch`, every hop is
/// contiguous (`link.from` equals the epoch reached so far — no mutation in between), and it
/// lands exactly on `target`.
pub fn translate_through_chain(
    ids: &[PointId],
    entry_epoch: DatasetEpoch,
    target: DatasetEpoch,
    chain: &[GenerationRemap],
) -> Result<Vec<PointId>, TranslateFailure> {
    let Some(start) = chain.iter().position(|r| r.from == entry_epoch) else {
        // No link starts at the entry's epoch. If the retained chain begins *after* the
        // entry, the swaps it needed have been forgotten — that is the unrecoverable case.
        if chain.first().is_some_and(|r| entry_epoch < r.from) {
            return Err(TranslateFailure::ChainTruncated);
        }
        return Err(TranslateFailure::Stale);
    };
    let mut current = ids.to_vec();
    let mut at = entry_epoch;
    for link in &chain[start..] {
        if link.from != at {
            // A mutation bumped the epoch between two swaps; the entry predates real changes.
            return Err(TranslateFailure::Stale);
        }
        match link.remap.translate_ids(&current) {
            Some(translated) => current = translated,
            None => return Err(TranslateFailure::Stale),
        }
        at = link.to;
        if at == target {
            return Ok(current);
        }
    }
    // The chain ended before reaching the lookup epoch: mutations happened after the last
    // swap.
    Err(TranslateFailure::Stale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline::{MethodUsed, QueryOutcome};
    use skyline_core::{Dimension, NominalDomain, Preference, Schema};

    const E0: DatasetEpoch = DatasetEpoch::INITIAL;

    fn schema(cardinality: usize) -> Schema {
        Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal("g", NominalDomain::anonymous(cardinality)),
        ])
        .unwrap()
    }

    fn key(schema: &Schema, choices: &[u16]) -> CanonicalPreference {
        let pref = Preference::from_dims(vec![skyline_core::ImplicitPreference::new(
            choices.iter().copied(),
        )
        .unwrap()]);
        CanonicalPreference::new(schema, &pref).unwrap()
    }

    fn outcome(id: u32) -> Arc<QueryOutcome> {
        Arc::new(QueryOutcome {
            skyline: vec![id],
            method: MethodUsed::IpoTree,
        })
    }

    #[test]
    fn get_after_insert_round_trips() {
        let schema = schema(8);
        let cache: ResultCache = ResultCache::new(16, 4);
        assert!(cache.is_empty());
        let k = key(&schema, &[3]);
        assert!(cache.get(&k, E0).is_none());
        cache.insert(k.clone(), E0, outcome(7));
        assert_eq!(cache.get(&k, E0).unwrap().skyline, vec![7]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.capacity(), 16);
        assert_eq!(cache.shard_count(), 4);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let schema = schema(16);
        // Single shard so recency order is deterministic.
        let cache: ResultCache = ResultCache::new(3, 1);
        let keys: Vec<CanonicalPreference> = (0u16..4).map(|v| key(&schema, &[v])).collect();
        for (i, k) in keys.iter().take(3).enumerate() {
            cache.insert(k.clone(), E0, outcome(i as u32));
        }
        // Touch key 0 so key 1 becomes the LRU victim.
        assert!(cache.get(&keys[0], E0).is_some());
        cache.insert(keys[3].clone(), E0, outcome(3));
        assert_eq!(cache.len(), 3);
        assert!(cache.get(&keys[0], E0).is_some());
        assert!(
            cache.get(&keys[1], E0).is_none(),
            "coldest entry must be gone"
        );
        assert!(cache.get(&keys[2], E0).is_some());
        assert!(cache.get(&keys[3], E0).is_some());
    }

    #[test]
    fn reinserting_a_key_refreshes_instead_of_growing() {
        let schema = schema(8);
        let cache: ResultCache = ResultCache::new(2, 1);
        let k = key(&schema, &[1]);
        cache.insert(k.clone(), E0, outcome(1));
        cache.insert(k.clone(), E0, outcome(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&k, E0).unwrap().skyline, vec![2]);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let schema = schema(8);
        let cache: ResultCache = ResultCache::new(0, 8);
        let k = key(&schema, &[1]);
        cache.insert(k.clone(), E0, outcome(1));
        assert!(cache.get(&k, E0).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn hit_heavy_workloads_do_not_grow_the_queue_without_bound() {
        let schema = schema(8);
        let cache: ResultCache = ResultCache::new(4, 1);
        let k = key(&schema, &[2]);
        cache.insert(k.clone(), E0, outcome(1));
        for _ in 0..10_000 {
            assert!(cache.get(&k, E0).is_some());
        }
        let shard = cache.shards[0].lock().unwrap();
        assert!(
            shard.queue.len() <= 2 * shard.map.len() + 17,
            "queue length {} not compacted",
            shard.queue.len()
        );
    }

    #[test]
    fn epoch_mismatch_expires_lazily_and_is_counted() {
        let schema = schema(8);
        let cache: ResultCache = ResultCache::new(8, 2);
        let (k1, k2) = (key(&schema, &[1]), key(&schema, &[2]));
        cache.insert(k1.clone(), E0, outcome(1));
        cache.insert(k2.clone(), E0, outcome(2));
        assert_eq!(cache.len(), 2);

        // The "mutation": lookups now run at a later epoch. Nothing is flushed eagerly…
        let bumped = {
            let mut block = skyline_core::PointBlock::new(
                &skyline_core::Dataset::from_columns(
                    schema.clone(),
                    vec![vec![1.0]],
                    vec![vec![0]],
                )
                .unwrap(),
            );
            block.tombstone(0).unwrap();
            block.epoch()
        };
        assert_eq!(cache.len(), 2, "no global flush");
        // …but a stale entry can never be returned: it expires on first touch.
        assert!(cache.get(&k1, bumped).is_none());
        assert_eq!(cache.stale_evictions(), 1);
        assert_eq!(cache.len(), 1, "expired entry is dropped in place");
        // A fresh answer cached at the new epoch serves normally.
        cache.insert(k1.clone(), bumped, outcome(9));
        assert_eq!(cache.get(&k1, bumped).unwrap().skyline, vec![9]);
        // The untouched key still holds its stale entry until it is looked up.
        assert!(cache.get(&k2, bumped).is_none());
        assert_eq!(cache.stale_evictions(), 2);
        assert!(cache.get(&k2, E0).is_none(), "dropped, not resurrected");
    }

    #[test]
    fn generation_swaps_translate_entries_instead_of_dropping_them() {
        use skyline_core::{Dataset, PointBlock};

        let schema = schema(8);
        let cache: ResultCache = ResultCache::new(8, 2);
        let k = key(&schema, &[1]);

        // A block whose rows 0 and 2 are dead; the swap compacts it.
        let data = Dataset::from_columns(
            schema.clone(),
            vec![vec![1.0, 2.0, 3.0, 4.0, 5.0]],
            vec![vec![0, 1, 2, 3, 4]],
        )
        .unwrap();
        let mut block = PointBlock::new(&data);
        block.tombstone(0).unwrap();
        block.tombstone(2).unwrap();
        let from = block.epoch();
        let (compact, remap) = block.compacted();
        let swap = GenerationRemap {
            remap: Arc::new(remap),
            from,
            to: compact.epoch(),
        };

        // An entry cached at exactly the pre-swap epoch, naming (live) rows 1, 3, 4.
        cache.insert(
            k.clone(),
            from,
            Arc::new(QueryOutcome {
                skyline: vec![1, 3, 4],
                method: MethodUsed::AdaptiveSfs,
            }),
        );
        // Looked up at the post-swap epoch with the remap: translated, not dropped.
        let (outcome, translated) = cache
            .get_or_translate(&k, swap.to, std::slice::from_ref(&swap))
            .unwrap();
        assert!(translated);
        assert_eq!(
            outcome.skyline,
            vec![0, 1, 2],
            "ids rewritten to the new space"
        );
        assert_eq!(outcome.method, MethodUsed::AdaptiveSfs);
        assert_eq!(cache.stale_evictions(), 0);
        // The entry is now re-tagged: a plain lookup at the new epoch hits without a remap.
        let (again, translated) = cache.get_or_translate(&k, swap.to, &[]).unwrap();
        assert!(!translated);
        assert_eq!(again.skyline, vec![0, 1, 2]);

        // An entry from an *older* epoch is unrecoverable once its swaps left the chain.
        let k2 = key(&schema, &[2]);
        cache.insert(k2.clone(), E0, outcome.clone());
        assert!(cache
            .get_or_translate(&k2, swap.to, std::slice::from_ref(&swap))
            .is_none());
        assert_eq!(cache.stale_evictions(), 1);
        assert_eq!(cache.remap_misses(), 1, "pre-chain entry is a remap miss");
    }

    /// The satellite-2 regression: two back-to-back rebuilds used to silently drop every
    /// entry that was one remap behind, because translation only looked at the latest swap.
    #[test]
    fn back_to_back_swaps_compose_through_the_chain() {
        use skyline_core::{Dataset, PointBlock};

        let schema = schema(8);
        let cache: ResultCache = ResultCache::new(8, 2);
        let k = key(&schema, &[1]);

        let data = Dataset::from_columns(
            schema.clone(),
            vec![vec![1.0, 2.0, 3.0, 4.0, 5.0]],
            vec![vec![0, 1, 2, 3, 4]],
        )
        .unwrap();
        // Swap 1 reclaims rows 0 and 2; swap 2 is a back-to-back rebuild with nothing to
        // reclaim (identity renumbering) — but it still opens a fresh epoch, which is
        // exactly what used to strand every pre-swap-1 entry.
        let mut block = PointBlock::new(&data);
        block.tombstone(0).unwrap();
        block.tombstone(2).unwrap();
        let e1 = block.epoch();
        let (compact1, remap1) = block.compacted();
        let swap1 = GenerationRemap {
            remap: Arc::new(remap1),
            from: e1,
            to: compact1.epoch(),
        };
        let (compact2, remap2) = compact1.compacted();
        let swap2 = GenerationRemap {
            remap: Arc::new(remap2),
            from: compact1.epoch(),
            to: compact2.epoch(),
        };
        assert_eq!(swap1.to, swap2.from, "no mutation between the swaps");

        // Cached at the epoch swap 1 starts from, naming (live) old rows {1, 3, 4}.
        cache.insert(
            k.clone(),
            e1,
            Arc::new(QueryOutcome {
                skyline: vec![1, 3, 4],
                method: MethodUsed::AdaptiveSfs,
            }),
        );

        // With only the latest remap the walk cannot start at `e1`: the entry would be
        // dropped (the old bug). Through the full chain it composes:
        // {1,3,4} → swap1 → {0,1,2} → swap2 (identity) → {0,1,2}.
        let (outcome, translated) = cache
            .get_or_translate(&k, swap2.to, &[swap1.clone(), swap2.clone()])
            .unwrap();
        assert!(translated);
        assert_eq!(outcome.skyline, vec![0, 1, 2]);
        assert_eq!(cache.stale_evictions(), 0);
        assert_eq!(cache.remap_misses(), 0);

        // Sanity on the raw composition helper.
        assert_eq!(
            translate_through_chain(&[1], e1, swap2.to, std::slice::from_ref(&swap2)),
            Err(TranslateFailure::ChainTruncated),
            "entry older than the retained chain"
        );
        assert_eq!(
            translate_through_chain(&[1], swap1.from, swap2.to, std::slice::from_ref(&swap1)),
            Err(TranslateFailure::Stale),
            "chain ends before the lookup epoch"
        );
        // A reclaimed row cannot be carried across its compaction.
        assert_eq!(
            translate_through_chain(&[1, 3], e1, swap1.to, std::slice::from_ref(&swap1)),
            Ok(vec![0, 1]),
        );
        assert_eq!(
            translate_through_chain(&[0], e1, swap1.to, &[swap1]),
            Err(TranslateFailure::Stale),
            "reclaimed row cannot translate"
        );
    }

    #[test]
    fn vector_epoch_tags_work_with_salvage() {
        // The sharded service tags entries with per-shard epoch vectors; exercise the
        // generic path with that tag type and a custom salvage decision.
        let schema = schema(8);
        let cache: ResultCache<Arc<[DatasetEpoch]>, Vec<u32>> = ResultCache::new(8, 2);
        let k = key(&schema, &[1]);
        let tag_a: Arc<[DatasetEpoch]> = Arc::from(vec![E0, E0].into_boxed_slice());
        cache.insert(k.clone(), tag_a.clone(), Arc::new(vec![1, 2]));
        assert_eq!(*cache.get(&k, tag_a.clone()).unwrap(), vec![1, 2]);

        let bumped = {
            let mut block = skyline_core::PointBlock::new(
                &skyline_core::Dataset::from_columns(
                    schema.clone(),
                    vec![vec![1.0]],
                    vec![vec![0]],
                )
                .unwrap(),
            );
            block.tombstone(0).unwrap();
            block.epoch()
        };
        let tag_b: Arc<[DatasetEpoch]> = Arc::from(vec![E0, bumped].into_boxed_slice());
        // Salvage translates (here: trivially rewrites) instead of dropping.
        let (v, translated) = cache
            .get_or_salvage(&k, &tag_b, |old, value| {
                assert_eq!(old, &tag_a);
                Salvage::Translated(value.iter().map(|x| x + 10).collect())
            })
            .unwrap();
        assert!(translated);
        assert_eq!(*v, vec![11, 12]);
        // Re-tagged: a plain get at the new tag now hits.
        assert_eq!(*cache.get(&k, tag_b.clone()).unwrap(), vec![11, 12]);
        // And a remap-miss verdict is counted separately.
        let tag_c: Arc<[DatasetEpoch]> = Arc::from(vec![bumped, bumped].into_boxed_slice());
        assert!(cache
            .get_or_salvage(&k, &tag_c, |_, _| Salvage::RemapMiss)
            .is_none());
        assert_eq!(cache.stale_evictions(), 1);
        assert_eq!(cache.remap_misses(), 1);
    }

    #[test]
    fn equivalent_preferences_share_an_entry() {
        let schema = schema(2);
        let cache: ResultCache = ResultCache::new(8, 2);
        // On a 2-value domain, [0, 1] and [0] are the same partial order.
        cache.insert(key(&schema, &[0, 1]), E0, outcome(9));
        assert_eq!(cache.get(&key(&schema, &[0]), E0).unwrap().skyline, vec![9]);
        assert_eq!(cache.len(), 1);
    }
}
