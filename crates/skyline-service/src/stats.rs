//! Lock-free service metrics: hit/miss/error counters and a latency histogram.
//!
//! Per-query latencies land in power-of-two buckets (bucket `i` covers
//! `[2^i, 2^{i+1})` nanoseconds), so recording is a single relaxed atomic increment and
//! percentile estimates are a scan over 64 counters — no locks on the serve path, which is
//! exactly where a throughput-bound service cannot afford them. The price is quantization:
//! a reported percentile is the *upper bound* of its bucket (within 2× of the true value).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 64;

/// Shared, lock-free counters updated by every served query.
#[derive(Debug)]
pub struct ServiceMetrics {
    hits: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
    mutations: AtomicU64,
    remapped_hits: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
    deadline_misses: AtomicU64,
    degraded: AtomicU64,
    streams_started: AtomicU64,
    stream_coalesced: AtomicU64,
    snapshot_loads: AtomicU64,
    snapshot_load_ns: AtomicU64,
    preprocess_build_ns: AtomicU64,
    latency_ns: [AtomicU64; BUCKETS],
    ttfr_ns: [AtomicU64; BUCKETS],
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            remapped_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            streams_started: AtomicU64::new(0),
            stream_coalesced: AtomicU64::new(0),
            snapshot_loads: AtomicU64::new(0),
            snapshot_load_ns: AtomicU64::new(0),
            preprocess_build_ns: AtomicU64::new(0),
            latency_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            ttfr_ns: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ServiceMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one answered query.
    pub fn record(&self, cache_hit: bool, latency: Duration) {
        if cache_hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let ns = latency.as_nanos().max(1) as u64;
        let bucket = (63 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.latency_ns[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one failed query (failures are not cached and carry no latency sample).
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one dataset mutation (an insert or a live delete that bumped the epoch).
    pub fn record_mutation(&self) {
        self.mutations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cache hit served by translating a pre-swap entry through the generation
    /// remap (already counted as a hit by [`ServiceMetrics::record`]).
    pub fn record_remapped_hit(&self) {
        self.remapped_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a query that waited on another thread's in-flight computation of the same
    /// canonical key instead of running the engine itself (single-flight).
    pub fn record_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request rejected by admission control (the queue was full, the request was
    /// shed with [`skyline_core::SkylineError::Overloaded`] without touching the engine).
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request that expired its [`skyline_core::Deadline`] (or was cancelled)
    /// before completing.
    pub fn record_deadline_miss(&self) {
        self.deadline_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a degraded (partial) response: one or more shards were quarantined or missed
    /// the deadline and the configured policy tolerated answering from the healthy rest.
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one streaming serve handed out (leader, tap, and replay alike).
    pub fn record_stream_started(&self) {
        self.streams_started.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a streaming serve that tapped another request's in-flight emitter instead of
    /// running the engine itself (the streaming analogue of [`ServiceMetrics::record_coalesced`]).
    pub fn record_stream_coalesced(&self) {
        self.stream_coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Records engine cold starts served from persistent snapshots: `engines` structures
    /// rehydrated in `elapsed` total wall time (no preprocessing ran).
    pub fn record_snapshot_load(&self, engines: u64, elapsed: Duration) {
        self.snapshot_loads.fetch_add(engines, Ordering::Relaxed);
        self.snapshot_load_ns.fetch_add(
            elapsed.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Records wall time spent in from-scratch preprocessing builds (the cost a snapshot
    /// load avoids — compare [`StatsSnapshot::preprocess_build_ms`] against
    /// [`StatsSnapshot::snapshot_load_ms`]).
    pub fn record_preprocess_build(&self, elapsed: Duration) {
        self.preprocess_build_ns.fetch_add(
            elapsed.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Records a stream's time-to-first-row: the delay between the serve call and its first
    /// delivered skyline member. The whole point of the progressive path — compare
    /// [`StatsSnapshot::ttfr_p99`] against [`StatsSnapshot::p99`] (whole-answer latency).
    pub fn record_ttfr(&self, ttfr: Duration) {
        let ns = ttfr.as_nanos().max(1) as u64;
        let bucket = (63 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.ttfr_ns[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of the counters (individual loads are relaxed).
    pub fn snapshot(&self) -> StatsSnapshot {
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        let errors = self.errors.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .latency_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let ttfr: Vec<u64> = self
            .ttfr_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        StatsSnapshot {
            hits,
            misses,
            errors,
            mutations: self.mutations.load(Ordering::Relaxed),
            stale_evictions: 0,
            remap_misses: 0,
            remapped_hits: self.remapped_hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            streams_started: self.streams_started.load(Ordering::Relaxed),
            stream_coalesced: self.stream_coalesced.load(Ordering::Relaxed),
            queue_depth: 0,
            rebuilds: 0,
            reclaimed_rows: 0,
            snapshot_loads: self.snapshot_loads.load(Ordering::Relaxed),
            snapshot_load_ms: self.snapshot_load_ns.load(Ordering::Relaxed) / 1_000_000,
            preprocess_build_ms: self.preprocess_build_ns.load(Ordering::Relaxed) / 1_000_000,
            p50: percentile(&buckets, 0.50),
            p99: percentile(&buckets, 0.99),
            ttfr_p50: percentile(&ttfr, 0.50),
            ttfr_p99: percentile(&ttfr, 0.99),
        }
    }
}

/// Upper bound of the bucket containing the `q`-quantile sample.
fn percentile(buckets: &[u64], q: f64) -> Duration {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return Duration::ZERO;
    }
    let rank = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            let upper_ns = if i + 1 >= BUCKETS {
                u64::MAX
            } else {
                1u64 << (i + 1)
            };
            return Duration::from_nanos(upper_ns);
        }
    }
    Duration::from_nanos(u64::MAX)
}

/// Point-in-time view of the service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Queries answered from the result cache.
    pub hits: u64,
    /// Queries that had to run the engine.
    pub misses: u64,
    /// Queries that returned an error (not cached, not counted in `hits`/`misses`).
    pub errors: u64,
    /// Dataset mutations served (inserts and live deletes; each bumped the epoch).
    pub mutations: u64,
    /// Cached results dropped because a mutation made their epoch stale (lazy expiry; filled
    /// in from the result cache by `SkylineService::stats`).
    pub stale_evictions: u64,
    /// The subset of `stale_evictions` that were *unrecoverable remap misses*: entries only
    /// generation swaps behind the lookup whose translations had already fallen off the
    /// engine's bounded remap chain (filled in from the result cache by
    /// `SkylineService::stats`).
    pub remap_misses: u64,
    /// Cache hits served by translating a pre-swap entry's row ids through the generation
    /// remap (a subset of `hits`): how much of the cache a compaction swap *kept* warm.
    pub remapped_hits: u64,
    /// Queries that waited on another thread's identical in-flight computation instead of
    /// running the engine themselves (single-flight collapses of concurrent cold misses).
    pub coalesced: u64,
    /// Requests rejected by admission control: the bounded queue was full and the request was
    /// shed with `Overloaded` before touching the engine (reject-newest).
    pub shed: u64,
    /// Requests that expired their deadline (or were cancelled) before completing.
    pub deadline_misses: u64,
    /// Degraded (partial) responses served from healthy shards while others were quarantined
    /// or past deadline — only non-zero under a tolerant degrade policy.
    pub degraded: u64,
    /// Streaming serves handed out (leaders, taps of an in-flight emitter, and cache
    /// replays alike).
    pub streams_started: u64,
    /// The subset of `streams_started` that tapped another request's in-flight emitter —
    /// replaying its confirmed prefix live — instead of running the engine themselves.
    pub stream_coalesced: u64,
    /// Requests inside the admission queue right now (a gauge, not a counter; filled in from
    /// the admission queue by the owning service's `stats`).
    pub queue_depth: u64,
    /// Generation rebuilds installed on the engine — background compaction + IPO
    /// re-materialization swaps (filled in from the engine by `SkylineService::stats`).
    pub rebuilds: u64,
    /// Tombstoned rows physically reclaimed by those rebuilds (filled in from the engine by
    /// `SkylineService::stats`).
    pub reclaimed_rows: u64,
    /// Engines cold-started from a persistent snapshot instead of a preprocessing build
    /// (one per shard for a sharded bootstrap).
    pub snapshot_loads: u64,
    /// Total wall time spent rehydrating engines from snapshots, in milliseconds.
    pub snapshot_load_ms: u64,
    /// Total wall time spent in from-scratch preprocessing builds, in milliseconds — the
    /// cost [`StatsSnapshot::snapshot_load_ms`] replaces on a snapshot bootstrap.
    pub preprocess_build_ms: u64,
    /// Median latency (upper bound of its power-of-two bucket).
    pub p50: Duration,
    /// 99th-percentile latency (upper bound of its power-of-two bucket).
    pub p99: Duration,
    /// Median time-to-first-row across streaming serves (upper bound of its bucket).
    pub ttfr_p50: Duration,
    /// 99th-percentile time-to-first-row across streaming serves.
    pub ttfr_p99: Duration,
}

impl StatsSnapshot {
    /// Total successfully served queries.
    pub fn served(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of served queries answered from the cache (0 when nothing was served).
    pub fn hit_rate(&self) -> f64 {
        if self.served() == 0 {
            0.0
        } else {
            self.hits as f64 / self.served() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServiceMetrics::new();
        m.record(true, Duration::from_micros(10));
        m.record(false, Duration::from_micros(100));
        m.record(false, Duration::from_micros(100));
        m.record_error();
        let s = m.snapshot();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.served(), 3);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = ServiceMetrics::new().snapshot();
        assert_eq!(s.served(), 0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.p50, Duration::ZERO);
        assert_eq!(s.p99, Duration::ZERO);
        assert_eq!(s.streams_started, 0);
        assert_eq!(s.stream_coalesced, 0);
        assert_eq!(s.ttfr_p50, Duration::ZERO);
        assert_eq!(s.ttfr_p99, Duration::ZERO);
    }

    #[test]
    fn streaming_counters_and_ttfr_are_independent_of_batch_latency() {
        let m = ServiceMetrics::new();
        m.record_stream_started();
        m.record_stream_started();
        m.record_stream_coalesced();
        m.record_ttfr(Duration::from_micros(2));
        m.record_ttfr(Duration::from_micros(2));
        m.record(false, Duration::from_millis(10));
        let s = m.snapshot();
        assert_eq!(s.streams_started, 2);
        assert_eq!(s.stream_coalesced, 1);
        assert!(s.ttfr_p50 >= Duration::from_micros(2));
        assert!(s.ttfr_p99 <= Duration::from_micros(8));
        // Whole-answer latency stays an order of magnitude above first-row latency.
        assert!(s.p50 >= Duration::from_millis(8));
    }

    #[test]
    fn percentiles_bound_the_recorded_latencies() {
        let m = ServiceMetrics::new();
        // 99 fast queries at ~1 µs, one slow outlier at ~1 ms.
        for _ in 0..99 {
            m.record(false, Duration::from_micros(1));
        }
        m.record(false, Duration::from_millis(1));
        let s = m.snapshot();
        // p50 is in the microsecond range (within its 2× bucket), p99 well below p100.
        assert!(s.p50 >= Duration::from_micros(1));
        assert!(s.p50 <= Duration::from_micros(4));
        assert!(s.p99 <= Duration::from_micros(4));
        // And the p100-ish quantile catches the outlier.
        let buckets: Vec<u64> = m
            .latency_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        assert!(percentile(&buckets, 1.0) >= Duration::from_millis(1));
    }

    #[test]
    fn snapshot_and_preprocess_timers_accumulate() {
        let m = ServiceMetrics::new();
        m.record_snapshot_load(4, Duration::from_millis(6));
        m.record_snapshot_load(2, Duration::from_millis(5));
        m.record_preprocess_build(Duration::from_millis(250));
        let s = m.snapshot();
        assert_eq!(s.snapshot_loads, 6);
        assert_eq!(s.snapshot_load_ms, 11);
        assert_eq!(s.preprocess_build_ms, 250);
        let zeroed = ServiceMetrics::new().snapshot();
        assert_eq!(zeroed.snapshot_loads, 0);
        assert_eq!(zeroed.snapshot_load_ms, 0);
        assert_eq!(zeroed.preprocess_build_ms, 0);
    }

    #[test]
    fn subnanosecond_latencies_do_not_panic() {
        let m = ServiceMetrics::new();
        m.record(true, Duration::ZERO);
        assert_eq!(m.snapshot().served(), 1);
    }
}
