//! Sharded scatter-gather serving: N dataset shards, each its own generational
//! [`SharedEngine`], answered as one logical service.
//!
//! The paper's algorithms are single-node by construction, but the serving layer does not
//! have to be: the skyline union property — `SKY(D₁ ∪ … ∪ Dₘ) ⊆ SKY(D₁) ∪ … ∪ SKY(Dₘ)`,
//! valid under any strict partial order because dominance is transitive — means a query can
//! **scatter** to per-shard engines (each running the paper's IPO-tree/Adaptive-SFS
//! machinery over its slice of the data) and **gather** by a cross-shard dominance merge of
//! the per-shard skylines ([`skyline_core::merge_skylines`]' operator, here via
//! [`skyline_core::SkylineMerger`]). Per-shard skylines are tiny compared to their shards,
//! so the merge is cheap and the scatter parallelizes the expensive part.
//!
//! The pieces:
//!
//! * [`ShardPartition`] — how rows map to shards: hash on a nominal dimension or range on a
//!   numeric one. Mutations route to their owning shard and touch only that engine's lock.
//! * [`ShardedService`] — the facade: scatter-gather queries with an epoch-**vector**-tagged
//!   result cache (the tag is every shard's [`DatasetEpoch`], so a mutation on one shard
//!   invalidates exactly what it must), per-key single-flight, and remap-aware salvage: when
//!   only generation swaps moved a shard's epoch, the cached global skyline is translated
//!   through that shard's remap chain instead of dropped.
//! * a shared [`BuildPool`]: one small set of build threads maintains every shard under a
//!   global in-flight cap, instead of one maintenance thread per shard.
//!
//! # Fault isolation
//!
//! Failures stay confined to the shard they happen on. A panic inside a shard's scatter
//! query or background build is caught ([`std::panic::catch_unwind`]) and **quarantines**
//! that shard; under a tolerant [`DegradePolicy`] the gather keeps answering from the
//! healthy shards — a partial answer flagged with exactly the shards it is missing
//! ([`ShardedServed::degraded_shards`], never cached) — and the quarantined shard works its
//! way back via bounded retry-with-backoff generation rebuilds ([`RecoveryPolicy`]).
//! Requests carry [`Deadline`]s (checked at block granularity inside the elimination scans)
//! and pass a bounded admission queue, so overload sheds the newest arrivals instead of
//! queueing without bound. A [`FaultInjector`] (armed programmatically or via
//! `SKYLINE_FAULTS`) gives every one of these paths a deterministic trigger.

use crate::admission::{AdmissionPermit, AdmissionQueue};
use crate::cache::{translate_through_chain, ResultCache, Salvage, TranslateFailure};
use crate::executor;
use crate::faults::FaultInjector;
use crate::flight::{FlightRole, SingleFlight};
use crate::stats::{ServiceMetrics, StatsSnapshot};
use skyline::{
    BuildHandle, BuildPool, BuildPoolConfig, EngineConfig, EngineScratch, EngineStream,
    MaintenancePolicy, MethodUsed, QueryOutcome, SharedEngine, SkylineEngine,
};
use skyline_core::score::ScoreFn;
use skyline_core::{
    CanonicalPreference, CompiledOrder, Dataset, DatasetEpoch, Deadline, PointId, Preference,
    ProgressiveMerger, Result, Schema, SkylineError, SkylineMerger, Template, ValueId,
};
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How rows are assigned to shards. The assignment is a pure function of a row's values, so
/// routing a mutation needs no directory — and both sides (initial partitioning and later
/// inserts) can never disagree.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardPartition {
    /// Hash of the value id of nominal dimension `dim` (a *nominal index*). Rows sharing a
    /// nominal value land on the same shard — frequency skew and all — which keeps
    /// per-shard nominal domains dense.
    HashNominal {
        /// Nominal index of the dimension hashed.
        dim: usize,
    },
    /// Range partition on numeric dimension `dim` (a *numeric index*): `bounds` are the
    /// ascending split points, `shards - 1` of them; shard `i` owns values in
    /// `[bounds[i-1], bounds[i])` (unbounded at both ends). `NaN` routes to shard 0.
    RangeNumeric {
        /// Numeric index of the dimension split.
        dim: usize,
        /// Ascending split points (`shards - 1` entries).
        bounds: Vec<f64>,
    },
}

impl ShardPartition {
    /// The shard owning a row with the given values.
    pub fn shard_of(&self, shards: usize, numeric: &[f64], nominal: &[ValueId]) -> usize {
        match self {
            Self::HashNominal { dim } => {
                // splitmix64 finalizer: adjacent value ids spread over all shards.
                let mut h = nominal[*dim] as u64;
                h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
                (h ^ (h >> 31)) as usize % shards
            }
            Self::RangeNumeric { dim, bounds } => {
                let x = numeric[*dim];
                bounds.partition_point(|&b| x >= b).min(shards - 1)
            }
        }
    }

    /// Checks the partition against a schema and shard count.
    fn validate(&self, schema: &Schema, shards: usize) -> Result<()> {
        match self {
            Self::HashNominal { dim } => {
                if *dim >= schema.nominal_count() {
                    return Err(SkylineError::InvalidArgument(format!(
                        "hash partition on nominal dimension {dim} but the schema has {}",
                        schema.nominal_count()
                    )));
                }
            }
            Self::RangeNumeric { dim, bounds } => {
                if *dim >= schema.numeric_count() {
                    return Err(SkylineError::InvalidArgument(format!(
                        "range partition on numeric dimension {dim} but the schema has {}",
                        schema.numeric_count()
                    )));
                }
                if bounds.len() != shards - 1 {
                    return Err(SkylineError::InvalidArgument(format!(
                        "range partition over {shards} shards needs {} bounds, got {}",
                        shards - 1,
                        bounds.len()
                    )));
                }
                if bounds.iter().any(|b| b.is_nan()) || bounds.windows(2).any(|w| w[0] > w[1]) {
                    return Err(SkylineError::InvalidArgument(
                        "range partition bounds must be ascending (and not NaN)".into(),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A row's global identity: which shard owns it and its row id *inside that shard's engine*.
///
/// Shard-local ids are renumbered by that shard's generation swaps (compaction), exactly
/// like a single engine's ids — translate through the shard's remap chain across rebuilds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalRowId {
    /// Index of the owning shard.
    pub shard: usize,
    /// Row id inside that shard's engine.
    pub row: PointId,
}

/// One merged scatter-gather answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedOutcome {
    /// The global skyline: per-shard skyline survivors of the cross-shard dominance merge,
    /// grouped by shard in shard order (each shard's survivors keep their engine's order).
    pub skyline: Vec<GlobalRowId>,
    /// Which algorithm answered on each *answering* shard, ascending by shard index —
    /// all shards for a complete answer, the healthy ones for a degraded answer (shards age
    /// independently: one may serve from its IPO tree while a recently mutated neighbor is
    /// on the Adaptive-SFS fallback).
    pub methods: Vec<MethodUsed>,
}

/// One answered sharded query, with serving provenance.
#[derive(Debug, Clone)]
pub struct ShardedServed {
    /// The merged answer (shared, not copied, between users asking equivalent preferences).
    /// When [`degraded_shards`](ShardedServed::degraded_shards) is non-empty this covers
    /// only the healthy shards' slices of the data.
    pub outcome: Arc<ShardedOutcome>,
    /// Whether the answer came from the result cache (always complete: partial answers are
    /// never cached).
    pub cache_hit: bool,
    /// The per-shard epoch vector the answer is valid for.
    pub epochs: Arc<[DatasetEpoch]>,
    /// Shards missing from the answer (quarantined or past the request deadline), ascending.
    /// Empty for a complete answer; only a tolerant [`DegradePolicy`] ever serves otherwise.
    pub degraded_shards: Vec<usize>,
    /// Wall-clock time spent serving this query.
    pub latency: Duration,
}

impl ShardedServed {
    /// Whether shards are missing from this answer.
    pub fn is_degraded(&self) -> bool {
        !self.degraded_shards.is_empty()
    }

    /// The degraded view — the healthy shards' merged skyline plus exactly which shards are
    /// missing — or `None` for a complete answer.
    pub fn partial(&self) -> Option<PartialSkyline> {
        self.is_degraded().then(|| PartialSkyline {
            rows: self.outcome.skyline.clone(),
            degraded_shards: self.degraded_shards.clone(),
        })
    }
}

/// A degraded gather's answer: the merged skyline of the healthy shards, flagged with
/// exactly the shards it is missing. Obtained via [`ShardedServed::partial`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialSkyline {
    /// The skyline of the union of the healthy shards' slices.
    pub rows: Vec<GlobalRowId>,
    /// Shards missing from the answer, ascending.
    pub degraded_shards: Vec<usize>,
}

/// What the gather does when some shards cannot answer — quarantined after a panic, or past
/// the request [`Deadline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Any unavailable shard fails the whole request: [`SkylineError::ShardUnavailable`]
    /// names the first broken shard, or [`SkylineError::DeadlineExceeded`] when only
    /// deadlines were missed. The default — answers are always complete.
    #[default]
    FailClosed,
    /// Tolerate up to `max_degraded` unavailable shards: the gather merges the healthy rest
    /// into a partial answer flagged with [`ShardedServed::degraded_shards`]. A useful
    /// subset now beats nothing at all — the regret-minimization stance applied to
    /// availability. Partial answers are never cached.
    Tolerate {
        /// Maximum shards an answer may be missing before the request fails anyway.
        max_degraded: usize,
    },
}

/// How a quarantined shard returns to service: bounded retries of a full generation rebuild
/// (the engine re-derives every serving structure, healing whatever the panic interrupted),
/// with exponential backoff between attempts.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Automatic rebuild attempts before the shard stays quarantined until
    /// [`ShardedService::recover_shard`] is called explicitly. `0` disables automatic
    /// recovery entirely.
    pub max_attempts: u32,
    /// Backoff before the first automatic attempt; doubles after each failed one.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(5),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ShardHealth {
    quarantined: bool,
    /// Consecutive failures: the panic that quarantined the shard plus every failed
    /// recovery rebuild since.
    failures: u32,
    /// When the next automatic recovery attempt may run; `None` while healthy — or once the
    /// attempt budget is spent, after which only an explicit recovery can heal the shard.
    retry_at: Option<Instant>,
}

impl ShardHealth {
    const HEALTHY: Self = Self {
        quarantined: false,
        failures: 0,
        retry_at: None,
    };
}

/// The shard-health registry. The atomic count keeps the healthy path lock-free: serves
/// touch the mutex only while at least one shard is quarantined.
#[derive(Debug)]
struct Quarantine {
    states: Mutex<Vec<ShardHealth>>,
    active: AtomicUsize,
    policy: RecoveryPolicy,
}

impl Quarantine {
    fn new(shards: usize, policy: RecoveryPolicy) -> Self {
        Self {
            states: Mutex::new(vec![ShardHealth::HEALTHY; shards]),
            active: AtomicUsize::new(0),
            policy,
        }
    }

    /// Every update under this lock is a single slot assignment — nothing a panic could
    /// tear — so a poisoned lock (a fault-injected panic elsewhere on the stack) is
    /// recovered, not propagated.
    fn locked(&self) -> MutexGuard<'_, Vec<ShardHealth>> {
        self.states.lock().unwrap_or_else(|poisoned| {
            self.states.clear_poison();
            poisoned.into_inner()
        })
    }

    fn backoff(&self, failures: u32) -> Duration {
        let doublings = failures.saturating_sub(1).min(16);
        self.policy
            .initial_backoff
            .saturating_mul(1 << doublings)
            .min(self.policy.max_backoff)
    }

    /// Marks `shard` quarantined (a panic on its query, background build, or recovery
    /// rebuild) and schedules its next automatic recovery attempt — unless the bounded
    /// attempt budget is spent, which parks the shard for explicit recovery only.
    fn quarantine(&self, shard: usize) {
        let mut states = self.locked();
        let state = &mut states[shard];
        if !state.quarantined {
            state.quarantined = true;
            self.active.fetch_add(1, Ordering::Relaxed);
        }
        state.failures = state.failures.saturating_add(1);
        state.retry_at = (state.failures <= self.policy.max_attempts)
            .then(|| Instant::now() + self.backoff(state.failures));
    }

    fn is_quarantined(&self, shard: usize) -> bool {
        self.active.load(Ordering::Relaxed) > 0 && self.locked()[shard].quarantined
    }

    /// Quarantined shards, ascending. Empty (without locking) while all shards are healthy.
    fn quarantined(&self) -> Vec<usize> {
        if self.active.load(Ordering::Relaxed) == 0 {
            return Vec::new();
        }
        self.locked()
            .iter()
            .enumerate()
            .filter(|(_, state)| state.quarantined)
            .map(|(s, _)| s)
            .collect()
    }

    /// Claims one shard whose automatic recovery is due, pushing its `retry_at` out by the
    /// backoff ceiling so concurrent serves do not pile onto the same rebuild (the attempt's
    /// own outcome reschedules or heals it long before that provisional time).
    fn claim_due(&self) -> Option<usize> {
        if self.active.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let now = Instant::now();
        let mut states = self.locked();
        for (s, state) in states.iter_mut().enumerate() {
            if state.quarantined && state.retry_at.is_some_and(|at| at <= now) {
                state.retry_at = Some(now + self.policy.max_backoff);
                return Some(s);
            }
        }
        None
    }

    fn mark_recovered(&self, shard: usize) {
        let mut states = self.locked();
        if states[shard].quarantined {
            self.active.fetch_sub(1, Ordering::Relaxed);
        }
        states[shard] = ShardHealth::HEALTHY;
    }
}

/// Tuning knobs for a [`ShardedService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedConfig {
    /// Number of dataset shards (clamped to at least 1).
    pub shards: usize,
    /// How rows map to shards.
    pub partition: ShardPartition,
    /// Maximum number of cached merged results (0 disables the cache).
    pub cache_capacity: usize,
    /// Number of independently locked cache shards (unrelated to dataset shards).
    pub cache_shards: usize,
    /// Worker threads for the query scatter and [`ShardedService::serve_batch`]
    /// (0 = one per available core).
    pub workers: usize,
    /// When set, a shared [`BuildPool`] maintains every shard under this policy.
    pub maintenance: Option<MaintenancePolicy>,
    /// Build threads in the shared pool (only with `maintenance`).
    pub build_threads: usize,
    /// Global cap on concurrently running shard rebuilds (only with `maintenance`).
    pub max_in_flight_builds: usize,
    /// What the gather does when shards cannot answer (default: fail closed).
    pub degrade: DegradePolicy,
    /// How quarantined shards return to service.
    pub recovery: RecoveryPolicy,
    /// Maximum concurrently admitted requests (batch items count individually); arrivals
    /// past the bound are shed immediately with [`SkylineError::Overloaded`]
    /// (reject-newest) and counted in [`StatsSnapshot::shed`]. `0` disables admission
    /// control.
    pub admission_depth: usize,
    /// When set (and `maintenance` runs a build pool), every generation swap a shard
    /// installs rewrites that shard's persistent snapshot in this directory — on the pool's
    /// build threads, off the serve path, best-effort — keeping `shard-NNNN.snap` files a
    /// [`ShardedService::from_snapshots`] cold start can rehydrate without preprocessing.
    pub snapshot_dir: Option<PathBuf>,
    /// Bounded staleness for the streaming gather: when a pull of the laggard shard makes no
    /// progress for this long (while the request's own deadline is still alive), the shard
    /// is cut loose — the [`ProgressiveMerger`] stops waiting on its frontier, rows gated
    /// only by it publish, and the answer flows through the degraded-shard semantics (so a
    /// tolerant [`DegradePolicy`] keeps streaming and `FailClosed` fails the request).
    /// `None` (the default) waits on every shard indefinitely.
    pub laggard_timeout: Option<Duration>,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            partition: ShardPartition::HashNominal { dim: 0 },
            cache_capacity: 4096,
            cache_shards: 16,
            workers: 0,
            maintenance: None,
            build_threads: 2,
            max_in_flight_builds: 2,
            degrade: DegradePolicy::FailClosed,
            recovery: RecoveryPolicy::default(),
            admission_depth: 0,
            snapshot_dir: None,
            laggard_timeout: None,
        }
    }
}

/// The canonical snapshot file name for shard `s` inside a snapshot directory.
fn shard_snapshot_path(dir: &Path, s: usize) -> PathBuf {
    dir.join(format!("shard-{s:04}.snap"))
}

type EpochVector = Arc<[DatasetEpoch]>;

/// A concurrent scatter-gather skyline service over N independently maintained dataset
/// shards (see the module docs).
#[derive(Debug)]
pub struct ShardedService {
    shards: Vec<SharedEngine>,
    partition: ShardPartition,
    schema: Schema,
    template: Template,
    cache: ResultCache<EpochVector, ShardedOutcome>,
    flight: SingleFlight<EpochVector>,
    metrics: ServiceMetrics,
    degrade: DegradePolicy,
    quarantine: Arc<Quarantine>,
    admission: AdmissionQueue,
    faults: Arc<FaultInjector>,
    handles: Vec<BuildHandle>,
    /// Dropped after `handles`: shuts the build threads down.
    pool: Option<BuildPool>,
    workers: usize,
    snapshot_dir: Option<PathBuf>,
    laggard_timeout: Option<Duration>,
}

impl ShardedService {
    /// Partitions `data` under `config.partition`, builds one engine per shard with the
    /// given `engine` configuration and shared `template`, and wires the serving machinery.
    ///
    /// Row `p` of `data` becomes row `i` of its shard, where `i` counts the rows of `data`
    /// routed to that shard before `p` — the deterministic order
    /// [`ShardedService::partition_rows`] reports.
    pub fn build(
        data: &Dataset,
        template: Template,
        engine: EngineConfig,
        config: ShardedConfig,
    ) -> Result<Self> {
        let shard_count = config.shards.max(1);
        let schema = data.schema().clone();
        config.partition.validate(&schema, shard_count)?;

        let started = Instant::now();
        let mut parts: Vec<Dataset> = (0..shard_count)
            .map(|_| Dataset::empty(schema.clone()))
            .collect();
        let mut numeric = vec![0.0f64; schema.numeric_count()];
        let mut nominal = vec![ValueId::default(); schema.nominal_count()];
        for p in 0..data.len() as PointId {
            for (j, v) in numeric.iter_mut().enumerate() {
                *v = data.numeric(p, j);
            }
            for (j, v) in nominal.iter_mut().enumerate() {
                *v = data.nominal(p, j);
            }
            let s = config.partition.shard_of(shard_count, &numeric, &nominal);
            parts[s].push_row_ids(&numeric, &nominal)?;
        }

        let shards: Vec<SharedEngine> = parts
            .into_iter()
            .map(|part| {
                SkylineEngine::build(Arc::new(part), template.clone(), engine)
                    .map(SharedEngine::new)
            })
            .collect::<Result<_>>()?;

        let metrics = ServiceMetrics::new();
        metrics.record_preprocess_build(started.elapsed());
        Self::assemble(shards, schema, template, config, metrics)
    }

    /// Cold-starts the service from the per-shard snapshot files
    /// [`ShardedService::write_snapshots`] (or the post-swap hooks of
    /// [`ShardedConfig::snapshot_dir`]) left in `dir` — `shard-0000.snap` through
    /// `shard-NNNN.snap`, one per configured shard — skipping preprocessing entirely: each
    /// shard's sorted list, IPO tree and columns rehydrate from the checksummed bytes with
    /// their generation ids and epochs intact, so caches, remap chains and maintenance
    /// resume exactly where the snapshotting service stopped.
    ///
    /// Every shard must carry the same schema, template and engine configuration (they were
    /// written by one service); the shard *count* and partition come from `config` and must
    /// match the directory's files. The load is recorded in
    /// [`StatsSnapshot::snapshot_loads`] / [`StatsSnapshot::snapshot_load_ms`].
    pub fn from_snapshots(dir: &Path, config: ShardedConfig) -> Result<Self> {
        let shard_count = config.shards.max(1);
        let started = Instant::now();
        let engines: Vec<SkylineEngine> = (0..shard_count)
            .map(|s| {
                SkylineEngine::from_snapshot_file(&shard_snapshot_path(dir, s))
                    .map_err(|e| SkylineError::Snapshot(format!("shard {s} of {shard_count}: {e}")))
            })
            .collect::<Result<_>>()?;
        let schema = engines[0].dataset().schema().clone();
        let template = engines[0].template().clone();
        for (s, engine) in engines.iter().enumerate().skip(1) {
            if engine.dataset().schema() != &schema {
                return Err(SkylineError::Snapshot(format!(
                    "shard {s}'s snapshot carries a different schema than shard 0's"
                )));
            }
            if engine.template() != &template {
                return Err(SkylineError::Snapshot(format!(
                    "shard {s}'s snapshot carries a different template than shard 0's"
                )));
            }
            if engine.config() != engines[0].config() {
                return Err(SkylineError::Snapshot(format!(
                    "shard {s}'s snapshot carries a different engine configuration than \
                     shard 0's"
                )));
            }
        }
        config.partition.validate(&schema, shard_count)?;
        let metrics = ServiceMetrics::new();
        metrics.record_snapshot_load(shard_count as u64, started.elapsed());
        let shards = engines.into_iter().map(SharedEngine::new).collect();
        Self::assemble(shards, schema, template, config, metrics)
    }

    /// Writes every shard's current generation to `dir` (created if missing) as
    /// `shard-NNNN.snap`, each through the atomic temp-file-and-rename path, and returns the
    /// written paths in shard order. The files are exactly what
    /// [`ShardedService::from_snapshots`] rehydrates.
    pub fn write_snapshots(&self, dir: &Path) -> Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir).map_err(|e| {
            SkylineError::Snapshot(format!(
                "creating snapshot directory {}: {e}",
                dir.display()
            ))
        })?;
        let mut paths = Vec::with_capacity(self.shards.len());
        for (s, shard) in self.shards.iter().enumerate() {
            let path = shard_snapshot_path(dir, s);
            shard.read().write_snapshot_file(&path)?;
            paths.push(path);
        }
        Ok(paths)
    }

    /// The common wiring behind [`ShardedService::build`] and
    /// [`ShardedService::from_snapshots`]: fault injection, quarantine, the shared build
    /// pool with its hooks (including post-swap snapshot writes when
    /// [`ShardedConfig::snapshot_dir`] is set), caches and admission control.
    fn assemble(
        shards: Vec<SharedEngine>,
        schema: Schema,
        template: Template,
        config: ShardedConfig,
        metrics: ServiceMetrics,
    ) -> Result<Self> {
        let shard_count = shards.len();
        let faults = Arc::new(FaultInjector::from_env());
        let quarantine = Arc::new(Quarantine::new(shard_count, config.recovery.clone()));
        let (pool, handles) = match &config.maintenance {
            Some(policy) => {
                let pool = BuildPool::new(BuildPoolConfig {
                    threads: config.build_threads,
                    max_in_flight: config.max_in_flight_builds,
                    poll_interval: policy.poll_interval,
                });
                // Shards register in index order, so pool slot ids *are* shard indices: the
                // hooks below translate a slot's build fault into that shard's failpoint
                // check and (on a panic the pool caught) its quarantine.
                pool.set_build_hook(Some({
                    let faults = faults.clone();
                    Arc::new(move |slot| faults.before_build(slot))
                }));
                pool.set_panic_hook(Some({
                    let quarantine = quarantine.clone();
                    Arc::new(move |slot| quarantine.quarantine(slot))
                }));
                if let Some(dir) = &config.snapshot_dir {
                    // Every installed generation swap rewrites the swapped shard's snapshot
                    // on the pool's build thread — the serve path never waits on a write,
                    // and a crash at any moment leaves the last atomically renamed file.
                    // Best-effort: a failed write keeps serving and the next swap retries.
                    let dir = dir.clone();
                    let engines = shards.clone();
                    pool.set_swap_hook(Some(Arc::new(move |slot| {
                        if let Some(engine) = engines.get(slot) {
                            if std::fs::create_dir_all(&dir).is_ok() {
                                let _ = engine
                                    .read()
                                    .write_snapshot_file(&shard_snapshot_path(&dir, slot));
                            }
                        }
                    })));
                }
                let handles = shards
                    .iter()
                    .map(|s| pool.register(s.clone(), policy.clone()))
                    .collect();
                (Some(pool), handles)
            }
            None => (None, Vec::new()),
        };

        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            config.workers
        };
        Ok(Self {
            shards,
            partition: config.partition,
            schema,
            template,
            cache: ResultCache::new(config.cache_capacity, config.cache_shards),
            flight: SingleFlight::new(),
            metrics,
            degrade: config.degrade,
            quarantine,
            admission: AdmissionQueue::new(config.admission_depth),
            faults,
            handles,
            pool,
            workers,
            snapshot_dir: config.snapshot_dir,
            laggard_timeout: config.laggard_timeout,
        })
    }

    /// The deterministic initial placement of `data`'s rows: entry `p` is the
    /// [`GlobalRowId`] row `p` received from [`ShardedService::build`] with the same
    /// partition. Useful for callers that track external ids across the partitioning.
    pub fn partition_rows(
        partition: &ShardPartition,
        shards: usize,
        data: &Dataset,
    ) -> Vec<GlobalRowId> {
        let shards = shards.max(1);
        let schema = data.schema();
        let mut next_row = vec![0 as PointId; shards];
        let mut numeric = vec![0.0f64; schema.numeric_count()];
        let mut nominal = vec![ValueId::default(); schema.nominal_count()];
        (0..data.len() as PointId)
            .map(|p| {
                for (j, v) in numeric.iter_mut().enumerate() {
                    *v = data.numeric(p, j);
                }
                for (j, v) in nominal.iter_mut().enumerate() {
                    *v = data.nominal(p, j);
                }
                let shard = partition.shard_of(shards, &numeric, &nominal);
                let row = next_row[shard];
                next_row[shard] += 1;
                GlobalRowId { shard, row }
            })
            .collect()
    }

    /// Number of dataset shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The engine serving shard `s` (read-lock it to inspect; do not hold the guard across
    /// service calls).
    pub fn shard(&self, s: usize) -> &SharedEngine {
        &self.shards[s]
    }

    /// The row-to-shard mapping.
    pub fn partition(&self) -> &ShardPartition {
        &self.partition
    }

    /// The shared schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The shared template every shard was built under.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// Worker threads the scatter (and batches) spread over.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Where post-swap snapshot writes land, when configured.
    pub fn snapshot_dir(&self) -> Option<&Path> {
        self.snapshot_dir.as_deref()
    }

    /// The streaming gather's bounded-staleness timeout, when configured.
    pub fn laggard_timeout(&self) -> Option<Duration> {
        self.laggard_timeout
    }

    /// Current number of cached merged results.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Every shard's current mutation epoch, in shard order.
    pub fn epochs(&self) -> Vec<DatasetEpoch> {
        self.shards.iter().map(|s| s.read().epoch()).collect()
    }

    /// Total live rows across all shards.
    pub fn live_rows(&self) -> usize {
        self.shards.iter().map(|s| s.read().live_rows()).sum()
    }

    /// Counters accumulated since the service was built; `rebuilds` and `reclaimed_rows`
    /// aggregate over every shard's maintenance lifecycle.
    pub fn stats(&self) -> StatsSnapshot {
        let mut snapshot = self.metrics.snapshot();
        snapshot.stale_evictions = self.cache.stale_evictions();
        snapshot.remap_misses = self.cache.remap_misses();
        snapshot.queue_depth = self.admission.depth() as u64;
        for shard in &self.shards {
            let maintenance = shard.read().maintenance_stats();
            snapshot.rebuilds += maintenance.rebuilds;
            snapshot.reclaimed_rows += maintenance.reclaimed_rows;
        }
        snapshot
    }

    /// The shared build pool, when [`ShardedConfig::maintenance`] enabled one.
    pub fn build_pool(&self) -> Option<&BuildPool> {
        self.pool.as_ref()
    }

    /// Rebuilds shard `s`'s generation right now and waits for it; returns whether a new
    /// generation was installed.
    pub fn force_rebuild_shard(&self, s: usize) -> Result<bool> {
        let shard = self.shards.get(s).ok_or_else(|| {
            SkylineError::InvalidArgument(format!(
                "shard {s} does not exist ({} shards)",
                self.shards.len()
            ))
        })?;
        if shard.read().rebuild_in_flight() {
            return Ok(false);
        }
        shard.rebuild_now()?;
        self.snapshot_after_swap(s);
        Ok(true)
    }

    /// Best-effort snapshot write-through after shard `s` installed a generation outside the
    /// build pool (explicit or recovery rebuilds — pool cycles go through the swap hook).
    /// A failed write keeps serving; the next swap retries.
    fn snapshot_after_swap(&self, s: usize) {
        if let (Some(dir), Some(shard)) = (&self.snapshot_dir, self.shards.get(s)) {
            if std::fs::create_dir_all(dir).is_ok() {
                let _ = shard
                    .read()
                    .write_snapshot_file(&shard_snapshot_path(dir, s));
            }
        }
    }

    /// Rebuilds every shard's generation (sequentially); returns how many installed a new
    /// generation.
    pub fn force_rebuild_all(&self) -> Result<usize> {
        let mut installed = 0;
        for s in 0..self.shards.len() {
            if self.force_rebuild_shard(s)? {
                installed += 1;
            }
        }
        Ok(installed)
    }

    /// Inserts a row, routed to its owning shard (only that shard's lock is taken), and
    /// returns its global id.
    pub fn insert_row(&self, numeric: &[f64], nominal: &[ValueId]) -> Result<GlobalRowId> {
        if numeric.len() != self.schema.numeric_count()
            || nominal.len() != self.schema.nominal_count()
        {
            self.metrics.record_error();
            return Err(SkylineError::RowShapeMismatch {
                expected: self.schema.arity(),
                got: numeric.len() + nominal.len(),
            });
        }
        let s = self.partition.shard_of(self.shards.len(), numeric, nominal);
        let mut engine = self.shards[s].write();
        engine
            .insert_row(numeric, nominal)
            .inspect_err(|_| self.metrics.record_error())?;
        let row = (engine.dataset().len() - 1) as PointId;
        drop(engine);
        self.metrics.record_mutation();
        if let Some(handle) = self.handles.get(s) {
            handle.notify();
        }
        Ok(GlobalRowId { shard: s, row })
    }

    /// Logically deletes a row on its owning shard. Returns whether the row was live
    /// (deleting an already-deleted row is a no-op that moves no epoch).
    pub fn delete_row(&self, id: GlobalRowId) -> Result<bool> {
        let shard = self.shards.get(id.shard).ok_or_else(|| {
            self.metrics.record_error();
            SkylineError::InvalidArgument(format!(
                "shard {} does not exist ({} shards)",
                id.shard,
                self.shards.len()
            ))
        })?;
        let mut engine = shard.write();
        let before = engine.epoch();
        let epoch = engine
            .delete_row(id.row)
            .inspect_err(|_| self.metrics.record_error())?;
        drop(engine);
        let was_live = epoch != before;
        if was_live {
            self.metrics.record_mutation();
            if let Some(handle) = self.handles.get(id.shard) {
                handle.notify();
            }
        }
        Ok(was_live)
    }

    /// Answers one query by scatter-gather, consulting the merged-result cache first.
    ///
    /// A preference any shard's engine would reject (refinement violation, unmaterialized
    /// value on a frozen tree) is rejected for the whole service, so sharding never changes
    /// which inputs are servable — a shard count of 1 behaves exactly like the engine alone.
    pub fn serve(&self, pref: &Preference) -> Result<ShardedServed> {
        self.serve_deadline(pref, &Deadline::none())
    }

    /// Like [`ShardedService::serve`] under a per-request [`Deadline`], with admission
    /// control in front: a request past the admission bound is shed immediately with
    /// [`SkylineError::Overloaded`], and an admitted one fails with
    /// [`SkylineError::DeadlineExceeded`] once its budget is spent — the per-shard
    /// elimination scans poll the deadline at block granularity, a follower waiting on an
    /// identical in-flight query gives up at expiry without touching the latch, and nothing
    /// partial or cancelled ever reaches the cache.
    pub fn serve_deadline(&self, pref: &Preference, deadline: &Deadline) -> Result<ShardedServed> {
        let _permit = self.admission.try_admit().inspect_err(|_| {
            self.metrics.record_shed();
        })?;
        let result = self.serve_admitted(pref, deadline);
        if matches!(result, Err(SkylineError::DeadlineExceeded)) {
            self.metrics.record_deadline_miss();
        }
        result
    }

    /// The admitted serve path (the caller holds the admission permit).
    fn serve_admitted(&self, pref: &Preference, deadline: &Deadline) -> Result<ShardedServed> {
        // A request that arrives already expired or cancelled fails fast — even when the
        // answer would have been a cache hit, returning it to a caller that revoked the
        // request is wrong.
        deadline.check()?;
        // Opportunistic recovery: at most one due quarantined shard per serve, *before* any
        // read guard is held (the rebuild needs the shard's write lock). Backoff keeps this
        // from running on the common path — `claim_due` is one atomic load while healthy.
        if let Some(s) = self.quarantine.claim_due() {
            self.attempt_recovery(s);
        }
        let started = Instant::now();
        // Read guards for every shard, acquired in fixed index order and held across the
        // epoch snapshot, cache lookup and (on a miss) the scatter: the epoch vector, the
        // merged answer and the cache entry are mutually consistent, and writers (which take
        // exactly one shard's lock) cannot interleave mid-serve. Quarantined shards are
        // included — a caught panic leaves their engines consistent (and their locks are
        // poison-recovered), it is only their availability that is suspect.
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let epochs: EpochVector = guards.iter().map(|g| g.epoch()).collect::<Vec<_>>().into();
        let key = CanonicalPreference::new(&self.schema, pref)
            .inspect_err(|_| self.metrics.record_error())?;
        for guard in &guards {
            guard
                .check_servable(pref)
                .inspect_err(|_| self.metrics.record_error())?;
        }
        // Cached answers are complete by construction and the quarantined shards' data is
        // intact, so a hit keeps serving full answers right through a quarantine.
        if let Some((outcome, translated)) = self.lookup(&key, &epochs, &guards) {
            let latency = started.elapsed();
            self.metrics.record(true, latency);
            if translated {
                self.metrics.record_remapped_hit();
            }
            return Ok(ShardedServed {
                outcome,
                cache_hit: true,
                epochs,
                degraded_shards: Vec::new(),
                latency,
            });
        }
        let quarantined = self.quarantine.quarantined();
        if !quarantined.is_empty() {
            // Known-degraded before the scatter. Partial answers are never cached, so
            // single-flight — whose followers expect to find the leader's cache entry — is
            // skipped: every caller scatters over the healthy shards itself.
            self.check_policy(quarantined.first().copied(), quarantined.len())?;
            return self.scatter_gather(
                &guards,
                pref,
                key,
                epochs,
                deadline,
                &quarantined,
                started,
            );
        }
        match self
            .flight
            .join_deadline(&key, epochs.clone(), deadline)
            .inspect_err(|_| self.metrics.record_error())?
        {
            FlightRole::Leader(flight_guard) => {
                let served =
                    self.scatter_gather(&guards, pref, key, epochs, deadline, &[], started);
                drop(flight_guard); // wakes followers (also on the error path)
                served
            }
            FlightRole::Followed => {
                self.metrics.record_coalesced();
                if let Some(outcome) = self.cache.get(&key, epochs.clone()) {
                    let latency = started.elapsed();
                    self.metrics.record(true, latency);
                    return Ok(ShardedServed {
                        outcome,
                        cache_hit: true,
                        epochs,
                        degraded_shards: Vec::new(),
                        latency,
                    });
                }
                self.scatter_gather(&guards, pref, key, epochs, deadline, &[], started)
            }
        }
    }

    /// Answers one query **progressively**: per-shard [`EngineStream`]s feed a cross-shard
    /// [`ProgressiveMerger`], and a row is handed out as soon as it has survived dominance
    /// against every shard's emitted-so-far prefix — long before the slowest shard finishes
    /// its scan. Rows arrive in ascending query-score order, are never retracted, and the
    /// complete set equals the batch [`ShardedService::serve`] answer at the same epoch
    /// vector.
    ///
    /// Fault isolation carries over from the batch path: a shard that panics — at stream
    /// construction or mid-pull — is quarantined, and under a tolerant [`DegradePolicy`] the
    /// remaining shards keep streaming (a degraded stream's final answer is never cached).
    /// A finished complete stream caches its merged answer, so the batch and streaming paths
    /// warm each other. Unlike the batch path, concurrent identical streaming misses do
    /// **not** coalesce — each request drives its own scatter (streams are pull-paced by
    /// their caller, so one slow consumer must not throttle the others).
    pub fn serve_streaming(&self, pref: &Preference) -> Result<ShardedStream<'_>> {
        self.serve_streaming_deadline(pref, Deadline::none())
    }

    /// [`ShardedService::serve_streaming`] under a per-request [`Deadline`], polled at block
    /// granularity inside each per-shard pull. Expiry fails the *pull* (counted in
    /// [`StatsSnapshot::deadline_misses`]); [`ShardedStream::set_deadline`] plus another
    /// pull resumes every shard's scan where it stopped.
    pub fn serve_streaming_deadline(
        &self,
        pref: &Preference,
        deadline: Deadline,
    ) -> Result<ShardedStream<'_>> {
        let permit = self.admission.try_admit().inspect_err(|_| {
            self.metrics.record_shed();
        })?;
        deadline.check().inspect_err(|_| {
            self.metrics.record_deadline_miss();
        })?;
        if let Some(s) = self.quarantine.claim_due() {
            self.attempt_recovery(s);
        }
        let started = Instant::now();
        // Guards are held only through construction: every per-shard stream owns shared
        // handles to its generation snapshot, so the caller can pace its pulls for as long
        // as it likes without blocking writers.
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let epochs: EpochVector = guards.iter().map(|g| g.epoch()).collect::<Vec<_>>().into();
        let key = CanonicalPreference::new(&self.schema, pref)
            .inspect_err(|_| self.metrics.record_error())?;
        for guard in &guards {
            guard
                .check_servable(pref)
                .inspect_err(|_| self.metrics.record_error())?;
        }
        if let Some((outcome, translated)) = self.lookup(&key, &epochs, &guards) {
            let ids = self.score_ordered_global(&guards, pref, &outcome.skyline)?;
            drop(guards);
            self.metrics.record(true, started.elapsed());
            if translated {
                self.metrics.record_remapped_hit();
            }
            self.metrics.record_stream_started();
            return Ok(ShardedStream {
                service: self,
                _permit: permit,
                epochs,
                started,
                ttfr_recorded: false,
                state: ShardedStreamState::Replay {
                    ids: ids.into_iter(),
                },
            });
        }
        let quarantined = self.quarantine.quarantined();
        if !quarantined.is_empty() {
            self.check_policy(quarantined.first().copied(), quarantined.len())?;
        }
        let healthy: Vec<usize> = (0..guards.len())
            .filter(|s| !quarantined.contains(s))
            .collect();
        let scatter_victim = self.faults.begin_scatter();
        // Streams are constructed in parallel (presorting/re-ranking happens here; the
        // elimination scans run lazily in the pulls), each inside `catch_unwind` so a
        // panicking shard is quarantined instead of taking the scatter down.
        let built = executor::run_indexed_scratch(
            &healthy,
            self.workers.min(healthy.len().max(1)),
            || (),
            |_, &s, ()| {
                catch_unwind(AssertUnwindSafe(|| {
                    self.faults.before_shard_query(s, scatter_victim);
                    guards[s].query_streaming_at(pref, epochs[s], deadline.clone())
                }))
            },
        );
        drop(guards);
        let mut streams: Vec<Option<EngineStream>> = (0..self.shards.len()).map(|_| None).collect();
        let mut panicked: Vec<usize> = Vec::new();
        for (&s, result) in healthy.iter().zip(built) {
            match result {
                Ok(Ok(stream)) => streams[s] = Some(stream),
                Ok(Err(err)) => {
                    self.metrics.record_error();
                    if matches!(err, SkylineError::DeadlineExceeded) {
                        self.metrics.record_deadline_miss();
                    }
                    return Err(err);
                }
                Err(_panic) => {
                    self.quarantine.quarantine(s);
                    panicked.push(s);
                }
            }
        }
        let mut degraded: Vec<usize> = quarantined.clone();
        degraded.extend_from_slice(&panicked);
        degraded.sort_unstable();
        if !degraded.is_empty() {
            self.check_policy(
                panicked.first().or(quarantined.first()).copied(),
                degraded.len(),
            )?;
        }
        let orders: Vec<CompiledOrder> = self
            .template
            .effective_orders(&self.schema, pref)
            .inspect_err(|_| self.metrics.record_error())?
            .iter()
            .map(CompiledOrder::compile)
            .collect();
        let mut merger = ProgressiveMerger::new(orders, self.schema.numeric_count(), streams.len());
        for &s in &degraded {
            merger.finish(s);
        }
        self.metrics.record_stream_started();
        Ok(ShardedStream {
            service: self,
            _permit: permit,
            epochs,
            started,
            ttfr_recorded: false,
            state: ShardedStreamState::Live(Box::new(LiveScatter {
                frontier: vec![f64::NEG_INFINITY; streams.len()],
                streams,
                merger,
                ready: VecDeque::new(),
                emitted: Vec::new(),
                answered: Vec::new(),
                degraded,
                key,
                deadline,
                numeric: vec![0.0; self.schema.numeric_count()],
                nominal: vec![ValueId::default(); self.schema.nominal_count()],
            })),
        })
    }

    /// Replays a cached (shard-grouped) answer in the stream's ascending-score order, ties
    /// broken by global row id for determinism.
    fn score_ordered_global(
        &self,
        guards: &[parking_lot_free::Guard<'_>],
        pref: &Preference,
        ids: &[GlobalRowId],
    ) -> Result<Vec<GlobalRowId>> {
        let score = ScoreFn::for_preference(&self.schema, pref)?;
        let mut scored: Vec<(f64, GlobalRowId)> = ids
            .iter()
            .map(|&g| (score.score(guards[g.shard].dataset(), g.row), g))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        Ok(scored.into_iter().map(|(_, g)| g).collect())
    }

    /// Answers a batch of queries on the worker pool, preserving input order.
    pub fn serve_batch(&self, prefs: &[Preference]) -> Vec<Result<ShardedServed>> {
        self.serve_batch_deadline(prefs, &Deadline::none())
    }

    /// Like [`ShardedService::serve_batch`] under one shared per-request [`Deadline`]: each
    /// item is served with the same budget (and cancel token), so expiry or cancellation
    /// drains the rest of the batch within one scan block each instead of grinding out
    /// answers nobody is waiting for.
    pub fn serve_batch_deadline(
        &self,
        prefs: &[Preference],
        deadline: &Deadline,
    ) -> Vec<Result<ShardedServed>> {
        executor::run_indexed_scratch(
            prefs,
            self.workers,
            || (),
            |_, pref, ()| self.serve_deadline(pref, deadline),
        )
    }

    /// Shards currently quarantined (panicked and not yet recovered), ascending.
    pub fn quarantined_shards(&self) -> Vec<usize> {
        self.quarantine.quarantined()
    }

    /// The service's failpoint registry (disarmed unless `SKYLINE_FAULTS` was set when the
    /// service was built, or a test arms it programmatically).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.faults
    }

    /// Forces one recovery rebuild of shard `s` right now, regardless of backoff schedule
    /// or remaining automatic attempts. Returns whether the shard is healthy afterwards
    /// (`true` without doing anything when it was never quarantined).
    pub fn recover_shard(&self, s: usize) -> Result<bool> {
        if s >= self.shards.len() {
            return Err(SkylineError::InvalidArgument(format!(
                "shard {s} does not exist ({} shards)",
                self.shards.len()
            )));
        }
        if !self.quarantine.is_quarantined(s) {
            return Ok(true);
        }
        Ok(self.attempt_recovery(s))
    }

    /// One recovery rebuild attempt on quarantined shard `s`; `true` if it healed. A full
    /// generation rebuild re-derives every serving structure from the (intact) dataset, so
    /// surviving one is the proof of health that ends the quarantine; a panicking or failing
    /// rebuild re-quarantines with doubled backoff until the bounded attempts are spent.
    fn attempt_recovery(&self, s: usize) -> bool {
        let shard = &self.shards[s];
        if shard.read().rebuild_in_flight() {
            // The build pool is already rebuilding it; let that cycle finish and the next
            // scheduled attempt (or explicit recovery) observe the result.
            return false;
        }
        match catch_unwind(AssertUnwindSafe(|| {
            self.faults.before_build(s);
            shard.rebuild_now()
        })) {
            Ok(Ok(_)) => {
                self.quarantine.mark_recovered(s);
                self.snapshot_after_swap(s);
                true
            }
            Ok(Err(_)) => {
                self.quarantine.quarantine(s);
                false
            }
            Err(_) => {
                if shard.read().rebuild_in_flight() {
                    // The panic unwound between `begin_rebuild` and the install; disarm the
                    // replay log or every later rebuild would no-op as "already in flight".
                    shard.write().abort_rebuild();
                }
                self.quarantine.quarantine(s);
                false
            }
        }
    }

    /// Policy gate for serving an answer missing `degraded_count` shards. `broken` is a
    /// quarantined/panicked shard to name in the error; `None` means only deadlines were
    /// missed, which is the request's fault, not a shard's.
    fn check_policy(&self, broken: Option<usize>, degraded_count: usize) -> Result<()> {
        match self.degrade {
            DegradePolicy::Tolerate { max_degraded } if degraded_count <= max_degraded => Ok(()),
            _ => {
                self.metrics.record_error();
                Err(match broken {
                    Some(shard) => SkylineError::ShardUnavailable { shard },
                    None => SkylineError::DeadlineExceeded,
                })
            }
        }
    }

    /// Remap-aware cache lookup: entries whose epoch vector differs only by generation swaps
    /// are translated per shard through that shard's remap chain (see
    /// [`ResultCache::get_or_translate`] for the single-engine analogue).
    fn lookup(
        &self,
        key: &CanonicalPreference,
        epochs: &EpochVector,
        guards: &[parking_lot_free::Guard<'_>],
    ) -> Option<(Arc<ShardedOutcome>, bool)> {
        self.cache.get_or_salvage(key, epochs, |old, value| {
            match translate_vector(old, epochs, value, guards) {
                Ok(translated) => Salvage::Translated(translated),
                Err(TranslateFailure::Stale) => Salvage::Stale,
                Err(TranslateFailure::ChainTruncated) => Salvage::RemapMiss,
            }
        })
    }

    /// The cache-miss path: scatter the query over the non-quarantined shards on the worker
    /// pool (under the already-held read guards), gather by cross-shard dominance merge.
    /// Complete answers are cached at the epoch vector; an answer degraded by `quarantined`
    /// shards, a mid-scatter panic (which quarantines its shard) or a per-shard deadline
    /// miss is policy-checked, flagged and **never cached**.
    #[allow(clippy::too_many_arguments)]
    fn scatter_gather(
        &self,
        guards: &[parking_lot_free::Guard<'_>],
        pref: &Preference,
        key: CanonicalPreference,
        epochs: EpochVector,
        deadline: &Deadline,
        quarantined: &[usize],
        started: Instant,
    ) -> Result<ShardedServed> {
        let healthy: Vec<usize> = (0..guards.len())
            .filter(|s| !quarantined.contains(s))
            .collect();
        let scatter_victim = self.faults.begin_scatter();
        // Each per-shard query runs inside `catch_unwind`: a panicking shard (a bug in one
        // engine, or an injected fault) is isolated and quarantined instead of unwinding
        // through the worker pool and taking the whole gather down.
        let scattered = executor::run_indexed_scratch(
            &healthy,
            self.workers.min(healthy.len().max(1)),
            EngineScratch::default,
            |_, &s, scratch| {
                catch_unwind(AssertUnwindSafe(|| {
                    self.faults.before_shard_query(s, scatter_victim);
                    guards[s].query_at_deadline(pref, epochs[s], deadline, scratch)
                }))
            },
        );
        let mut outcomes: Vec<(usize, QueryOutcome)> = Vec::with_capacity(healthy.len());
        let mut panicked: Vec<usize> = Vec::new();
        let mut missed: Vec<usize> = Vec::new();
        for (&s, result) in healthy.iter().zip(scattered) {
            match result {
                Ok(Ok(outcome)) => outcomes.push((s, outcome)),
                Ok(Err(SkylineError::DeadlineExceeded)) => missed.push(s),
                Ok(Err(err)) => {
                    self.metrics.record_error();
                    return Err(err);
                }
                Err(_panic) => {
                    self.quarantine.quarantine(s);
                    panicked.push(s);
                }
            }
        }

        let mut degraded: Vec<usize> = quarantined.to_vec();
        degraded.extend_from_slice(&panicked);
        degraded.extend_from_slice(&missed);
        degraded.sort_unstable();
        if !degraded.is_empty() {
            // Deadline misses are the request's fault, so they only fail the request as
            // `DeadlineExceeded`; a panicked (or already-quarantined) shard is named.
            self.check_policy(
                panicked.first().or(quarantined.first()).copied(),
                degraded.len(),
            )?;
        }

        // Gather: cross-shard dominance merge under the query's effective orders.
        let orders: Vec<CompiledOrder> = self
            .template
            .effective_orders(&self.schema, pref)?
            .iter()
            .map(CompiledOrder::compile)
            .collect();
        let mut merger = SkylineMerger::new(orders, self.schema.numeric_count());
        let mut numeric = vec![0.0f64; self.schema.numeric_count()];
        let mut nominal = vec![ValueId::default(); self.schema.nominal_count()];
        for (s, outcome) in &outcomes {
            let data = guards[*s].dataset();
            for &p in &outcome.skyline {
                for (j, v) in numeric.iter_mut().enumerate() {
                    *v = data.numeric(p, j);
                }
                for (j, v) in nominal.iter_mut().enumerate() {
                    *v = data.nominal(p, j);
                }
                merger.push(*s, p, &numeric, &nominal)?;
            }
        }
        let value = Arc::new(ShardedOutcome {
            skyline: merger
                .merge()
                .into_iter()
                .map(|(shard, row)| GlobalRowId { shard, row })
                .collect(),
            methods: outcomes.iter().map(|(_, o)| o.method).collect(),
        });
        if degraded.is_empty() {
            self.cache.insert(key, epochs.clone(), value.clone());
        } else {
            self.metrics.record_degraded();
        }
        let latency = started.elapsed();
        self.metrics.record(false, latency);
        Ok(ShardedServed {
            outcome: value,
            cache_hit: false,
            epochs,
            degraded_shards: degraded,
            latency,
        })
    }
}

/// The per-stream serving state (see [`ShardedStream`]).
#[derive(Debug)]
enum ShardedStreamState {
    /// Cache hit: replay the memoized merged answer in ascending score order.
    Replay {
        ids: std::vec::IntoIter<GlobalRowId>,
    },
    /// Live scatter: per-shard engine streams feeding the progressive merger.
    Live(Box<LiveScatter>),
    /// Exhausted (terminal bookkeeping already done).
    Done,
}

/// The live scatter-gather state behind [`ShardedStreamState::Live`].
#[derive(Debug)]
struct LiveScatter {
    /// One stream per shard (`None` = exhausted, degraded, or quarantined).
    streams: Vec<Option<EngineStream>>,
    /// Last score offered per shard (drives which stream to pull: the merger's gate is
    /// the minimum over unfinished frontiers, so pulling the laggard makes progress).
    frontier: Vec<f64>,
    merger: ProgressiveMerger,
    /// Rows confirmed by the merger, not yet handed to the caller.
    ready: VecDeque<GlobalRowId>,
    /// Every row handed out so far (becomes the cached answer on a complete finish).
    emitted: Vec<GlobalRowId>,
    /// `(shard, method)` per cleanly finished shard.
    answered: Vec<(usize, MethodUsed)>,
    /// Shards missing from the answer, ascending.
    degraded: Vec<usize>,
    key: CanonicalPreference,
    /// The request's own deadline. With a laggard timeout configured, each pull runs under
    /// [`Deadline::tightened`] of this — so a pull expiring while this is still alive marks
    /// the pulled shard a laggard rather than the request late.
    deadline: Deadline,
    /// Scratch row buffers for the merger's dominance tests.
    numeric: Vec<f64>,
    nominal: Vec<ValueId>,
}

/// A progressive sharded answer handed out by [`ShardedService::serve_streaming`]: globally
/// confirmed skyline members, one per [`ShardedStream::next_row`] call, in ascending
/// query-score order.
///
/// The stream is pinned to the epoch vector it was created at ([`ShardedStream::epochs`])
/// — every per-shard stream snapshots its generation — and holds its admission permit until
/// dropped. [`ShardedStream::degraded_shards`] names the shards the answer will be missing
/// (only non-empty under a tolerant [`DegradePolicy`]).
#[derive(Debug)]
pub struct ShardedStream<'a> {
    service: &'a ShardedService,
    _permit: AdmissionPermit,
    epochs: EpochVector,
    started: Instant,
    ttfr_recorded: bool,
    state: ShardedStreamState,
}

impl ShardedStream<'_> {
    /// The per-shard epoch vector the stream's answer is valid for.
    pub fn epochs(&self) -> &EpochVector {
        &self.epochs
    }

    /// Shards missing from the answer so far (quarantined before or during the stream),
    /// ascending. May grow while pulling — a shard can panic mid-stream under a tolerant
    /// policy. Empty for replayed cache hits (cached answers are always complete).
    pub fn degraded_shards(&self) -> &[usize] {
        match &self.state {
            ShardedStreamState::Live(live) => &live.degraded,
            _ => &[],
        }
    }

    /// Replaces every per-shard stream's deadline: an expired pull can be retried under a
    /// fresh budget and resumes each shard's scan where it stopped.
    pub fn set_deadline(&mut self, deadline: Deadline) {
        if let ShardedStreamState::Live(live) = &mut self.state {
            for stream in live.streams.iter_mut().flatten() {
                stream.set_deadline(deadline.clone());
            }
            live.deadline = deadline;
        }
    }

    /// Pulls the next globally confirmed skyline member, or `Ok(None)` once the answer is
    /// complete. Rows already delivered are final regardless of later errors; deadline
    /// expiry preserves every shard's position (see [`ShardedStream::set_deadline`]).
    pub fn next_row(&mut self) -> Result<Option<GlobalRowId>> {
        loop {
            match &mut self.state {
                ShardedStreamState::Done => return Ok(None),
                ShardedStreamState::Replay { ids } => match ids.next() {
                    Some(g) => {
                        if !self.ttfr_recorded {
                            self.ttfr_recorded = true;
                            self.service.metrics.record_ttfr(self.started.elapsed());
                        }
                        return Ok(Some(g));
                    }
                    None => {
                        self.state = ShardedStreamState::Done;
                        return Ok(None);
                    }
                },
                ShardedStreamState::Live(live) => {
                    let LiveScatter {
                        streams,
                        frontier,
                        merger,
                        ready,
                        emitted,
                        answered,
                        degraded,
                        key,
                        deadline,
                        numeric,
                        nominal,
                    } = &mut **live;
                    if let Some(g) = ready.pop_front() {
                        emitted.push(g);
                        if !self.ttfr_recorded {
                            self.ttfr_recorded = true;
                            self.service.metrics.record_ttfr(self.started.elapsed());
                        }
                        return Ok(Some(g));
                    }
                    if merger.is_complete() {
                        // Complete: the emitted rows, re-grouped by shard in engine order,
                        // are exactly the batch `ShardedOutcome` layout (the merger emits
                        // per-shard prefixes in the engines' ascending-score = ascending-id
                        // survivor order), so the entry is shared with the batch path.
                        let mut skyline = std::mem::take(emitted);
                        skyline.sort_unstable();
                        let mut answered = std::mem::take(answered);
                        answered.sort_unstable_by_key(|&(s, _)| s);
                        let outcome = Arc::new(ShardedOutcome {
                            skyline,
                            methods: answered.into_iter().map(|(_, m)| m).collect(),
                        });
                        if degraded.is_empty() {
                            self.service
                                .cache
                                .insert(key.clone(), self.epochs.clone(), outcome);
                        } else {
                            self.service.metrics.record_degraded();
                        }
                        self.service.metrics.record(false, self.started.elapsed());
                        self.state = ShardedStreamState::Done;
                        return Ok(None);
                    }
                    // Pull the laggard: the active stream with the minimal offered score is
                    // the one gating the merger.
                    let s = (0..streams.len())
                        .filter(|&s| streams[s].is_some())
                        .min_by(|&a, &b| frontier[a].total_cmp(&frontier[b]))
                        .expect("an incomplete merger implies an active stream");
                    let stream = streams[s].as_mut().expect("chosen stream is active");
                    // Bounded staleness: cap how long this one laggard may gate the merge.
                    // The tightened deadline keeps the request's cancel token and never
                    // extends its own expiry.
                    if let Some(budget) = self.service.laggard_timeout {
                        stream.set_deadline(deadline.tightened(budget));
                    }
                    match catch_unwind(AssertUnwindSafe(|| stream.next_row())) {
                        Ok(Ok(Some(p))) => {
                            let score = stream.score_of(p);
                            let data = stream.dataset_arc();
                            for (j, v) in numeric.iter_mut().enumerate() {
                                *v = data.numeric(p, j);
                            }
                            for (j, v) in nominal.iter_mut().enumerate() {
                                *v = data.nominal(p, j);
                            }
                            frontier[s] = score;
                            merger
                                .offer(s, p, score, numeric, nominal)
                                .inspect_err(|_| self.service.metrics.record_error())?;
                        }
                        Ok(Ok(None)) => {
                            let method = stream.method();
                            answered.push((s, method));
                            streams[s] = None;
                            merger.finish(s);
                        }
                        Ok(Err(e)) => {
                            if matches!(e, SkylineError::DeadlineExceeded)
                                && self.service.laggard_timeout.is_some()
                                && deadline.check().is_ok()
                            {
                                // The request's own budget is alive, so the *tightened*
                                // per-pull budget expired: shard `s` exceeded the bounded
                                // staleness the service tolerates. Cut it loose — the
                                // merger stops waiting on its frontier, so every row gated
                                // only by this laggard publishes on the drain below — and
                                // route it through the degraded-answer semantics, exactly
                                // as a quarantined shard: policy-checked, flagged in
                                // `degraded_shards`, never cached.
                                streams[s] = None;
                                merger.finish(s);
                                degraded.push(s);
                                degraded.sort_unstable();
                                self.service.check_policy(Some(s), degraded.len())?;
                            } else {
                                // One shared deadline governs every shard, so a per-shard
                                // expiry is the request's expiry: fail the pull
                                // (resumable), do not degrade the shard.
                                self.service.metrics.record_error();
                                if matches!(e, SkylineError::DeadlineExceeded) {
                                    self.service.metrics.record_deadline_miss();
                                }
                                return Err(e);
                            }
                        }
                        Err(_panic) => {
                            // Mid-pull panic: quarantine the shard and, when tolerated,
                            // keep streaming from the rest. Rows already delivered remain
                            // valid members of the healthy shards' merge.
                            self.service.quarantine.quarantine(s);
                            streams[s] = None;
                            merger.finish(s);
                            degraded.push(s);
                            degraded.sort_unstable();
                            self.service.check_policy(Some(s), degraded.len())?;
                        }
                    }
                    let mut confirmed = Vec::new();
                    merger.drain_ready(&mut confirmed);
                    ready.extend(
                        confirmed
                            .into_iter()
                            .map(|(shard, row)| GlobalRowId { shard, row }),
                    );
                }
            }
        }
    }

    /// Drains the rest of the stream, returning the remaining rows in emission (ascending
    /// query-score) order.
    pub fn collect_rows(mut self) -> Result<Vec<GlobalRowId>> {
        let mut rows = Vec::new();
        while let Some(g) = self.next_row()? {
            rows.push(g);
        }
        Ok(rows)
    }
}

/// Translates a cached outcome from epoch vector `old` to `new`, shard by shard, through
/// each changed shard's remap chain. All-or-nothing: every changed shard must bridge
/// entirely via swaps. A shard with real mutations in between makes the entry
/// [`TranslateFailure::Stale`]; when swaps alone separate the vectors but some shard's
/// translations already fell off its bounded chain, the entry is an unrecoverable
/// [`TranslateFailure::ChainTruncated`] (counted as a remap miss).
fn translate_vector(
    old: &EpochVector,
    new: &EpochVector,
    value: &ShardedOutcome,
    guards: &[parking_lot_free::Guard<'_>],
) -> std::result::Result<ShardedOutcome, TranslateFailure> {
    if old.len() != new.len() {
        return Err(TranslateFailure::Stale);
    }
    let mut skyline = value.skyline.clone();
    let mut truncated = false;
    for s in 0..new.len() {
        if old[s] == new[s] {
            continue;
        }
        let ids: Vec<PointId> = skyline
            .iter()
            .filter(|g| g.shard == s)
            .map(|g| g.row)
            .collect();
        match translate_through_chain(&ids, old[s], new[s], guards[s].remap_chain()) {
            Ok(translated) => {
                let mut next = translated.into_iter();
                for g in skyline.iter_mut().filter(|g| g.shard == s) {
                    g.row = next.next().expect("one translated id per input id");
                }
            }
            // Stale dominates: real mutations anywhere make the whole entry outdated.
            Err(TranslateFailure::Stale) => return Err(TranslateFailure::Stale),
            Err(TranslateFailure::ChainTruncated) => truncated = true,
        }
    }
    if truncated {
        return Err(TranslateFailure::ChainTruncated);
    }
    Ok(ShardedOutcome {
        skyline,
        methods: value.methods.clone(),
    })
}

/// Local alias spelling out the guard type the scatter borrows (std's rwlock read guard over
/// the engine).
mod parking_lot_free {
    pub(super) type Guard<'a> = std::sync::RwLockReadGuard<'a, skyline::SkylineEngine>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::{Dimension, NominalDomain};
    use skyline_datagen::{Distribution, ExperimentConfig, QueryGenerator};

    fn experiment(n: usize, seed: u64) -> (Arc<Dataset>, Template) {
        let config = ExperimentConfig {
            n,
            numeric_dims: 2,
            nominal_dims: 2,
            cardinality: 8,
            theta: 1.0,
            pref_order: 2,
            distribution: Distribution::AntiCorrelated,
            seed,
        };
        let data = Arc::new(config.generate_dataset());
        let template = config.template(&data);
        (data, template)
    }

    fn value_key(data: &Dataset, p: PointId) -> (Vec<u64>, Vec<ValueId>) {
        let schema = data.schema();
        (
            (0..schema.numeric_count())
                .map(|j| data.numeric(p, j).to_bits())
                .collect(),
            (0..schema.nominal_count())
                .map(|j| data.nominal(p, j))
                .collect(),
        )
    }

    /// The sharded skyline as a sorted multiset of row values (global ids are incomparable
    /// across different shard counts; values are the invariant).
    fn sharded_values(
        service: &ShardedService,
        served: &ShardedServed,
    ) -> Vec<(Vec<u64>, Vec<ValueId>)> {
        let mut values: Vec<_> = served
            .outcome
            .skyline
            .iter()
            .map(|g| value_key(service.shard(g.shard).read().dataset(), g.row))
            .collect();
        values.sort();
        values
    }

    #[test]
    fn sharded_matches_unsharded_on_a_static_dataset() {
        let (data, template) = experiment(600, 11);
        let unsharded =
            SkylineEngine::build(data.clone(), template.clone(), EngineConfig::AdaptiveSfs)
                .unwrap();
        let mut generator = QueryGenerator::new(7);
        let prefs = generator.random_preferences(data.schema(), &template, 2, 12, None);
        for shards in [1, 2, 3, 5] {
            let service = ShardedService::build(
                &data,
                template.clone(),
                EngineConfig::AdaptiveSfs,
                ShardedConfig {
                    shards,
                    workers: 2,
                    ..ShardedConfig::default()
                },
            )
            .unwrap();
            assert_eq!(service.shard_count(), shards);
            assert_eq!(service.live_rows(), data.len());
            for pref in &prefs {
                let served = service.serve(pref).unwrap();
                let mut expected: Vec<_> = unsharded
                    .query(pref)
                    .unwrap()
                    .skyline
                    .iter()
                    .map(|&p| value_key(&data, p))
                    .collect();
                expected.sort();
                assert_eq!(
                    sharded_values(&service, &served),
                    expected,
                    "shards={shards}"
                );
            }
        }
    }

    #[test]
    fn epoch_vector_cache_hits_and_per_shard_invalidation() {
        let (data, template) = experiment(300, 3);
        let service = ShardedService::build(
            &data,
            template.clone(),
            EngineConfig::AdaptiveSfs,
            ShardedConfig {
                shards: 3,
                workers: 1,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        let mut generator = QueryGenerator::new(5);
        let pref = generator.random_preference(data.schema(), &template, 2, None);

        let first = service.serve(&pref).unwrap();
        assert!(!first.cache_hit);
        let second = service.serve(&pref).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.outcome.skyline, second.outcome.skyline);
        assert_eq!(first.outcome.methods.len(), 3);

        // A mutation on one shard bumps only that shard's epoch — and still invalidates.
        let id = service.insert_row(&[0.01, 0.01], &[0, 0]).unwrap();
        let third = service.serve(&pref).unwrap();
        assert!(!third.cache_hit, "epoch vector moved with the shard");
        assert!(service.epochs()[id.shard] > DatasetEpoch::INITIAL);
        assert_eq!(service.stats().mutations, 1);

        // Deleting it again is routed to the same shard and epoch-bumps once more.
        assert!(service.delete_row(id).unwrap());
        assert!(!service.delete_row(id).unwrap(), "double delete is a no-op");
    }

    #[test]
    fn shard_rebuilds_translate_the_merged_cache_entry() {
        let (data, template) = experiment(400, 17);
        let service = ShardedService::build(
            &data,
            template.clone(),
            EngineConfig::AdaptiveSfs,
            ShardedConfig {
                shards: 2,
                workers: 1,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        let mut generator = QueryGenerator::new(9);
        let pref = generator.random_preference(data.schema(), &template, 2, None);

        // Tombstone one row per shard so both rebuilds renumber, then cache an answer.
        for shard in 0..2 {
            // Row ids 0..n exist on every shard (rows were distributed round-robin-ish);
            // pick a row that is live by construction.
            let target = GlobalRowId { shard, row: 0 };
            service.delete_row(target).unwrap();
        }
        let before = service.serve(&pref).unwrap();
        assert!(!before.cache_hit);

        // Back-to-back rebuilds on both shards: two swaps each, no mutations between.
        assert_eq!(service.force_rebuild_all().unwrap(), 2);
        assert_eq!(service.force_rebuild_all().unwrap(), 2);

        let after = service.serve(&pref).unwrap();
        assert!(
            after.cache_hit,
            "entry translated through both shards' chains"
        );
        let stats = service.stats();
        assert_eq!(stats.remapped_hits, 1);
        assert_eq!(stats.remap_misses, 0);
        assert_eq!(stats.rebuilds, 4);
        // The translated answer names the same rows: values match a fresh computation.
        let fresh = {
            let service2 = ShardedService::build(
                &data,
                template.clone(),
                EngineConfig::AdaptiveSfs,
                ShardedConfig {
                    shards: 2,
                    workers: 1,
                    ..ShardedConfig::default()
                },
            )
            .unwrap();
            for shard in 0..2 {
                service2.delete_row(GlobalRowId { shard, row: 0 }).unwrap();
            }
            let served = service2.serve(&pref).unwrap();
            sharded_values(&service2, &served)
        };
        assert_eq!(sharded_values(&service, &after), fresh);
    }

    #[test]
    fn range_partition_routes_and_validates() {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal("g", NominalDomain::anonymous(4)),
        ])
        .unwrap();
        let partition = ShardPartition::RangeNumeric {
            dim: 0,
            bounds: vec![10.0, 20.0],
        };
        assert_eq!(partition.shard_of(3, &[5.0], &[0]), 0);
        assert_eq!(partition.shard_of(3, &[10.0], &[0]), 1);
        assert_eq!(partition.shard_of(3, &[19.9], &[0]), 1);
        assert_eq!(partition.shard_of(3, &[99.0], &[0]), 2);
        assert_eq!(partition.shard_of(3, &[f64::NAN], &[0]), 0);

        let mut data = Dataset::empty(schema.clone());
        for (x, g) in [(5.0, 0), (15.0, 1), (25.0, 2), (7.0, 3)] {
            data.push_row_ids(&[x], &[g as ValueId]).unwrap();
        }
        let template = Template::empty(&schema);
        let service = ShardedService::build(
            &data,
            template.clone(),
            EngineConfig::SfsD,
            ShardedConfig {
                shards: 3,
                partition,
                workers: 1,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        // Shard 0 owns the two x < 10 rows, shards 1 and 2 one row each.
        assert_eq!(service.shard(0).read().dataset().len(), 2);
        assert_eq!(service.shard(1).read().dataset().len(), 1);
        assert_eq!(service.shard(2).read().dataset().len(), 1);
        // Mutations route by value.
        let id = service.insert_row(&[12.0], &[0]).unwrap();
        assert_eq!(id.shard, 1);

        // Wrong bounds count is rejected up front.
        assert!(ShardedService::build(
            &data,
            template.clone(),
            EngineConfig::SfsD,
            ShardedConfig {
                shards: 3,
                partition: ShardPartition::RangeNumeric {
                    dim: 0,
                    bounds: vec![10.0],
                },
                ..ShardedConfig::default()
            },
        )
        .is_err());
        // So is an out-of-schema dimension.
        assert!(ShardedService::build(
            &data,
            template,
            EngineConfig::SfsD,
            ShardedConfig {
                shards: 2,
                partition: ShardPartition::HashNominal { dim: 5 },
                ..ShardedConfig::default()
            },
        )
        .is_err());
    }

    #[test]
    fn empty_shards_are_served_and_mutable() {
        // 2 rows over 4 shards: at least two shards start empty, and everything still works.
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal("g", NominalDomain::anonymous(8)),
        ])
        .unwrap();
        let mut data = Dataset::empty(schema.clone());
        data.push_row_ids(&[1.0], &[0]).unwrap();
        data.push_row_ids(&[2.0], &[1]).unwrap();
        let template = Template::empty(&schema);
        let service = ShardedService::build(
            &data,
            template,
            EngineConfig::AdaptiveSfs,
            ShardedConfig {
                shards: 4,
                workers: 2,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        // Favourite value 0: the (1.0, g=0) row dominates (2.0, g=1) on both dimensions.
        let pref = Preference::from_dims(vec![skyline_core::ImplicitPreference::new([0]).unwrap()]);
        let served = service.serve(&pref).unwrap();
        assert_eq!(
            served.outcome.skyline.len(),
            1,
            "x=1.0,g=0 dominates x=2.0,g=1"
        );
        // Inserting into a previously empty shard works and invalidates.
        let mut placed_empty = false;
        for v in 0..8u16 {
            let id = service.insert_row(&[0.5], &[v]).unwrap();
            placed_empty |= service.shard(id.shard).read().dataset().len() == 1;
        }
        assert!(placed_empty, "some insert landed on an empty shard");
        let after = service.serve(&pref).unwrap();
        assert!(!after.cache_hit);
        assert_eq!(after.outcome.skyline.len(), 1, "x=0.5 rows dominate");
    }

    /// Merged skyline of a subset of shards, computed independently of the serve path
    /// (per-shard engine queries + the public merger) — the ground truth for degraded
    /// answers.
    fn merge_of_shards(
        service: &ShardedService,
        shards: &[usize],
        pref: &Preference,
    ) -> Vec<(Vec<u64>, Vec<ValueId>)> {
        let orders: Vec<CompiledOrder> = service
            .template()
            .effective_orders(service.schema(), pref)
            .unwrap()
            .iter()
            .map(CompiledOrder::compile)
            .collect();
        let mut merger = SkylineMerger::new(orders, service.schema().numeric_count());
        for &s in shards {
            let guard = service.shard(s).read();
            let data = guard.dataset();
            for p in guard.query(pref).unwrap().skyline {
                let numeric: Vec<f64> = (0..service.schema().numeric_count())
                    .map(|j| data.numeric(p, j))
                    .collect();
                let nominal: Vec<ValueId> = (0..service.schema().nominal_count())
                    .map(|j| data.nominal(p, j))
                    .collect();
                merger.push(s, p, &numeric, &nominal).unwrap();
            }
        }
        let mut values: Vec<_> = merger
            .merge()
            .into_iter()
            .map(|(s, p)| value_key(service.shard(s).read().dataset(), p))
            .collect();
        values.sort();
        values
    }

    #[test]
    fn panicking_shard_is_quarantined_and_tolerant_gathers_degrade() {
        let (data, template) = experiment(300, 31);
        let service = ShardedService::build(
            &data,
            template.clone(),
            EngineConfig::AdaptiveSfs,
            ShardedConfig {
                shards: 3,
                workers: 2,
                degrade: DegradePolicy::Tolerate { max_degraded: 1 },
                recovery: RecoveryPolicy {
                    max_attempts: 3,
                    initial_backoff: Duration::from_millis(1),
                    max_backoff: Duration::from_millis(20),
                },
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        let mut generator = QueryGenerator::new(41);
        let pref = generator.random_preference(data.schema(), &template, 2, None);

        // Mid-scatter panic: shard 1 dies, the gather answers from shards 0 and 2.
        service.fault_injector().panic_on_shard_query(1, 1);
        let degraded = service.serve(&pref).unwrap();
        assert!(degraded.is_degraded());
        assert_eq!(degraded.degraded_shards, vec![1]);
        assert_eq!(service.quarantined_shards(), vec![1]);
        assert_eq!(degraded.outcome.methods.len(), 2, "two answering shards");
        assert_eq!(
            sharded_values(&service, &degraded),
            merge_of_shards(&service, &[0, 2], &pref),
            "degraded answer is exactly the healthy shards' merge"
        );
        let partial = degraded.partial().unwrap();
        assert_eq!(partial.degraded_shards, vec![1]);
        assert_eq!(partial.rows, degraded.outcome.skyline);
        assert!(
            partial.rows.iter().all(|g| g.shard != 1),
            "no row of a quarantined shard in a partial answer"
        );
        assert_eq!(service.cache_len(), 0, "partial answers are never cached");
        assert_eq!(service.stats().degraded, 1);

        // The shard stays quarantined (pre-scatter degraded path) until its backoff
        // recovery rebuild lands; then full — and cacheable — answers resume.
        std::thread::sleep(Duration::from_millis(5));
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let served = service.serve(&pref).unwrap();
            if !served.is_degraded() {
                assert!(service.quarantined_shards().is_empty());
                assert_eq!(
                    sharded_values(&service, &served),
                    merge_of_shards(&service, &[0, 1, 2], &pref),
                    "recovered service serves the complete answer again"
                );
                break;
            }
            assert!(Instant::now() < deadline, "shard never recovered");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(service.serve(&pref).unwrap().cache_hit);
    }

    #[test]
    fn fail_closed_names_the_broken_shard_and_explicit_recovery_heals() {
        let (data, template) = experiment(200, 37);
        let service = ShardedService::build(
            &data,
            template.clone(),
            EngineConfig::AdaptiveSfs,
            ShardedConfig {
                shards: 2,
                workers: 1,
                // Automatic recovery disabled: only `recover_shard` may heal.
                recovery: RecoveryPolicy {
                    max_attempts: 0,
                    ..RecoveryPolicy::default()
                },
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        let mut generator = QueryGenerator::new(43);
        let pref = generator.random_preference(data.schema(), &template, 2, None);

        service.fault_injector().panic_on_shard_query(0, 1);
        assert_eq!(
            service.serve(&pref).unwrap_err(),
            SkylineError::ShardUnavailable { shard: 0 }
        );
        // Still quarantined: fail-closed keeps failing without another panic.
        assert_eq!(
            service.serve(&pref).unwrap_err(),
            SkylineError::ShardUnavailable { shard: 0 }
        );
        assert_eq!(service.quarantined_shards(), vec![0]);
        assert_eq!(service.cache_len(), 0);

        assert!(service.recover_shard(0).unwrap());
        assert!(service.quarantined_shards().is_empty());
        let served = service.serve(&pref).unwrap();
        assert!(!served.is_degraded());
        assert!(
            service.recover_shard(0).unwrap(),
            "healthy shard is a no-op"
        );
        assert!(service.recover_shard(9).is_err(), "unknown shard");
    }

    #[test]
    fn cached_answers_keep_serving_through_a_quarantine() {
        let (data, template) = experiment(250, 47);
        let service = ShardedService::build(
            &data,
            template.clone(),
            EngineConfig::AdaptiveSfs,
            ShardedConfig {
                shards: 2,
                workers: 1,
                degrade: DegradePolicy::Tolerate { max_degraded: 1 },
                recovery: RecoveryPolicy {
                    max_attempts: 0,
                    ..RecoveryPolicy::default()
                },
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        let mut generator = QueryGenerator::new(53);
        let cached_pref = generator.random_preference(data.schema(), &template, 2, None);
        let full = service.serve(&cached_pref).unwrap();
        assert!(!full.cache_hit);

        // Quarantine shard 1 via a different query's scatter panic.
        let other = generator.random_preference(data.schema(), &template, 1, None);
        service.fault_injector().panic_on_shard_query(1, 1);
        let _ = service.serve(&other);
        assert_eq!(service.quarantined_shards(), vec![1]);

        // The cached complete answer still serves — data is intact, only availability is
        // suspect — while fresh misses degrade.
        let hit = service.serve(&cached_pref).unwrap();
        assert!(hit.cache_hit);
        assert!(!hit.is_degraded());
        assert_eq!(hit.outcome.skyline, full.outcome.skyline);
    }

    #[test]
    fn shared_build_pool_maintains_all_shards() {
        let (data, template) = experiment(200, 23);
        let service = ShardedService::build(
            &data,
            template,
            EngineConfig::AdaptiveSfs,
            ShardedConfig {
                shards: 3,
                workers: 1,
                maintenance: Some(MaintenancePolicy {
                    dead_row_ratio: 0.01,
                    max_mutations_since_rebuild: u64::MAX,
                    poll_interval: Duration::from_millis(5),
                }),
                build_threads: 2,
                max_in_flight_builds: 1,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        assert!(service.build_pool().is_some());
        // Delete one live row per shard; the pool must compact every shard on its own.
        for shard in 0..service.shard_count() {
            assert!(service.delete_row(GlobalRowId { shard, row: 0 }).unwrap());
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while service.stats().rebuilds < 3 {
            assert!(Instant::now() < deadline, "pool never compacted all shards");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(service.stats().reclaimed_rows, 3);
        for s in 0..service.shard_count() {
            assert_eq!(service.shard(s).read().dead_rows(), 0);
        }
    }

    /// Sorted value multiset of streamed rows (mirrors [`sharded_values`] for streams).
    fn stream_values(
        service: &ShardedService,
        rows: &[GlobalRowId],
    ) -> Vec<(Vec<u64>, Vec<ValueId>)> {
        let mut values: Vec<_> = rows
            .iter()
            .map(|g| value_key(service.shard(g.shard).read().dataset(), g.row))
            .collect();
        values.sort();
        values
    }

    #[test]
    fn sharded_streaming_matches_batch_and_emits_in_score_order() {
        let (data, template) = experiment(500, 61);
        let build = || {
            ShardedService::build(
                &data,
                template.clone(),
                EngineConfig::AdaptiveSfs,
                ShardedConfig {
                    shards: 3,
                    workers: 2,
                    ..ShardedConfig::default()
                },
            )
            .unwrap()
        };
        let service = build();
        let mut generator = QueryGenerator::new(67);
        let pref = generator.random_preference(data.schema(), &template, 2, None);

        let stream = service.serve_streaming(&pref).unwrap();
        assert!(stream.degraded_shards().is_empty());
        let rows = stream.collect_rows().unwrap();
        assert!(!rows.is_empty());

        // Ascending global query-score emission.
        let score = ScoreFn::for_preference(data.schema(), &pref).unwrap();
        let scores: Vec<f64> = rows
            .iter()
            .map(|g| score.score(service.shard(g.shard).read().dataset(), g.row))
            .collect();
        assert!(
            scores.windows(2).all(|w| w[0] <= w[1]),
            "emission must be in ascending query-score order"
        );

        // The finished stream cached the merged answer in the exact batch layout: the
        // warmed batch path replays it, and it equals a cold service's gather bit for bit.
        let served = service.serve(&pref).unwrap();
        assert!(served.cache_hit, "finished stream warms the batch cache");
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, served.outcome.skyline);
        let fresh = build().serve(&pref).unwrap();
        assert_eq!(*served.outcome, *fresh.outcome);

        // A second stream replays the cache in the same score order.
        let replay = service
            .serve_streaming(&pref)
            .unwrap()
            .collect_rows()
            .unwrap();
        assert_eq!(replay, rows);
        let stats = service.stats();
        assert_eq!(stats.streams_started, 2);
        assert!(stats.ttfr_p50 > Duration::ZERO);
    }

    #[test]
    fn streaming_scatter_panic_quarantines_and_degrades() {
        let (data, template) = experiment(300, 71);
        let service = ShardedService::build(
            &data,
            template.clone(),
            EngineConfig::AdaptiveSfs,
            ShardedConfig {
                shards: 3,
                workers: 2,
                degrade: DegradePolicy::Tolerate { max_degraded: 1 },
                recovery: RecoveryPolicy {
                    max_attempts: 0,
                    ..RecoveryPolicy::default()
                },
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        let mut generator = QueryGenerator::new(73);
        let pref = generator.random_preference(data.schema(), &template, 2, None);

        service.fault_injector().panic_on_shard_query(1, 1);
        let stream = service.serve_streaming(&pref).unwrap();
        assert_eq!(stream.degraded_shards(), &[1]);
        let rows = stream.collect_rows().unwrap();
        assert!(rows.iter().all(|g| g.shard != 1));
        assert_eq!(
            stream_values(&service, &rows),
            merge_of_shards(&service, &[0, 2], &pref),
            "degraded stream is exactly the healthy shards' merge"
        );
        assert_eq!(service.quarantined_shards(), vec![1]);
        assert_eq!(service.cache_len(), 0, "degraded streams are never cached");
        assert_eq!(service.stats().degraded, 1);

        // Fail-closed (the default policy) refuses the stream outright instead.
        let strict = ShardedService::build(
            &data,
            template.clone(),
            EngineConfig::AdaptiveSfs,
            ShardedConfig {
                shards: 2,
                workers: 1,
                recovery: RecoveryPolicy {
                    max_attempts: 0,
                    ..RecoveryPolicy::default()
                },
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        strict.fault_injector().panic_on_shard_query(0, 1);
        assert_eq!(
            strict.serve_streaming(&pref).unwrap_err(),
            SkylineError::ShardUnavailable { shard: 0 }
        );
    }

    #[test]
    fn an_expired_sharded_stream_resumes_under_a_fresh_deadline() {
        let (data, template) = experiment(400, 79);
        let build = || {
            ShardedService::build(
                &data,
                template.clone(),
                EngineConfig::AdaptiveSfs,
                ShardedConfig {
                    shards: 2,
                    workers: 2,
                    ..ShardedConfig::default()
                },
            )
            .unwrap()
        };
        let service = build();
        let mut generator = QueryGenerator::new(81);
        let pref = generator.random_preference(data.schema(), &template, 2, None);

        let token = skyline_core::CancelToken::new();
        let mut stream = service
            .serve_streaming_deadline(&pref, Deadline::none().with_cancel(token.clone()))
            .unwrap();
        let first = stream.next_row().unwrap().unwrap();
        token.cancel();
        assert_eq!(
            stream.next_row().unwrap_err(),
            SkylineError::DeadlineExceeded
        );
        // Delivered rows stay valid; a fresh budget resumes every shard where it stopped.
        stream.set_deadline(Deadline::none());
        let mut rows = vec![first];
        rows.extend(stream.collect_rows().unwrap());
        rows.sort_unstable();
        assert_eq!(rows, build().serve(&pref).unwrap().outcome.skyline);
    }

    #[test]
    fn a_sharded_stream_pins_its_epoch_vector_across_mutations() {
        let (data, template) = experiment(300, 83);
        let build = || {
            ShardedService::build(
                &data,
                template.clone(),
                EngineConfig::AdaptiveSfs,
                ShardedConfig {
                    shards: 3,
                    workers: 2,
                    ..ShardedConfig::default()
                },
            )
            .unwrap()
        };
        let service = build();
        let mut generator = QueryGenerator::new(83);
        let pref = generator.random_preference(data.schema(), &template, 2, None);
        let expected = build().serve(&pref).unwrap().outcome.skyline.clone();

        let mut stream = service.serve_streaming(&pref).unwrap();
        let first = stream.next_row().unwrap();
        // A dominating row lands mid-stream; the stream keeps serving its snapshot.
        let id = service.insert_row(&[0.0, 0.0], &[0, 0]).unwrap();
        assert!(service.epochs()[id.shard] > DatasetEpoch::INITIAL);

        let mut rows: Vec<GlobalRowId> = first.into_iter().collect();
        rows.extend(stream.collect_rows().unwrap());
        rows.sort_unstable();
        assert_eq!(rows, expected, "stream must serve its pinned snapshot");
    }

    /// A unique, pre-cleaned scratch directory for a snapshot test.
    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "skyline-sharded-snap-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn snapshot_bootstrap_round_trips_and_counts_loads() {
        let (data, template) = experiment(500, 91);
        let config = || ShardedConfig {
            shards: 3,
            workers: 2,
            ..ShardedConfig::default()
        };
        let built = ShardedService::build(
            &data,
            template.clone(),
            EngineConfig::Hybrid { top_k: 8 },
            config(),
        )
        .unwrap();
        let mut generator = QueryGenerator::new(97);
        let prefs = generator.random_preferences(data.schema(), &template, 2, 8, None);

        let dir = scratch_dir("round-trip");
        // An empty directory is a clean error, never a panic or a half-built service.
        assert!(ShardedService::from_snapshots(&dir, config()).is_err());
        let paths = built.write_snapshots(&dir).unwrap();
        assert_eq!(paths.len(), 3);
        let loaded = ShardedService::from_snapshots(&dir, config()).unwrap();

        assert_eq!(loaded.epochs(), built.epochs());
        assert_eq!(loaded.live_rows(), built.live_rows());
        for pref in &prefs {
            let a = built.serve(pref).unwrap();
            let b = loaded.serve(pref).unwrap();
            assert_eq!(sharded_values(&built, &a), sharded_values(&loaded, &b));
            assert_eq!(a.outcome.methods, b.outcome.methods);
        }
        let stats = loaded.stats();
        assert_eq!(stats.snapshot_loads, 3, "one load per shard");
        assert_eq!(built.stats().snapshot_loads, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_rebuilds_write_through_to_the_snapshot_dir() {
        let (data, template) = experiment(300, 101);
        let dir = scratch_dir("write-through");
        let config = || ShardedConfig {
            shards: 2,
            workers: 2,
            snapshot_dir: Some(dir.clone()),
            ..ShardedConfig::default()
        };
        let service =
            ShardedService::build(&data, template.clone(), EngineConfig::AdaptiveSfs, config())
                .unwrap();
        let id = service.insert_row(&[0.25, 0.25], &[1, 1]).unwrap();
        service.delete_row(id).unwrap();
        assert_eq!(service.force_rebuild_all().unwrap(), 2);
        // Every installed swap left its shard's snapshot behind; a cold start from them
        // carries the mutations (epochs, live rows, answers) without preprocessing.
        let loaded = ShardedService::from_snapshots(&dir, config()).unwrap();
        assert_eq!(loaded.epochs(), service.epochs());
        assert_eq!(loaded.live_rows(), service.live_rows());
        let mut generator = QueryGenerator::new(103);
        let pref = generator.random_preference(data.schema(), &template, 2, None);
        assert_eq!(
            sharded_values(&service, &service.serve(&pref).unwrap()),
            sharded_values(&loaded, &loaded.serve(&pref).unwrap()),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pool_swap_hook_persists_snapshots_in_the_background() {
        let (data, template) = experiment(240, 107);
        let dir = scratch_dir("swap-hook");
        let service = ShardedService::build(
            &data,
            template.clone(),
            EngineConfig::AdaptiveSfs,
            ShardedConfig {
                shards: 2,
                workers: 2,
                maintenance: Some(MaintenancePolicy {
                    dead_row_ratio: 1.0,
                    max_mutations_since_rebuild: 1,
                    poll_interval: Duration::from_millis(5),
                }),
                snapshot_dir: Some(dir.clone()),
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        // One mutation crosses the eager policy on the owning shard; the pool's swap hook
        // must write that shard's snapshot on a build thread without any explicit call.
        let id = service.insert_row(&[0.5, 0.5], &[2, 2]).unwrap();
        let path = shard_snapshot_path(&dir, id.shard);
        let deadline = Instant::now() + Duration::from_secs(10);
        while !path.exists() {
            assert!(Instant::now() < deadline, "swap hook never wrote {path:?}");
            std::thread::sleep(Duration::from_millis(2));
        }
        // The hook's file is a complete, loadable engine snapshot of the swapped shard.
        let engine = SkylineEngine::from_snapshot_file(&path).unwrap();
        assert_eq!(engine.template(), service.template());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn laggard_timeout_degrades_the_stalled_shard_under_a_tolerant_policy() {
        let (data, template) = experiment(300, 109);
        let mut generator = QueryGenerator::new(113);
        let pref = generator.random_preference(data.schema(), &template, 2, None);
        let build = |laggard_timeout, degrade| {
            ShardedService::build(
                &data,
                template.clone(),
                EngineConfig::AdaptiveSfs,
                ShardedConfig {
                    shards: 2,
                    workers: 2,
                    laggard_timeout,
                    degrade,
                    ..ShardedConfig::default()
                },
            )
            .unwrap()
        };
        // A generous staleness bound never triggers: complete answer, nothing degraded.
        let relaxed = build(
            Some(Duration::from_secs(600)),
            DegradePolicy::Tolerate { max_degraded: 2 },
        );
        let stream = relaxed.serve_streaming(&pref).unwrap();
        let rows = stream.collect_rows().unwrap();
        let batch = build(None, DegradePolicy::FailClosed).serve(&pref).unwrap();
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, batch.outcome.skyline);

        // A zero staleness bound times every pull out: under a tolerant policy each shard
        // is cut loose through the degraded path and the stream still completes cleanly.
        let strict = build(
            Some(Duration::ZERO),
            DegradePolicy::Tolerate { max_degraded: 2 },
        );
        let stream = strict.serve_streaming(&pref).unwrap();
        let rows = stream.collect_rows().unwrap();
        assert!(rows.is_empty(), "every shard timed out before emitting");
        assert_eq!(strict.quarantined_shards(), Vec::<usize>::new());
        let stats = strict.stats();
        assert_eq!(stats.degraded, 1, "the degraded answer is counted");
        // Degraded answers are never cached.
        assert!(!strict.serve(&pref).unwrap().cache_hit);

        // Fail-closed: the first laggard cut fails the request, naming the shard.
        let closed = build(Some(Duration::ZERO), DegradePolicy::FailClosed);
        let result = closed.serve_streaming(&pref).unwrap().collect_rows();
        assert!(matches!(result, Err(SkylineError::ShardUnavailable { .. })));
    }
}
