//! Sharded scatter-gather serving: N dataset shards, each its own generational
//! [`SharedEngine`], answered as one logical service.
//!
//! The paper's algorithms are single-node by construction, but the serving layer does not
//! have to be: the skyline union property — `SKY(D₁ ∪ … ∪ Dₘ) ⊆ SKY(D₁) ∪ … ∪ SKY(Dₘ)`,
//! valid under any strict partial order because dominance is transitive — means a query can
//! **scatter** to per-shard engines (each running the paper's IPO-tree/Adaptive-SFS
//! machinery over its slice of the data) and **gather** by a cross-shard dominance merge of
//! the per-shard skylines ([`skyline_core::merge_skylines`]' operator, here via
//! [`skyline_core::SkylineMerger`]). Per-shard skylines are tiny compared to their shards,
//! so the merge is cheap and the scatter parallelizes the expensive part.
//!
//! The pieces:
//!
//! * [`ShardPartition`] — how rows map to shards: hash on a nominal dimension or range on a
//!   numeric one. Mutations route to their owning shard and touch only that engine's lock.
//! * [`ShardedService`] — the facade: scatter-gather queries with an epoch-**vector**-tagged
//!   result cache (the tag is every shard's [`DatasetEpoch`], so a mutation on one shard
//!   invalidates exactly what it must), per-key single-flight, and remap-aware salvage: when
//!   only generation swaps moved a shard's epoch, the cached global skyline is translated
//!   through that shard's remap chain instead of dropped.
//! * a shared [`BuildPool`]: one small set of build threads maintains every shard under a
//!   global in-flight cap, instead of one maintenance thread per shard.

use crate::cache::{translate_through_chain, ResultCache, Salvage, TranslateFailure};
use crate::executor;
use crate::flight::{FlightRole, SingleFlight};
use crate::stats::{ServiceMetrics, StatsSnapshot};
use skyline::{
    BuildHandle, BuildPool, BuildPoolConfig, EngineConfig, EngineScratch, MaintenancePolicy,
    MethodUsed, SharedEngine, SkylineEngine,
};
use skyline_core::{
    CanonicalPreference, CompiledOrder, Dataset, DatasetEpoch, PointId, Preference, Result, Schema,
    SkylineError, SkylineMerger, Template, ValueId,
};
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How rows are assigned to shards. The assignment is a pure function of a row's values, so
/// routing a mutation needs no directory — and both sides (initial partitioning and later
/// inserts) can never disagree.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardPartition {
    /// Hash of the value id of nominal dimension `dim` (a *nominal index*). Rows sharing a
    /// nominal value land on the same shard — frequency skew and all — which keeps
    /// per-shard nominal domains dense.
    HashNominal {
        /// Nominal index of the dimension hashed.
        dim: usize,
    },
    /// Range partition on numeric dimension `dim` (a *numeric index*): `bounds` are the
    /// ascending split points, `shards - 1` of them; shard `i` owns values in
    /// `[bounds[i-1], bounds[i])` (unbounded at both ends). `NaN` routes to shard 0.
    RangeNumeric {
        /// Numeric index of the dimension split.
        dim: usize,
        /// Ascending split points (`shards - 1` entries).
        bounds: Vec<f64>,
    },
}

impl ShardPartition {
    /// The shard owning a row with the given values.
    pub fn shard_of(&self, shards: usize, numeric: &[f64], nominal: &[ValueId]) -> usize {
        match self {
            Self::HashNominal { dim } => {
                // splitmix64 finalizer: adjacent value ids spread over all shards.
                let mut h = nominal[*dim] as u64;
                h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
                (h ^ (h >> 31)) as usize % shards
            }
            Self::RangeNumeric { dim, bounds } => {
                let x = numeric[*dim];
                bounds.partition_point(|&b| x >= b).min(shards - 1)
            }
        }
    }

    /// Checks the partition against a schema and shard count.
    fn validate(&self, schema: &Schema, shards: usize) -> Result<()> {
        match self {
            Self::HashNominal { dim } => {
                if *dim >= schema.nominal_count() {
                    return Err(SkylineError::InvalidArgument(format!(
                        "hash partition on nominal dimension {dim} but the schema has {}",
                        schema.nominal_count()
                    )));
                }
            }
            Self::RangeNumeric { dim, bounds } => {
                if *dim >= schema.numeric_count() {
                    return Err(SkylineError::InvalidArgument(format!(
                        "range partition on numeric dimension {dim} but the schema has {}",
                        schema.numeric_count()
                    )));
                }
                if bounds.len() != shards - 1 {
                    return Err(SkylineError::InvalidArgument(format!(
                        "range partition over {shards} shards needs {} bounds, got {}",
                        shards - 1,
                        bounds.len()
                    )));
                }
                if bounds.iter().any(|b| b.is_nan()) || bounds.windows(2).any(|w| w[0] > w[1]) {
                    return Err(SkylineError::InvalidArgument(
                        "range partition bounds must be ascending (and not NaN)".into(),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A row's global identity: which shard owns it and its row id *inside that shard's engine*.
///
/// Shard-local ids are renumbered by that shard's generation swaps (compaction), exactly
/// like a single engine's ids — translate through the shard's remap chain across rebuilds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalRowId {
    /// Index of the owning shard.
    pub shard: usize,
    /// Row id inside that shard's engine.
    pub row: PointId,
}

/// One merged scatter-gather answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedOutcome {
    /// The global skyline: per-shard skyline survivors of the cross-shard dominance merge,
    /// grouped by shard in shard order (each shard's survivors keep their engine's order).
    pub skyline: Vec<GlobalRowId>,
    /// Which algorithm answered on each shard (shards age independently: one may serve from
    /// its IPO tree while a recently mutated neighbor is on the Adaptive-SFS fallback).
    pub methods: Vec<MethodUsed>,
}

/// One answered sharded query, with serving provenance.
#[derive(Debug, Clone)]
pub struct ShardedServed {
    /// The merged answer (shared, not copied, between users asking equivalent preferences).
    pub outcome: Arc<ShardedOutcome>,
    /// Whether the answer came from the result cache.
    pub cache_hit: bool,
    /// The per-shard epoch vector the answer is valid for.
    pub epochs: Arc<[DatasetEpoch]>,
    /// Wall-clock time spent serving this query.
    pub latency: Duration,
}

/// Tuning knobs for a [`ShardedService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedConfig {
    /// Number of dataset shards (clamped to at least 1).
    pub shards: usize,
    /// How rows map to shards.
    pub partition: ShardPartition,
    /// Maximum number of cached merged results (0 disables the cache).
    pub cache_capacity: usize,
    /// Number of independently locked cache shards (unrelated to dataset shards).
    pub cache_shards: usize,
    /// Worker threads for the query scatter and [`ShardedService::serve_batch`]
    /// (0 = one per available core).
    pub workers: usize,
    /// When set, a shared [`BuildPool`] maintains every shard under this policy.
    pub maintenance: Option<MaintenancePolicy>,
    /// Build threads in the shared pool (only with `maintenance`).
    pub build_threads: usize,
    /// Global cap on concurrently running shard rebuilds (only with `maintenance`).
    pub max_in_flight_builds: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            partition: ShardPartition::HashNominal { dim: 0 },
            cache_capacity: 4096,
            cache_shards: 16,
            workers: 0,
            maintenance: None,
            build_threads: 2,
            max_in_flight_builds: 2,
        }
    }
}

type EpochVector = Arc<[DatasetEpoch]>;

/// A concurrent scatter-gather skyline service over N independently maintained dataset
/// shards (see the module docs).
#[derive(Debug)]
pub struct ShardedService {
    shards: Vec<SharedEngine>,
    partition: ShardPartition,
    schema: Schema,
    template: Template,
    cache: ResultCache<EpochVector, ShardedOutcome>,
    flight: SingleFlight<EpochVector>,
    metrics: ServiceMetrics,
    handles: Vec<BuildHandle>,
    /// Dropped after `handles`: shuts the build threads down.
    pool: Option<BuildPool>,
    workers: usize,
}

impl ShardedService {
    /// Partitions `data` under `config.partition`, builds one engine per shard with the
    /// given `engine` configuration and shared `template`, and wires the serving machinery.
    ///
    /// Row `p` of `data` becomes row `i` of its shard, where `i` counts the rows of `data`
    /// routed to that shard before `p` — the deterministic order
    /// [`ShardedService::partition_rows`] reports.
    pub fn build(
        data: &Dataset,
        template: Template,
        engine: EngineConfig,
        config: ShardedConfig,
    ) -> Result<Self> {
        let shard_count = config.shards.max(1);
        let schema = data.schema().clone();
        config.partition.validate(&schema, shard_count)?;

        let mut parts: Vec<Dataset> = (0..shard_count)
            .map(|_| Dataset::empty(schema.clone()))
            .collect();
        let mut numeric = vec![0.0f64; schema.numeric_count()];
        let mut nominal = vec![ValueId::default(); schema.nominal_count()];
        for p in 0..data.len() as PointId {
            for (j, v) in numeric.iter_mut().enumerate() {
                *v = data.numeric(p, j);
            }
            for (j, v) in nominal.iter_mut().enumerate() {
                *v = data.nominal(p, j);
            }
            let s = config.partition.shard_of(shard_count, &numeric, &nominal);
            parts[s].push_row_ids(&numeric, &nominal)?;
        }

        let shards: Vec<SharedEngine> = parts
            .into_iter()
            .map(|part| {
                SkylineEngine::build(Arc::new(part), template.clone(), engine)
                    .map(SharedEngine::new)
            })
            .collect::<Result<_>>()?;

        let (pool, handles) = match &config.maintenance {
            Some(policy) => {
                let pool = BuildPool::new(BuildPoolConfig {
                    threads: config.build_threads,
                    max_in_flight: config.max_in_flight_builds,
                    poll_interval: policy.poll_interval,
                });
                let handles = shards
                    .iter()
                    .map(|s| pool.register(s.clone(), policy.clone()))
                    .collect();
                (Some(pool), handles)
            }
            None => (None, Vec::new()),
        };

        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            config.workers
        };
        Ok(Self {
            shards,
            partition: config.partition,
            schema,
            template,
            cache: ResultCache::new(config.cache_capacity, config.cache_shards),
            flight: SingleFlight::new(),
            metrics: ServiceMetrics::new(),
            handles,
            pool,
            workers,
        })
    }

    /// The deterministic initial placement of `data`'s rows: entry `p` is the
    /// [`GlobalRowId`] row `p` received from [`ShardedService::build`] with the same
    /// partition. Useful for callers that track external ids across the partitioning.
    pub fn partition_rows(
        partition: &ShardPartition,
        shards: usize,
        data: &Dataset,
    ) -> Vec<GlobalRowId> {
        let shards = shards.max(1);
        let schema = data.schema();
        let mut next_row = vec![0 as PointId; shards];
        let mut numeric = vec![0.0f64; schema.numeric_count()];
        let mut nominal = vec![ValueId::default(); schema.nominal_count()];
        (0..data.len() as PointId)
            .map(|p| {
                for (j, v) in numeric.iter_mut().enumerate() {
                    *v = data.numeric(p, j);
                }
                for (j, v) in nominal.iter_mut().enumerate() {
                    *v = data.nominal(p, j);
                }
                let shard = partition.shard_of(shards, &numeric, &nominal);
                let row = next_row[shard];
                next_row[shard] += 1;
                GlobalRowId { shard, row }
            })
            .collect()
    }

    /// Number of dataset shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The engine serving shard `s` (read-lock it to inspect; do not hold the guard across
    /// service calls).
    pub fn shard(&self, s: usize) -> &SharedEngine {
        &self.shards[s]
    }

    /// The row-to-shard mapping.
    pub fn partition(&self) -> &ShardPartition {
        &self.partition
    }

    /// The shared schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The shared template every shard was built under.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// Worker threads the scatter (and batches) spread over.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Current number of cached merged results.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Every shard's current mutation epoch, in shard order.
    pub fn epochs(&self) -> Vec<DatasetEpoch> {
        self.shards.iter().map(|s| s.read().epoch()).collect()
    }

    /// Total live rows across all shards.
    pub fn live_rows(&self) -> usize {
        self.shards.iter().map(|s| s.read().live_rows()).sum()
    }

    /// Counters accumulated since the service was built; `rebuilds` and `reclaimed_rows`
    /// aggregate over every shard's maintenance lifecycle.
    pub fn stats(&self) -> StatsSnapshot {
        let mut snapshot = self.metrics.snapshot();
        snapshot.stale_evictions = self.cache.stale_evictions();
        snapshot.remap_misses = self.cache.remap_misses();
        for shard in &self.shards {
            let maintenance = shard.read().maintenance_stats();
            snapshot.rebuilds += maintenance.rebuilds;
            snapshot.reclaimed_rows += maintenance.reclaimed_rows;
        }
        snapshot
    }

    /// The shared build pool, when [`ShardedConfig::maintenance`] enabled one.
    pub fn build_pool(&self) -> Option<&BuildPool> {
        self.pool.as_ref()
    }

    /// Rebuilds shard `s`'s generation right now and waits for it; returns whether a new
    /// generation was installed.
    pub fn force_rebuild_shard(&self, s: usize) -> Result<bool> {
        let shard = self.shards.get(s).ok_or_else(|| {
            SkylineError::InvalidArgument(format!(
                "shard {s} does not exist ({} shards)",
                self.shards.len()
            ))
        })?;
        if shard.read().rebuild_in_flight() {
            return Ok(false);
        }
        shard.rebuild_now().map(|_| true)
    }

    /// Rebuilds every shard's generation (sequentially); returns how many installed a new
    /// generation.
    pub fn force_rebuild_all(&self) -> Result<usize> {
        let mut installed = 0;
        for s in 0..self.shards.len() {
            if self.force_rebuild_shard(s)? {
                installed += 1;
            }
        }
        Ok(installed)
    }

    /// Inserts a row, routed to its owning shard (only that shard's lock is taken), and
    /// returns its global id.
    pub fn insert_row(&self, numeric: &[f64], nominal: &[ValueId]) -> Result<GlobalRowId> {
        if numeric.len() != self.schema.numeric_count()
            || nominal.len() != self.schema.nominal_count()
        {
            self.metrics.record_error();
            return Err(SkylineError::RowShapeMismatch {
                expected: self.schema.arity(),
                got: numeric.len() + nominal.len(),
            });
        }
        let s = self.partition.shard_of(self.shards.len(), numeric, nominal);
        let mut engine = self.shards[s].write();
        engine
            .insert_row(numeric, nominal)
            .inspect_err(|_| self.metrics.record_error())?;
        let row = (engine.dataset().len() - 1) as PointId;
        drop(engine);
        self.metrics.record_mutation();
        if let Some(handle) = self.handles.get(s) {
            handle.notify();
        }
        Ok(GlobalRowId { shard: s, row })
    }

    /// Logically deletes a row on its owning shard. Returns whether the row was live
    /// (deleting an already-deleted row is a no-op that moves no epoch).
    pub fn delete_row(&self, id: GlobalRowId) -> Result<bool> {
        let shard = self.shards.get(id.shard).ok_or_else(|| {
            self.metrics.record_error();
            SkylineError::InvalidArgument(format!(
                "shard {} does not exist ({} shards)",
                id.shard,
                self.shards.len()
            ))
        })?;
        let mut engine = shard.write();
        let before = engine.epoch();
        let epoch = engine
            .delete_row(id.row)
            .inspect_err(|_| self.metrics.record_error())?;
        drop(engine);
        let was_live = epoch != before;
        if was_live {
            self.metrics.record_mutation();
            if let Some(handle) = self.handles.get(id.shard) {
                handle.notify();
            }
        }
        Ok(was_live)
    }

    /// Answers one query by scatter-gather, consulting the merged-result cache first.
    ///
    /// A preference any shard's engine would reject (refinement violation, unmaterialized
    /// value on a frozen tree) is rejected for the whole service, so sharding never changes
    /// which inputs are servable — a shard count of 1 behaves exactly like the engine alone.
    pub fn serve(&self, pref: &Preference) -> Result<ShardedServed> {
        let started = Instant::now();
        // Read guards for every shard, acquired in fixed index order and held across the
        // epoch snapshot, cache lookup and (on a miss) the scatter: the epoch vector, the
        // merged answer and the cache entry are mutually consistent, and writers (which take
        // exactly one shard's lock) cannot interleave mid-serve.
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let epochs: EpochVector = guards.iter().map(|g| g.epoch()).collect::<Vec<_>>().into();
        let key = CanonicalPreference::new(&self.schema, pref)
            .inspect_err(|_| self.metrics.record_error())?;
        for guard in &guards {
            guard
                .check_servable(pref)
                .inspect_err(|_| self.metrics.record_error())?;
        }
        if let Some((outcome, translated)) = self.lookup(&key, &epochs, &guards) {
            let latency = started.elapsed();
            self.metrics.record(true, latency);
            if translated {
                self.metrics.record_remapped_hit();
            }
            return Ok(ShardedServed {
                outcome,
                cache_hit: true,
                epochs,
                latency,
            });
        }
        match self.flight.join(&key, epochs.clone()) {
            FlightRole::Leader(flight_guard) => {
                let served = self.scatter_gather(&guards, pref, key, epochs, started);
                drop(flight_guard); // wakes followers (also on the error path)
                served
            }
            FlightRole::Followed => {
                self.metrics.record_coalesced();
                if let Some(outcome) = self.cache.get(&key, epochs.clone()) {
                    let latency = started.elapsed();
                    self.metrics.record(true, latency);
                    return Ok(ShardedServed {
                        outcome,
                        cache_hit: true,
                        epochs,
                        latency,
                    });
                }
                self.scatter_gather(&guards, pref, key, epochs, started)
            }
        }
    }

    /// Answers a batch of queries on the worker pool, preserving input order.
    pub fn serve_batch(&self, prefs: &[Preference]) -> Vec<Result<ShardedServed>> {
        executor::run_indexed_scratch(prefs, self.workers, || (), |_, pref, ()| self.serve(pref))
    }

    /// Remap-aware cache lookup: entries whose epoch vector differs only by generation swaps
    /// are translated per shard through that shard's remap chain (see
    /// [`ResultCache::get_or_translate`] for the single-engine analogue).
    fn lookup(
        &self,
        key: &CanonicalPreference,
        epochs: &EpochVector,
        guards: &[parking_lot_free::Guard<'_>],
    ) -> Option<(Arc<ShardedOutcome>, bool)> {
        self.cache.get_or_salvage(key, epochs, |old, value| {
            match translate_vector(old, epochs, value, guards) {
                Ok(translated) => Salvage::Translated(translated),
                Err(TranslateFailure::Stale) => Salvage::Stale,
                Err(TranslateFailure::ChainTruncated) => Salvage::RemapMiss,
            }
        })
    }

    /// The cache-miss path: scatter the query to every shard on the worker pool (under the
    /// already-held read guards), gather by cross-shard dominance merge, cache at the epoch
    /// vector.
    fn scatter_gather(
        &self,
        guards: &[parking_lot_free::Guard<'_>],
        pref: &Preference,
        key: CanonicalPreference,
        epochs: EpochVector,
        started: Instant,
    ) -> Result<ShardedServed> {
        let shard_ids: Vec<usize> = (0..guards.len()).collect();
        let scattered = executor::run_indexed_scratch(
            &shard_ids,
            self.workers.min(guards.len()),
            EngineScratch::default,
            |_, &s, scratch| guards[s].query_at(pref, epochs[s], scratch),
        );
        let mut outcomes = Vec::with_capacity(scattered.len());
        for result in scattered {
            outcomes.push(result.inspect_err(|_| self.metrics.record_error())?);
        }

        // Gather: cross-shard dominance merge under the query's effective orders.
        let orders: Vec<CompiledOrder> = self
            .template
            .effective_orders(&self.schema, pref)?
            .iter()
            .map(CompiledOrder::compile)
            .collect();
        let mut merger = SkylineMerger::new(orders, self.schema.numeric_count());
        let mut numeric = vec![0.0f64; self.schema.numeric_count()];
        let mut nominal = vec![ValueId::default(); self.schema.nominal_count()];
        for (s, outcome) in outcomes.iter().enumerate() {
            let data = guards[s].dataset();
            for &p in &outcome.skyline {
                for (j, v) in numeric.iter_mut().enumerate() {
                    *v = data.numeric(p, j);
                }
                for (j, v) in nominal.iter_mut().enumerate() {
                    *v = data.nominal(p, j);
                }
                merger.push(s, p, &numeric, &nominal)?;
            }
        }
        let value = Arc::new(ShardedOutcome {
            skyline: merger
                .merge()
                .into_iter()
                .map(|(shard, row)| GlobalRowId { shard, row })
                .collect(),
            methods: outcomes.iter().map(|o| o.method).collect(),
        });
        self.cache.insert(key, epochs.clone(), value.clone());
        let latency = started.elapsed();
        self.metrics.record(false, latency);
        Ok(ShardedServed {
            outcome: value,
            cache_hit: false,
            epochs,
            latency,
        })
    }
}

/// Translates a cached outcome from epoch vector `old` to `new`, shard by shard, through
/// each changed shard's remap chain. All-or-nothing: every changed shard must bridge
/// entirely via swaps. A shard with real mutations in between makes the entry
/// [`TranslateFailure::Stale`]; when swaps alone separate the vectors but some shard's
/// translations already fell off its bounded chain, the entry is an unrecoverable
/// [`TranslateFailure::ChainTruncated`] (counted as a remap miss).
fn translate_vector(
    old: &EpochVector,
    new: &EpochVector,
    value: &ShardedOutcome,
    guards: &[parking_lot_free::Guard<'_>],
) -> std::result::Result<ShardedOutcome, TranslateFailure> {
    if old.len() != new.len() {
        return Err(TranslateFailure::Stale);
    }
    let mut skyline = value.skyline.clone();
    let mut truncated = false;
    for s in 0..new.len() {
        if old[s] == new[s] {
            continue;
        }
        let ids: Vec<PointId> = skyline
            .iter()
            .filter(|g| g.shard == s)
            .map(|g| g.row)
            .collect();
        match translate_through_chain(&ids, old[s], new[s], guards[s].remap_chain()) {
            Ok(translated) => {
                let mut next = translated.into_iter();
                for g in skyline.iter_mut().filter(|g| g.shard == s) {
                    g.row = next.next().expect("one translated id per input id");
                }
            }
            // Stale dominates: real mutations anywhere make the whole entry outdated.
            Err(TranslateFailure::Stale) => return Err(TranslateFailure::Stale),
            Err(TranslateFailure::ChainTruncated) => truncated = true,
        }
    }
    if truncated {
        return Err(TranslateFailure::ChainTruncated);
    }
    Ok(ShardedOutcome {
        skyline,
        methods: value.methods.clone(),
    })
}

/// Local alias spelling out the guard type the scatter borrows (std's rwlock read guard over
/// the engine).
mod parking_lot_free {
    pub(super) type Guard<'a> = std::sync::RwLockReadGuard<'a, skyline::SkylineEngine>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::{Dimension, NominalDomain};
    use skyline_datagen::{Distribution, ExperimentConfig, QueryGenerator};

    fn experiment(n: usize, seed: u64) -> (Arc<Dataset>, Template) {
        let config = ExperimentConfig {
            n,
            numeric_dims: 2,
            nominal_dims: 2,
            cardinality: 8,
            theta: 1.0,
            pref_order: 2,
            distribution: Distribution::AntiCorrelated,
            seed,
        };
        let data = Arc::new(config.generate_dataset());
        let template = config.template(&data);
        (data, template)
    }

    fn value_key(data: &Dataset, p: PointId) -> (Vec<u64>, Vec<ValueId>) {
        let schema = data.schema();
        (
            (0..schema.numeric_count())
                .map(|j| data.numeric(p, j).to_bits())
                .collect(),
            (0..schema.nominal_count())
                .map(|j| data.nominal(p, j))
                .collect(),
        )
    }

    /// The sharded skyline as a sorted multiset of row values (global ids are incomparable
    /// across different shard counts; values are the invariant).
    fn sharded_values(
        service: &ShardedService,
        served: &ShardedServed,
    ) -> Vec<(Vec<u64>, Vec<ValueId>)> {
        let mut values: Vec<_> = served
            .outcome
            .skyline
            .iter()
            .map(|g| value_key(service.shard(g.shard).read().dataset(), g.row))
            .collect();
        values.sort();
        values
    }

    #[test]
    fn sharded_matches_unsharded_on_a_static_dataset() {
        let (data, template) = experiment(600, 11);
        let unsharded =
            SkylineEngine::build(data.clone(), template.clone(), EngineConfig::AdaptiveSfs)
                .unwrap();
        let mut generator = QueryGenerator::new(7);
        let prefs = generator.random_preferences(data.schema(), &template, 2, 12, None);
        for shards in [1, 2, 3, 5] {
            let service = ShardedService::build(
                &data,
                template.clone(),
                EngineConfig::AdaptiveSfs,
                ShardedConfig {
                    shards,
                    workers: 2,
                    ..ShardedConfig::default()
                },
            )
            .unwrap();
            assert_eq!(service.shard_count(), shards);
            assert_eq!(service.live_rows(), data.len());
            for pref in &prefs {
                let served = service.serve(pref).unwrap();
                let mut expected: Vec<_> = unsharded
                    .query(pref)
                    .unwrap()
                    .skyline
                    .iter()
                    .map(|&p| value_key(&data, p))
                    .collect();
                expected.sort();
                assert_eq!(
                    sharded_values(&service, &served),
                    expected,
                    "shards={shards}"
                );
            }
        }
    }

    #[test]
    fn epoch_vector_cache_hits_and_per_shard_invalidation() {
        let (data, template) = experiment(300, 3);
        let service = ShardedService::build(
            &data,
            template.clone(),
            EngineConfig::AdaptiveSfs,
            ShardedConfig {
                shards: 3,
                workers: 1,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        let mut generator = QueryGenerator::new(5);
        let pref = generator.random_preference(data.schema(), &template, 2, None);

        let first = service.serve(&pref).unwrap();
        assert!(!first.cache_hit);
        let second = service.serve(&pref).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.outcome.skyline, second.outcome.skyline);
        assert_eq!(first.outcome.methods.len(), 3);

        // A mutation on one shard bumps only that shard's epoch — and still invalidates.
        let id = service.insert_row(&[0.01, 0.01], &[0, 0]).unwrap();
        let third = service.serve(&pref).unwrap();
        assert!(!third.cache_hit, "epoch vector moved with the shard");
        assert!(service.epochs()[id.shard] > DatasetEpoch::INITIAL);
        assert_eq!(service.stats().mutations, 1);

        // Deleting it again is routed to the same shard and epoch-bumps once more.
        assert!(service.delete_row(id).unwrap());
        assert!(!service.delete_row(id).unwrap(), "double delete is a no-op");
    }

    #[test]
    fn shard_rebuilds_translate_the_merged_cache_entry() {
        let (data, template) = experiment(400, 17);
        let service = ShardedService::build(
            &data,
            template.clone(),
            EngineConfig::AdaptiveSfs,
            ShardedConfig {
                shards: 2,
                workers: 1,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        let mut generator = QueryGenerator::new(9);
        let pref = generator.random_preference(data.schema(), &template, 2, None);

        // Tombstone one row per shard so both rebuilds renumber, then cache an answer.
        for shard in 0..2 {
            // Row ids 0..n exist on every shard (rows were distributed round-robin-ish);
            // pick a row that is live by construction.
            let target = GlobalRowId { shard, row: 0 };
            service.delete_row(target).unwrap();
        }
        let before = service.serve(&pref).unwrap();
        assert!(!before.cache_hit);

        // Back-to-back rebuilds on both shards: two swaps each, no mutations between.
        assert_eq!(service.force_rebuild_all().unwrap(), 2);
        assert_eq!(service.force_rebuild_all().unwrap(), 2);

        let after = service.serve(&pref).unwrap();
        assert!(
            after.cache_hit,
            "entry translated through both shards' chains"
        );
        let stats = service.stats();
        assert_eq!(stats.remapped_hits, 1);
        assert_eq!(stats.remap_misses, 0);
        assert_eq!(stats.rebuilds, 4);
        // The translated answer names the same rows: values match a fresh computation.
        let fresh = {
            let service2 = ShardedService::build(
                &data,
                template.clone(),
                EngineConfig::AdaptiveSfs,
                ShardedConfig {
                    shards: 2,
                    workers: 1,
                    ..ShardedConfig::default()
                },
            )
            .unwrap();
            for shard in 0..2 {
                service2.delete_row(GlobalRowId { shard, row: 0 }).unwrap();
            }
            let served = service2.serve(&pref).unwrap();
            sharded_values(&service2, &served)
        };
        assert_eq!(sharded_values(&service, &after), fresh);
    }

    #[test]
    fn range_partition_routes_and_validates() {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal("g", NominalDomain::anonymous(4)),
        ])
        .unwrap();
        let partition = ShardPartition::RangeNumeric {
            dim: 0,
            bounds: vec![10.0, 20.0],
        };
        assert_eq!(partition.shard_of(3, &[5.0], &[0]), 0);
        assert_eq!(partition.shard_of(3, &[10.0], &[0]), 1);
        assert_eq!(partition.shard_of(3, &[19.9], &[0]), 1);
        assert_eq!(partition.shard_of(3, &[99.0], &[0]), 2);
        assert_eq!(partition.shard_of(3, &[f64::NAN], &[0]), 0);

        let mut data = Dataset::empty(schema.clone());
        for (x, g) in [(5.0, 0), (15.0, 1), (25.0, 2), (7.0, 3)] {
            data.push_row_ids(&[x], &[g as ValueId]).unwrap();
        }
        let template = Template::empty(&schema);
        let service = ShardedService::build(
            &data,
            template.clone(),
            EngineConfig::SfsD,
            ShardedConfig {
                shards: 3,
                partition,
                workers: 1,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        // Shard 0 owns the two x < 10 rows, shards 1 and 2 one row each.
        assert_eq!(service.shard(0).read().dataset().len(), 2);
        assert_eq!(service.shard(1).read().dataset().len(), 1);
        assert_eq!(service.shard(2).read().dataset().len(), 1);
        // Mutations route by value.
        let id = service.insert_row(&[12.0], &[0]).unwrap();
        assert_eq!(id.shard, 1);

        // Wrong bounds count is rejected up front.
        assert!(ShardedService::build(
            &data,
            template.clone(),
            EngineConfig::SfsD,
            ShardedConfig {
                shards: 3,
                partition: ShardPartition::RangeNumeric {
                    dim: 0,
                    bounds: vec![10.0],
                },
                ..ShardedConfig::default()
            },
        )
        .is_err());
        // So is an out-of-schema dimension.
        assert!(ShardedService::build(
            &data,
            template,
            EngineConfig::SfsD,
            ShardedConfig {
                shards: 2,
                partition: ShardPartition::HashNominal { dim: 5 },
                ..ShardedConfig::default()
            },
        )
        .is_err());
    }

    #[test]
    fn empty_shards_are_served_and_mutable() {
        // 2 rows over 4 shards: at least two shards start empty, and everything still works.
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal("g", NominalDomain::anonymous(8)),
        ])
        .unwrap();
        let mut data = Dataset::empty(schema.clone());
        data.push_row_ids(&[1.0], &[0]).unwrap();
        data.push_row_ids(&[2.0], &[1]).unwrap();
        let template = Template::empty(&schema);
        let service = ShardedService::build(
            &data,
            template,
            EngineConfig::AdaptiveSfs,
            ShardedConfig {
                shards: 4,
                workers: 2,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        // Favourite value 0: the (1.0, g=0) row dominates (2.0, g=1) on both dimensions.
        let pref = Preference::from_dims(vec![skyline_core::ImplicitPreference::new([0]).unwrap()]);
        let served = service.serve(&pref).unwrap();
        assert_eq!(
            served.outcome.skyline.len(),
            1,
            "x=1.0,g=0 dominates x=2.0,g=1"
        );
        // Inserting into a previously empty shard works and invalidates.
        let mut placed_empty = false;
        for v in 0..8u16 {
            let id = service.insert_row(&[0.5], &[v]).unwrap();
            placed_empty |= service.shard(id.shard).read().dataset().len() == 1;
        }
        assert!(placed_empty, "some insert landed on an empty shard");
        let after = service.serve(&pref).unwrap();
        assert!(!after.cache_hit);
        assert_eq!(after.outcome.skyline.len(), 1, "x=0.5 rows dominate");
    }

    #[test]
    fn shared_build_pool_maintains_all_shards() {
        let (data, template) = experiment(200, 23);
        let service = ShardedService::build(
            &data,
            template,
            EngineConfig::AdaptiveSfs,
            ShardedConfig {
                shards: 3,
                workers: 1,
                maintenance: Some(MaintenancePolicy {
                    dead_row_ratio: 0.01,
                    max_mutations_since_rebuild: u64::MAX,
                    poll_interval: Duration::from_millis(5),
                }),
                build_threads: 2,
                max_in_flight_builds: 1,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        assert!(service.build_pool().is_some());
        // Delete one live row per shard; the pool must compact every shard on its own.
        for shard in 0..service.shard_count() {
            assert!(service.delete_row(GlobalRowId { shard, row: 0 }).unwrap());
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while service.stats().rebuilds < 3 {
            assert!(Instant::now() < deadline, "pool never compacted all shards");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(service.stats().reclaimed_rows, 3);
        for s in 0..service.shard_count() {
            assert_eq!(service.shard(s).read().dead_rows(), 0);
        }
    }
}
