//! Shared progressive-result core: one leader publishes confirmed rows, any number of
//! concurrent taps replay them.
//!
//! A [`StreamCore`] is the coalescing point of the streaming serve path. The single-flight
//! leader pushes every confirmed skyline member into the core as it is produced (see
//! [`crate::SkylineService::serve_streaming`]); streaming followers that joined the same
//! `(key, epoch)` flight hold a clone of the `Arc<StreamCore>` and pull the **confirmed
//! prefix** with [`StreamCore::wait_next`] — rows already published return instantly, the
//! row after the frontier blocks until the leader publishes or finishes. Published rows are
//! never retracted (the engine's streaming contract), so a tap's replay is always a prefix
//! of the leader's final answer.
//!
//! The terminal state distinguishes the leader **finishing** from the leader **failing**:
//! a tap that sees [`NextRow::Failed`] still has a correct prefix and can fall back to
//! running the rest of the query itself (the service layer does exactly that when a
//! leader's deadline expires mid-stream).

use skyline_core::{Deadline, Result, SkylineError};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// How often a blocked tap re-polls a cancel token that has no time bound attached
/// (mirrors the single-flight follower poll).
const TAP_POLL: Duration = Duration::from_millis(10);

/// What [`StreamCore::wait_next`] produced for the tap's cursor position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NextRow<T> {
    /// The next confirmed row.
    Row(T),
    /// The leader finished successfully and every published row has been consumed.
    Finished,
    /// The leader's stream failed with this error after publishing the consumed prefix.
    /// The prefix is still correct — the consumer may recompute the remainder itself.
    Failed(SkylineError),
}

#[derive(Debug)]
struct CoreState<T> {
    rows: Vec<T>,
    /// `None` while the leader is still producing; `Some(Ok(()))` after a clean finish,
    /// `Some(Err(e))` after a failure.
    done: Option<Result<()>>,
}

/// A monotone, multi-consumer row log (see the module docs).
#[derive(Debug)]
pub struct StreamCore<T> {
    state: Mutex<CoreState<T>>,
    cv: Condvar,
}

impl<T> Default for StreamCore<T> {
    fn default() -> Self {
        Self {
            state: Mutex::new(CoreState {
                rows: Vec::new(),
                done: None,
            }),
            cv: Condvar::new(),
        }
    }
}

/// The publisher may die by panic mid-row with the state lock held; every row append and
/// flag set is a single atomic-in-effect update, so recover rather than poison every tap.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| {
        m.clear_poison();
        poisoned.into_inner()
    })
}

impl<T: Clone> StreamCore<T> {
    /// Creates an empty, unfinished core.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a confirmed row and wakes every waiting tap. Ignored after
    /// [`StreamCore::finish`] — a finished log is immutable.
    pub fn publish(&self, row: T) {
        let mut state = lock_recover(&self.state);
        if state.done.is_some() {
            return;
        }
        state.rows.push(row);
        self.cv.notify_all();
    }

    /// Seals the log with the leader's terminal result and wakes every tap. The first call
    /// wins; later calls are ignored.
    pub fn finish(&self, result: Result<()>) {
        let mut state = lock_recover(&self.state);
        if state.done.is_some() {
            return;
        }
        state.done = Some(result);
        self.cv.notify_all();
    }

    /// Number of rows published so far.
    pub fn len(&self) -> usize {
        lock_recover(&self.state).rows.len()
    }

    /// Whether no rows have been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the row at `idx`, blocking until the leader publishes it or seals the log.
    ///
    /// * `Ok(NextRow::Row(t))` — the row exists (instant for `idx < len`).
    /// * `Ok(NextRow::Finished)` — the leader finished cleanly and `idx` is past the end.
    /// * `Ok(NextRow::Failed(e))` — the leader failed after `idx` rows; the consumed prefix
    ///   is valid, the remainder must be recomputed.
    /// * `Err(e)` — **the caller's own** `deadline` expired (or its cancel token fired)
    ///   while waiting; the cursor position is unaffected, so the call can be retried.
    pub fn wait_next(&self, idx: usize, deadline: &Deadline) -> Result<NextRow<T>> {
        let mut state = lock_recover(&self.state);
        loop {
            if let Some(row) = state.rows.get(idx) {
                return Ok(NextRow::Row(row.clone()));
            }
            match &state.done {
                Some(Ok(())) => return Ok(NextRow::Finished),
                Some(Err(e)) => return Ok(NextRow::Failed(e.clone())),
                None => {}
            }
            if deadline.is_bounded() {
                deadline.check()?;
                let wait = deadline
                    .remaining()
                    .map_or(TAP_POLL, |rem| rem.min(TAP_POLL));
                state = self
                    .cv
                    .wait_timeout(state, wait)
                    .unwrap_or_else(|poisoned| {
                        self.state.clear_poison();
                        poisoned.into_inner()
                    })
                    .0;
            } else {
                state = self.cv.wait(state).unwrap_or_else(|poisoned| {
                    self.state.clear_poison();
                    poisoned.into_inner()
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::sync::Barrier;

    #[test]
    fn published_prefix_replays_instantly_and_in_order() {
        let core = StreamCore::new();
        core.publish(10u32);
        core.publish(20);
        core.publish(30);
        let d = Deadline::none();
        assert_eq!(core.wait_next(0, &d).unwrap(), NextRow::Row(10));
        assert_eq!(core.wait_next(1, &d).unwrap(), NextRow::Row(20));
        assert_eq!(core.wait_next(2, &d).unwrap(), NextRow::Row(30));
        core.finish(Ok(()));
        assert_eq!(core.wait_next(3, &d).unwrap(), NextRow::Finished);
        // Rows remain replayable after the finish.
        assert_eq!(core.wait_next(1, &d).unwrap(), NextRow::Row(20));
        assert_eq!(core.len(), 3);
    }

    #[test]
    fn failure_is_surfaced_after_the_valid_prefix() {
        let core = StreamCore::new();
        core.publish(1u32);
        core.finish(Err(SkylineError::DeadlineExceeded));
        let d = Deadline::none();
        assert_eq!(core.wait_next(0, &d).unwrap(), NextRow::Row(1));
        assert_eq!(
            core.wait_next(1, &d).unwrap(),
            NextRow::Failed(SkylineError::DeadlineExceeded)
        );
        // A sealed log ignores late publishes and later finishes.
        core.publish(2);
        core.finish(Ok(()));
        assert_eq!(
            core.wait_next(1, &d).unwrap(),
            NextRow::Failed(SkylineError::DeadlineExceeded)
        );
    }

    #[test]
    fn own_deadline_expiry_is_an_error_not_a_terminal_state() {
        let core: StreamCore<u32> = StreamCore::new();
        let err = core
            .wait_next(0, &Deadline::within(Duration::from_millis(5)))
            .unwrap_err();
        assert_eq!(err, SkylineError::DeadlineExceeded);
        // The core is untouched: a later publish serves the same cursor.
        core.publish(9);
        assert_eq!(
            core.wait_next(0, &Deadline::none()).unwrap(),
            NextRow::Row(9)
        );

        // A cancel-only deadline is polled rather than timed.
        let token = skyline_core::CancelToken::new();
        token.cancel();
        assert!(core
            .wait_next(1, &Deadline::none().with_cancel(token))
            .is_err());
    }

    #[test]
    fn a_parked_tap_is_woken_by_publish_and_finish() {
        let core = Arc::new(StreamCore::new());
        let barrier = Arc::new(Barrier::new(2));
        std::thread::scope(|scope| {
            let (c, b) = (core.clone(), barrier.clone());
            let tap = scope.spawn(move || {
                b.wait();
                let d = Deadline::none();
                let mut got = Vec::new();
                let mut idx = 0;
                loop {
                    match c.wait_next(idx, &d).unwrap() {
                        NextRow::Row(v) => {
                            got.push(v);
                            idx += 1;
                        }
                        NextRow::Finished => return got,
                        NextRow::Failed(e) => panic!("leader failed: {e}"),
                    }
                }
            });
            barrier.wait();
            for v in [1u32, 2, 3] {
                std::thread::sleep(Duration::from_millis(5));
                core.publish(v);
            }
            core.finish(Ok(()));
            assert_eq!(tap.join().unwrap(), vec![1, 2, 3]);
        });
    }
}
