//! Deterministic fault injection for the serving layer.
//!
//! Robustness claims that are only exercised by real faults are untested claims. This module
//! gives every failure path in the service a deterministic trigger — a *failpoint* — so
//! tests and CI can prove that a panicking build quarantines a shard instead of unwinding
//! the service, that a stalled shard trips the request deadline, and that a quarantined
//! shard recovers after its backoff rebuild.
//!
//! A [`FaultInjector`] is instance-scoped (each service owns one; tests never fight over
//! global state) and starts with every failpoint disarmed, in which state each hook is one
//! relaxed atomic load on the serve path. Failpoints are armed programmatically (the test
//! API) or from the `SKYLINE_FAULTS` environment variable (the CI harness):
//!
//! ```text
//! SKYLINE_FAULTS="panic-on-build=1:2,delay-on-shard-query=0:25,fail-nth-scatter=3"
//! ```
//!
//! Entries are comma-separated `name=args` with colon-separated args:
//!
//! * `panic-on-build=SHARD[:TIMES]` — the next `TIMES` (default 1) generation builds of
//!   `SHARD` panic before touching the engine;
//! * `panic-on-shard-query=SHARD[:TIMES]` — the next `TIMES` (default 1) scatter queries on
//!   `SHARD` panic;
//! * `delay-on-shard-query=SHARD:MILLIS` — every scatter query on `SHARD` first sleeps
//!   `MILLIS` milliseconds (persistent until cleared);
//! * `fail-nth-scatter=N[:SHARD]` — the `N`-th scatter-gather (1-based, counted from
//!   arming) panics on `SHARD` (default 0).
//!
//! Panic failpoints consume themselves (`TIMES` decrements), so a quarantined shard's
//! recovery rebuild succeeds once the configured failures are spent — exactly the
//! fail-then-heal scenario the quarantine machinery exists for.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Instance-scoped failpoint registry; see the module docs. `Default` is fully disarmed.
#[derive(Debug, Default)]
pub struct FaultInjector {
    /// Fast path: false ⇒ every hook returns immediately without locking anything.
    armed: AtomicBool,
    /// Remaining injected panics per shard's build path.
    panic_on_build: Mutex<HashMap<usize, u32>>,
    /// Remaining injected panics per shard's scatter-query path.
    panic_on_shard_query: Mutex<HashMap<usize, u32>>,
    /// Persistent injected latency per shard's scatter-query path.
    delay_on_shard_query: Mutex<HashMap<usize, Duration>>,
    /// `(n, victim)`: the `n`-th scatter from now panics on `victim`. 0 ⇒ disarmed.
    fail_nth_scatter: Mutex<Option<(u64, usize)>>,
    scatter_count: AtomicU64,
}

impl FaultInjector {
    /// A disarmed injector (every hook is a no-op costing one atomic load).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An injector armed from the `SKYLINE_FAULTS` environment variable (disarmed when the
    /// variable is unset or empty). Panics on a malformed spec — a fault harness that
    /// silently ignores its configuration tests nothing.
    pub fn from_env() -> Self {
        let injector = Self::default();
        if let Ok(spec) = std::env::var("SKYLINE_FAULTS") {
            injector.arm_from_spec(&spec);
        }
        injector
    }

    /// Arms failpoints from a `SKYLINE_FAULTS`-grammar spec string (see the module docs).
    pub fn arm_from_spec(&self, spec: &str) {
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (name, args) = entry
                .split_once('=')
                .unwrap_or_else(|| panic!("malformed SKYLINE_FAULTS entry {entry:?}"));
            let parts: Vec<u64> = args
                .split(':')
                .map(|a| {
                    a.trim().parse().unwrap_or_else(|_| {
                        panic!("malformed SKYLINE_FAULTS arg {a:?} in {entry:?}")
                    })
                })
                .collect();
            match (name.trim(), parts.as_slice()) {
                ("panic-on-build", [shard]) => self.panic_on_build(*shard as usize, 1),
                ("panic-on-build", [shard, times]) => {
                    self.panic_on_build(*shard as usize, *times as u32)
                }
                ("panic-on-shard-query", [shard]) => self.panic_on_shard_query(*shard as usize, 1),
                ("panic-on-shard-query", [shard, times]) => {
                    self.panic_on_shard_query(*shard as usize, *times as u32)
                }
                ("delay-on-shard-query", [shard, millis]) => {
                    self.delay_shard_query(*shard as usize, Duration::from_millis(*millis))
                }
                ("fail-nth-scatter", [n]) => self.fail_nth_scatter(*n, 0),
                ("fail-nth-scatter", [n, shard]) => self.fail_nth_scatter(*n, *shard as usize),
                _ => panic!("unknown SKYLINE_FAULTS entry {entry:?}"),
            }
        }
    }

    /// Whether any failpoint has ever been armed (hooks stay cheap while this is false).
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    fn arm(&self) {
        self.armed.store(true, Ordering::Relaxed);
    }

    fn locked<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        // A failpoint panicking *while armed* is the injector working as designed; the
        // registry itself is never left torn, so recover rather than cascade.
        m.lock().unwrap_or_else(|poisoned| {
            m.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Arms: the next `times` generation builds of `shard` panic.
    pub fn panic_on_build(&self, shard: usize, times: u32) {
        *Self::locked(&self.panic_on_build).entry(shard).or_insert(0) += times;
        self.arm();
    }

    /// Arms: the next `times` scatter queries on `shard` panic.
    pub fn panic_on_shard_query(&self, shard: usize, times: u32) {
        *Self::locked(&self.panic_on_shard_query)
            .entry(shard)
            .or_insert(0) += times;
        self.arm();
    }

    /// Arms: every scatter query on `shard` first sleeps `delay` (until [`FaultInjector::clear`]).
    pub fn delay_shard_query(&self, shard: usize, delay: Duration) {
        Self::locked(&self.delay_on_shard_query).insert(shard, delay);
        self.arm();
    }

    /// Arms: the `n`-th scatter-gather from now (1-based) panics on `victim`.
    pub fn fail_nth_scatter(&self, n: u64, victim: usize) {
        assert!(n > 0, "fail-nth-scatter is 1-based");
        self.scatter_count.store(0, Ordering::Relaxed);
        *Self::locked(&self.fail_nth_scatter) = Some((n, victim));
        self.arm();
    }

    /// Disarms every failpoint (persistent delays included).
    pub fn clear(&self) {
        Self::locked(&self.panic_on_build).clear();
        Self::locked(&self.panic_on_shard_query).clear();
        Self::locked(&self.delay_on_shard_query).clear();
        *Self::locked(&self.fail_nth_scatter) = None;
        self.armed.store(false, Ordering::Relaxed);
    }

    /// Hook: called right before a generation build of `shard` (background pool cycles and
    /// recovery rebuilds alike). Panics if a `panic-on-build` failpoint is armed for it.
    pub fn before_build(&self, shard: usize) {
        if !self.is_armed() {
            return;
        }
        let mut map = Self::locked(&self.panic_on_build);
        if let Some(times) = map.get_mut(&shard) {
            if *times > 0 {
                *times -= 1;
                drop(map);
                panic!("fault injection: panic-on-build, shard {shard}");
            }
        }
    }

    /// Hook: called at the start of each scatter-gather; returns the shard the armed
    /// `fail-nth-scatter` failpoint dooms in *this* scatter, if any. The scatter's per-shard
    /// closures feed the victim to [`FaultInjector::before_shard_query`].
    pub fn begin_scatter(&self) -> Option<usize> {
        if !self.is_armed() {
            return None;
        }
        let armed = *Self::locked(&self.fail_nth_scatter);
        let (n, victim) = armed?;
        let count = self.scatter_count.fetch_add(1, Ordering::Relaxed) + 1;
        if count == n {
            *Self::locked(&self.fail_nth_scatter) = None;
            Some(victim)
        } else {
            None
        }
    }

    /// Hook: called inside each per-shard scatter closure before the engine query. Applies
    /// the armed delay, then panics if this shard is the scatter victim or has an armed
    /// `panic-on-shard-query` failpoint.
    pub fn before_shard_query(&self, shard: usize, scatter_victim: Option<usize>) {
        if !self.is_armed() {
            return;
        }
        let delay = Self::locked(&self.delay_on_shard_query)
            .get(&shard)
            .copied();
        if let Some(delay) = delay {
            std::thread::sleep(delay);
        }
        if scatter_victim == Some(shard) {
            panic!("fault injection: fail-nth-scatter, shard {shard}");
        }
        let mut map = Self::locked(&self.panic_on_shard_query);
        if let Some(times) = map.get_mut(&shard) {
            if *times > 0 {
                *times -= 1;
                drop(map);
                panic!("fault injection: panic-on-shard-query, shard {shard}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hooks_are_noops() {
        let f = FaultInjector::disabled();
        assert!(!f.is_armed());
        f.before_build(0);
        f.before_shard_query(0, None);
        assert_eq!(f.begin_scatter(), None);
    }

    #[test]
    fn build_panics_consume_themselves() {
        let f = FaultInjector::disabled();
        f.panic_on_build(1, 2);
        f.before_build(0); // other shards untouched
        for _ in 0..2 {
            assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                f.before_build(1)
            }))
            .is_err());
        }
        f.before_build(1); // spent: no longer panics
    }

    #[test]
    fn nth_scatter_dooms_the_victim_once() {
        let f = FaultInjector::disabled();
        f.fail_nth_scatter(2, 1);
        assert_eq!(f.begin_scatter(), None);
        assert_eq!(f.begin_scatter(), Some(1));
        assert_eq!(f.begin_scatter(), None, "one-shot");
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f.before_shard_query(1, Some(1))
        }))
        .is_err());
        f.before_shard_query(0, Some(1)); // non-victims pass
    }

    #[test]
    fn spec_parsing_arms_the_right_failpoints() {
        let f = FaultInjector::disabled();
        f.arm_from_spec("panic-on-build=1:2, delay-on-shard-query=0:5, fail-nth-scatter=1");
        assert!(f.is_armed());
        assert_eq!(f.begin_scatter(), Some(0));
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| { f.before_build(1) }))
                .is_err()
        );
        let started = std::time::Instant::now();
        f.before_shard_query(0, None);
        assert!(started.elapsed() >= Duration::from_millis(5));
        f.clear();
        assert!(!f.is_armed());
        f.before_build(1);
    }

    #[test]
    #[should_panic(expected = "unknown SKYLINE_FAULTS entry")]
    fn malformed_spec_fails_fast() {
        FaultInjector::disabled().arm_from_spec("surprise=1");
    }
}
