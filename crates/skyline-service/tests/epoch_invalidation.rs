//! Regression suite for the dynamic-dataset service: a mutated engine must never serve a
//! stale cached skyline. On the pre-epoch cache (entries not tagged with a [`DatasetEpoch`])
//! these tests fail — the second serve after a mutation replays the memoized pre-mutation
//! answer; with epoch-tagged entries the mutation atomically invalidates the cached state and
//! every answer matches a from-scratch computation over the live rows.

use proptest::prelude::*;
use skyline::prelude::*;
use skyline_core::algo::bnl;
use skyline_service::{ServiceConfig, SkylineService};

fn vacation_service() -> SkylineService {
    let schema = Schema::new(vec![
        Dimension::numeric("price"),
        Dimension::numeric("class-neg"),
        Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
    ])
    .unwrap();
    let mut b = DatasetBuilder::new(schema);
    for (price, class, group) in [
        (1600.0, 4.0, "T"),
        (2400.0, 1.0, "T"),
        (3000.0, 5.0, "H"),
        (3600.0, 4.0, "H"),
        (2400.0, 2.0, "M"),
        (3000.0, 3.0, "M"),
    ] {
        b.push_row([RowValue::Num(price), RowValue::Num(-class), group.into()])
            .unwrap();
    }
    let data = b.build().unwrap();
    let template = Template::empty(data.schema());
    let engine = SkylineEngine::build(data, template, EngineConfig::Hybrid { top_k: 3 }).unwrap();
    SkylineService::with_config(
        engine,
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    )
}

/// Brute-force skyline over the service engine's live rows.
fn live_oracle(service: &SkylineService, pref: &Preference) -> Vec<PointId> {
    let engine = service.engine().read();
    let ctx = DominanceContext::for_query(engine.dataset(), engine.template(), pref).unwrap();
    let live: Vec<PointId> = engine
        .dataset()
        .point_ids()
        .filter(|&p| engine.is_row_live(p))
        .collect();
    bnl::skyline_of(&ctx, &live)
}

#[test]
fn a_cached_result_is_never_served_across_an_insert() {
    let service = vacation_service();
    let schema = service.engine().read().dataset().schema().clone();
    let alice = Preference::parse(&schema, [("hotel-group", "T < M < *")]).unwrap();

    let first = service.serve(&alice).unwrap();
    assert!(!first.cache_hit);
    assert_eq!(first.outcome.skyline, vec![0, 2]);
    let hit = service.serve(&alice).unwrap();
    assert!(hit.cache_hit, "warm cache must hit before the mutation");
    assert_eq!(hit.epoch, first.epoch);

    // Insert a Tulips package that dominates the whole cached answer.
    let epoch = service.insert_row(&[1000.0, -5.0], &[0]).unwrap();
    assert!(epoch > first.epoch);

    let fresh = service.serve(&alice).unwrap();
    assert!(
        !fresh.cache_hit,
        "a cached result must never be served across an epoch bump"
    );
    assert_eq!(fresh.epoch, epoch);
    assert_eq!(fresh.outcome.skyline, vec![6]);
    assert_eq!(fresh.outcome.skyline, live_oracle(&service, &alice));

    let stats = service.stats();
    assert_eq!(stats.mutations, 1);
    assert_eq!(
        stats.stale_evictions, 1,
        "the stale entry expires lazily on its next touch"
    );
    // The recomputed answer is cached at the new epoch and hits again.
    assert!(service.serve(&alice).unwrap().cache_hit);
}

#[test]
fn a_cached_result_is_never_served_across_a_delete() {
    let service = vacation_service();
    let schema = service.engine().read().dataset().schema().clone();
    let pref = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();

    let first = service.serve(&pref).unwrap();
    assert!(service.serve(&pref).unwrap().cache_hit);
    assert!(first.outcome.skyline.contains(&4));

    // Delete skyline member e (the cheap Mozilla package): b resurfaces options.
    service.delete_row(4).unwrap();
    let fresh = service.serve(&pref).unwrap();
    assert!(!fresh.cache_hit);
    assert!(!fresh.outcome.skyline.contains(&4));
    assert_eq!(fresh.outcome.skyline, live_oracle(&service, &pref));

    // A no-op delete keeps the epoch, so the fresh answer still hits.
    service.delete_row(4).unwrap();
    assert!(service.serve(&pref).unwrap().cache_hit);
    assert_eq!(service.stats().mutations, 1);
}

#[derive(Debug, Clone)]
enum Op {
    Serve {
        choices: Vec<ValueId>,
    },
    Insert {
        numeric: Vec<f64>,
        nominal: Vec<ValueId>,
    },
    Delete {
        index: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::sample::subsequence(vec![0u16, 1, 2], 0..=2)
            .prop_shuffle()
            .prop_map(|choices| Op::Serve { choices }),
        (
            proptest::collection::vec(0i32..6, 2),
            proptest::collection::vec(0u16..3, 1),
        )
            .prop_map(|(n, c)| Op::Insert {
                numeric: n.into_iter().map(f64::from).collect(),
                nominal: c,
            }),
        (0usize..32).prop_map(|index| Op::Delete { index }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Any interleaving of serves, inserts and deletes: every served answer equals the
    /// brute-force skyline of the rows live at that moment, cache or no cache.
    #[test]
    fn served_answers_always_match_the_live_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..30),
    ) {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::numeric("y"),
            Dimension::nominal("g", NominalDomain::anonymous(3)),
        ])
        .unwrap();
        let mut data = Dataset::empty(schema.clone());
        for (x, y, g) in [(1.0, 4.0, 0), (2.0, 3.0, 1), (3.0, 2.0, 2), (4.0, 1.0, 0)] {
            data.push_row_ids(&[x, y], &[g]).unwrap();
        }
        let template = Template::empty(&schema);
        let engine =
            SkylineEngine::build(data, template, EngineConfig::AdaptiveSfs).unwrap();
        let service = SkylineService::with_config(
            engine,
            ServiceConfig { workers: 1, cache_capacity: 8, cache_shards: 1, ..ServiceConfig::default() },
        );

        for op in ops {
            match op {
                Op::Serve { choices } => {
                    let pref = Preference::from_dims(vec![
                        ImplicitPreference::new(choices).unwrap(),
                    ]);
                    let served = service.serve(&pref).unwrap();
                    prop_assert_eq!(
                        &served.outcome.skyline,
                        &live_oracle(&service, &pref),
                        "epoch {:?}",
                        served.epoch
                    );
                    prop_assert_eq!(served.epoch, service.epoch());
                }
                Op::Insert { numeric, nominal } => {
                    service.insert_row(&numeric, &nominal).unwrap();
                }
                Op::Delete { index } => {
                    let len = service.engine().read().dataset().len();
                    service.delete_row((index % len) as PointId).unwrap();
                }
            }
        }
        let stats = service.stats();
        prop_assert_eq!(stats.errors, 0);
    }
}
