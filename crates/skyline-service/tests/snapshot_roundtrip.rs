//! Snapshot round-trip: a service rehydrated from its persistent binary snapshots is
//! observationally identical to the one that wrote them — query for query, for every
//! engine configuration, any shard count from 1 to 4, and under both dominance-kernel
//! modes — and every way of damaging a snapshot (byte flips, truncations, version bumps)
//! is a structured [`SkylineError::Snapshot`], never a panic and never silently wrong rows.
//!
//! Kernel-mode coverage matters because the snapshot stores *data*, not kernel state: the
//! bytes written under the packed kernel must be identical to the bytes written under the
//! scalar kernel, and a snapshot written under either mode must load and answer correctly
//! under the other (the CI `kernel-paths` matrix runs this suite under both `SKYLINE_KERNEL`
//! values, and the tests additionally force both modes in-process via [`with_kernel_mode`]).

use proptest::prelude::*;
use skyline::model::{with_kernel_mode, KernelMode};
use skyline::prelude::*;
use skyline_service::{ShardPartition, ShardedConfig, ShardedService};
use std::path::PathBuf;
use std::sync::Arc;

const CARD: usize = 3;

/// Every mutable engine configuration the snapshot format must carry.
const CONFIGS: [EngineConfig; 6] = [
    EngineConfig::SfsD,
    EngineConfig::AdaptiveSfs,
    EngineConfig::IpoTree,
    EngineConfig::IpoTreeTopK(2),
    EngineConfig::BitmapIpoTree,
    EngineConfig::Hybrid { top_k: 2 },
];

type Rows = Vec<(Vec<f64>, Vec<ValueId>)>;

fn rows_strategy() -> impl Strategy<Value = Rows> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0i32..6, 2)
                .prop_map(|v| v.into_iter().map(f64::from).collect::<Vec<f64>>()),
            proptest::collection::vec(0..(CARD as ValueId), 1),
        ),
        1..16,
    )
}

fn initial_dataset(rows: &[(Vec<f64>, Vec<ValueId>)]) -> Dataset {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::numeric("y"),
        Dimension::nominal("g", NominalDomain::anonymous(CARD)),
    ])
    .unwrap();
    let mut data = Dataset::empty(schema);
    for (numeric, nominal) in rows {
        data.push_row_ids(numeric, nominal).unwrap();
    }
    data
}

/// A row's identity across services: its raw values (numeric bit patterns + nominal ids).
type ValueKey = (Vec<u64>, Vec<ValueId>);

fn value_key(data: &Dataset, p: PointId) -> ValueKey {
    let schema = data.schema();
    (
        (0..schema.numeric_count())
            .map(|j| data.numeric(p, j).to_bits())
            .collect(),
        (0..schema.nominal_count())
            .map(|j| data.nominal(p, j))
            .collect(),
    )
}

/// The observable outcome of serving `pref`: the sorted value multiset, or the error the
/// service rejected the query with (e.g. `IpoTreeTopK` refusing a non-materialized value —
/// a snapshot-loaded service must reproduce the rejection too).
fn sharded_values(
    service: &ShardedService,
    pref: &Preference,
) -> std::result::Result<Vec<ValueKey>, String> {
    let served = service.serve(pref).map_err(|e| e.to_string())?;
    let mut values: Vec<ValueKey> = served
        .outcome
        .skyline
        .iter()
        .map(|g| value_key(service.shard(g.shard).read().dataset(), g.row))
        .collect();
    values.sort();
    Ok(values)
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "skyline-snapshot-roundtrip-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Write → load is observationally the identity, for every engine configuration,
    /// 1–4 shards and both kernel modes — including writing under one kernel mode and
    /// loading under the other (the snapshot bytes must not depend on the kernel at all).
    #[test]
    fn snapshot_round_trip_is_observationally_identical(
        initial in rows_strategy(),
        shards in 1usize..=4,
        query_choices in proptest::sample::subsequence(
            (0..CARD as ValueId).collect::<Vec<_>>(), 0..=2
        ).prop_shuffle(),
    ) {
        let data = Arc::new(initial_dataset(&initial));
        let template = Template::empty(data.schema());
        let pref = Preference::from_dims(vec![ImplicitPreference::new(query_choices).unwrap()]);
        let dir = scratch_dir("roundtrip");

        for config in CONFIGS {
            let sharded = ShardedConfig {
                shards,
                partition: ShardPartition::HashNominal { dim: 0 },
                workers: 2,
                ..ShardedConfig::default()
            };
            let service = ShardedService::build(&data, template.clone(), config, sharded.clone())
                .unwrap();
            let expected = sharded_values(&service, &pref);

            // The format stores data, not kernel state: both modes write identical bytes.
            let packed_bytes = with_kernel_mode(KernelMode::Packed, || {
                service.shard(0).read().write_snapshot().unwrap()
            });
            let scalar_bytes = with_kernel_mode(KernelMode::Scalar, || {
                service.shard(0).read().write_snapshot().unwrap()
            });
            prop_assert_eq!(
                &packed_bytes, &scalar_bytes,
                "snapshot bytes must be kernel-mode independent (config {:?})", config
            );

            let written = with_kernel_mode(KernelMode::Packed, || service.write_snapshots(&dir));
            prop_assert_eq!(written.unwrap().len(), shards.max(1));

            // Load and serve under both kernel modes: write-packed/load-scalar and
            // write-packed/load-packed both answer exactly like the original service.
            for mode in [KernelMode::Packed, KernelMode::Scalar] {
                let loaded = with_kernel_mode(mode, || {
                    ShardedService::from_snapshots(&dir, sharded.clone())
                }).unwrap();
                prop_assert_eq!(loaded.shard_count(), service.shard_count());
                prop_assert_eq!(loaded.live_rows(), service.live_rows());
                for s in 0..service.shard_count() {
                    prop_assert_eq!(
                        loaded.shard(s).read().epoch(),
                        service.shard(s).read().epoch(),
                        "shard {} epoch must survive the round trip", s
                    );
                }
                let answered = with_kernel_mode(mode, || sharded_values(&loaded, &pref));
                prop_assert_eq!(
                    answered, expected.clone(),
                    "config {:?}, shards {}, load mode {:?}", config, shards, mode
                );
                prop_assert_eq!(loaded.stats().snapshot_loads, shards.max(1) as u64);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Builds the single-shard corruption target: a small hybrid engine with enough structure
/// to populate every snapshot section (numerics, nominals, Adaptive-SFS list, IPO tree).
fn corruption_target() -> Vec<u8> {
    let rows: Rows = (0..12i32)
        .map(|i| {
            (
                vec![f64::from(i % 5), f64::from((i * 3) % 7)],
                vec![(i as usize % CARD) as ValueId],
            )
        })
        .collect();
    let data = Arc::new(initial_dataset(&rows));
    let template = Template::empty(data.schema());
    let engine = SkylineEngine::build(data, template, EngineConfig::Hybrid { top_k: 2 }).unwrap();
    engine.write_snapshot().unwrap()
}

/// Every single-byte flip anywhere in the snapshot is detected: the load returns a
/// structured error — it never panics and never yields an engine with different rows.
#[test]
fn every_byte_flip_is_detected() {
    let bytes = corruption_target();
    let baseline = SkylineEngine::from_snapshot(&bytes).expect("pristine snapshot loads");
    for mode in [KernelMode::Packed, KernelMode::Scalar] {
        with_kernel_mode(mode, || {
            for i in 0..bytes.len() {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 0x01;
                let err = SkylineEngine::from_snapshot(&corrupt);
                assert!(
                    err.is_err(),
                    "flipping byte {i} of {} went undetected under {mode:?}",
                    bytes.len()
                );
            }
        });
    }
    assert_eq!(
        SkylineEngine::from_snapshot(&bytes).unwrap().live_rows(),
        baseline.live_rows()
    );
}

/// Every truncation — from the empty file up to one byte short — is a structured error.
#[test]
fn every_truncation_is_detected() {
    let bytes = corruption_target();
    for len in 0..bytes.len() {
        assert!(
            SkylineEngine::from_snapshot(&bytes[..len]).is_err(),
            "truncating to {len} of {} bytes went undetected",
            bytes.len()
        );
    }
    // Trailing garbage past the declared end is equally rejected.
    let mut extended = bytes.clone();
    extended.push(0);
    assert!(SkylineEngine::from_snapshot(&extended).is_err());
}

/// A bumped container version is refused up front with a structured error, not parsed.
#[test]
fn version_bump_is_refused() {
    let mut bytes = corruption_target();
    // Container layout: 8-byte magic, then the little-endian u32 format version.
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    bytes[8..12].copy_from_slice(&(version + 1).to_le_bytes());
    let err = SkylineEngine::from_snapshot(&bytes);
    assert!(err.is_err(), "future container version must be refused");
}

/// `from_snapshots` refuses a directory whose shard files disagree on configuration —
/// mixing shards written by services built with different engine configs is a structured
/// error, not a service that answers from an incoherent ensemble.
#[test]
fn mixed_config_shard_files_are_refused() {
    let rows: Rows = (0..10i32)
        .map(|i| {
            (
                vec![f64::from(i % 4), f64::from((i * 5) % 6)],
                vec![(i as usize % CARD) as ValueId],
            )
        })
        .collect();
    let data = Arc::new(initial_dataset(&rows));
    let template = Template::empty(data.schema());
    let sharded = ShardedConfig {
        shards: 2,
        partition: ShardPartition::HashNominal { dim: 0 },
        ..ShardedConfig::default()
    };

    let dir = scratch_dir("mixed-config");
    let adaptive = ShardedService::build(
        &data,
        template.clone(),
        EngineConfig::AdaptiveSfs,
        sharded.clone(),
    )
    .unwrap();
    adaptive.write_snapshots(&dir).unwrap();
    let hybrid_dir = scratch_dir("mixed-config-hybrid");
    let hybrid = ShardedService::build(
        &data,
        template,
        EngineConfig::Hybrid { top_k: 2 },
        sharded.clone(),
    )
    .unwrap();
    hybrid.write_snapshots(&hybrid_dir).unwrap();

    // Replace shard 1's file with the hybrid service's shard 1: configs now disagree.
    std::fs::copy(
        hybrid_dir.join("shard-0001.snap"),
        dir.join("shard-0001.snap"),
    )
    .unwrap();
    let err = ShardedService::from_snapshots(&dir, sharded);
    assert!(
        matches!(err, Err(SkylineError::Snapshot(_))),
        "mixed-config shard files must be a structured snapshot error, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&hybrid_dir);
}
