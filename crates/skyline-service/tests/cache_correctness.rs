//! Cache-correctness property: over random datasets and random preference streams (with
//! repetition, so hits actually occur), serving with the cache enabled is indistinguishable
//! from serving without it — and both equal the bare engine.

use proptest::prelude::*;
use skyline::prelude::*;
use skyline_service::{ServiceConfig, SkylineService};
use std::sync::Arc;

#[derive(Debug, Clone)]
struct StreamInstance {
    numeric: Vec<Vec<f64>>,
    nominal: Vec<Vec<ValueId>>,
    cardinalities: Vec<usize>,
    /// Choice lists for a small pool of distinct preferences.
    pool_choices: Vec<Vec<Vec<ValueId>>>,
    /// The stream: indices into the pool (repetition produces cache hits).
    stream: Vec<usize>,
    /// Cache capacity, possibly smaller than the pool (exercises eviction).
    cache_capacity: usize,
}

fn instance_strategy() -> impl Strategy<Value = StreamInstance> {
    let cards = vec![3usize, 4usize];
    (1usize..30, 1usize..=4).prop_flat_map(move |(rows, pool)| {
        let cards = cards.clone();
        let numeric = proptest::collection::vec(
            proptest::collection::vec(0i32..5, rows)
                .prop_map(|v| v.into_iter().map(f64::from).collect::<Vec<f64>>()),
            2,
        );
        let nominal = cards
            .iter()
            .map(|&c| proptest::collection::vec(0..(c as ValueId), rows))
            .collect::<Vec<_>>();
        let pool_choices = proptest::collection::vec(
            cards
                .iter()
                .map(|&c| {
                    proptest::sample::subsequence((0..c as ValueId).collect::<Vec<_>>(), 0..=c)
                        .prop_shuffle()
                })
                .collect::<Vec<_>>(),
            pool,
        );
        let stream = proptest::collection::vec(0..pool, 1..40);
        (numeric, nominal, pool_choices, stream, 0usize..6).prop_map(
            move |(numeric, nominal, pool_choices, stream, cache_capacity)| StreamInstance {
                numeric,
                nominal,
                cardinalities: cards.clone(),
                pool_choices,
                stream,
                cache_capacity,
            },
        )
    })
}

fn build_engine(instance: &StreamInstance) -> SharedEngine {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::numeric("y"),
        Dimension::nominal("g", NominalDomain::anonymous(instance.cardinalities[0])),
        Dimension::nominal("h", NominalDomain::anonymous(instance.cardinalities[1])),
    ])
    .unwrap();
    let data = Arc::new(
        Dataset::from_columns(schema, instance.numeric.clone(), instance.nominal.clone()).unwrap(),
    );
    let template = Template::empty(data.schema());
    // Hybrid with a small top_k: the stream exercises both the tree and the fallback.
    SharedEngine::new(
        SkylineEngine::build(data, template, EngineConfig::Hybrid { top_k: 2 }).unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn serving_with_cache_equals_serving_without(instance in instance_strategy()) {
        let engine = build_engine(&instance);
        let pool: Vec<Preference> = instance
            .pool_choices
            .iter()
            .map(|dims| {
                Preference::from_dims(
                    dims.iter()
                        .map(|c| ImplicitPreference::new(c.clone()).unwrap())
                        .collect(),
                )
            })
            .collect();
        let stream: Vec<Preference> =
            instance.stream.iter().map(|&i| pool[i].clone()).collect();

        let cached = SkylineService::with_config(
            engine.clone(),
            ServiceConfig {
                cache_capacity: instance.cache_capacity,
                cache_shards: 2,
                workers: 1, ..ServiceConfig::default() },
        );
        let uncached = SkylineService::with_config(
            engine.clone(),
            ServiceConfig { cache_capacity: 0, cache_shards: 1, workers: 1, ..ServiceConfig::default() },
        );
        for (i, pref) in stream.iter().enumerate() {
            let expected = engine.read().query(pref).unwrap().skyline;
            let with_cache = cached.serve(pref).unwrap();
            let without_cache = uncached.serve(pref).unwrap();
            prop_assert_eq!(&with_cache.outcome.skyline, &expected, "cached, step {}", i);
            prop_assert_eq!(&without_cache.outcome.skyline, &expected, "uncached, step {}", i);
        }
        // The cached service never invents or loses queries.
        prop_assert_eq!(cached.stats().served(), stream.len() as u64);
        prop_assert_eq!(uncached.stats().hits, 0);
    }

    /// The batched worker-pool path agrees with the serial path on the same stream.
    #[test]
    fn batched_serving_equals_serial_serving(instance in instance_strategy()) {
        let engine = build_engine(&instance);
        let pool: Vec<Preference> = instance
            .pool_choices
            .iter()
            .map(|dims| {
                Preference::from_dims(
                    dims.iter()
                        .map(|c| ImplicitPreference::new(c.clone()).unwrap())
                        .collect(),
                )
            })
            .collect();
        let stream: Vec<Preference> =
            instance.stream.iter().map(|&i| pool[i].clone()).collect();
        let service = SkylineService::with_config(
            engine.clone(),
            ServiceConfig {
                cache_capacity: instance.cache_capacity,
                cache_shards: 2,
                workers: 4, ..ServiceConfig::default() },
        );
        let batched = service.serve_batch(&stream);
        prop_assert_eq!(batched.len(), stream.len());
        for (i, (pref, result)) in stream.iter().zip(batched).enumerate() {
            let expected = engine.read().query(pref).unwrap().skyline;
            prop_assert_eq!(&result.unwrap().outcome.skyline, &expected, "step {}", i);
        }
    }
}
