//! Concurrency suite: N threads × M queries against one shared engine must produce exactly
//! the answers serial `SkylineEngine::query` produces, with and without the result cache.

use skyline::prelude::*;
use skyline_service::{ServiceConfig, SkylineService};
use std::sync::Arc;
use std::thread;

fn build_engine(seed: u64, config: EngineConfig) -> SharedEngine {
    let experiment = ExperimentConfig {
        n: 800,
        numeric_dims: 2,
        nominal_dims: 2,
        cardinality: 8,
        theta: 1.0,
        pref_order: 2,
        distribution: Distribution::AntiCorrelated,
        seed,
    };
    let data = Arc::new(experiment.generate_dataset());
    let template = experiment.template(&data);
    SharedEngine::new(SkylineEngine::build(data, template, config).unwrap())
}

fn workload(engine: &SharedEngine, seed: u64, count: usize) -> Vec<Preference> {
    let engine = engine.read();
    let mut generator = QueryGenerator::new(seed);
    generator.zipf_workload(
        engine.dataset().schema(),
        engine.template(),
        3,
        24,
        count,
        1.0,
    )
}

#[test]
fn engine_is_shareable_across_threads() {
    // Compile-time: the refactor to Arc<Dataset> must keep the engine Send + Sync.
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SkylineEngine>();
    assert_send_sync::<SkylineService>();

    // Runtime: raw engine queries from 8 threads agree with the serial answers.
    let engine = build_engine(3, EngineConfig::Hybrid { top_k: 4 });
    let queries = workload(&engine, 17, 64);
    let serial: Vec<Vec<PointId>> = queries
        .iter()
        .map(|q| engine.read().query(q).unwrap().skyline)
        .collect();

    let threads = 8;
    thread::scope(|scope| {
        for t in 0..threads {
            let engine = engine.clone();
            let queries = &queries;
            let serial = &serial;
            scope.spawn(move || {
                // Each thread walks the workload at a different offset.
                for i in 0..queries.len() {
                    let idx = (i + t * 7) % queries.len();
                    let got = engine.read().query(&queries[idx]).unwrap().skyline;
                    assert_eq!(got, serial[idx], "thread {t}, query {idx}");
                }
            });
        }
    });
}

#[test]
fn threaded_service_matches_serial_engine_for_every_config() {
    let configs = [
        EngineConfig::SfsD,
        EngineConfig::AdaptiveSfs,
        EngineConfig::IpoTree,
        EngineConfig::BitmapIpoTree,
        EngineConfig::Hybrid { top_k: 3 },
    ];
    for config in configs {
        let engine = build_engine(11, config);
        let queries = workload(&engine, 29, 120);
        let serial: Vec<Vec<PointId>> = queries
            .iter()
            .map(|q| engine.read().query(q).unwrap().skyline)
            .collect();

        let service = Arc::new(SkylineService::with_config(
            engine,
            ServiceConfig {
                workers: 6,
                ..ServiceConfig::default()
            },
        ));
        // serve_batch: the pool spreads the batch over its workers.
        for (i, result) in service.serve_batch(&queries).into_iter().enumerate() {
            assert_eq!(
                result.unwrap().outcome.skyline,
                serial[i],
                "config {config:?}, batched query {i}"
            );
        }
        // And explicit user threads hammering `serve` concurrently.
        thread::scope(|scope| {
            for t in 0..4 {
                let service = service.clone();
                let queries = &queries;
                let serial = &serial;
                scope.spawn(move || {
                    for (i, q) in queries.iter().enumerate() {
                        let served = service.serve(q).unwrap();
                        assert_eq!(
                            served.outcome.skyline, serial[i],
                            "config {config:?}, thread {t}, query {i}"
                        );
                    }
                });
            }
        });
        let stats = service.stats();
        assert_eq!(stats.served(), (queries.len() * 5) as u64);
        assert!(
            stats.hit_rate() > 0.5,
            "Zipf workload should mostly hit the cache, got {}",
            stats.hit_rate()
        );
    }
}

#[test]
fn cache_disabled_service_still_agrees() {
    let engine = build_engine(23, EngineConfig::AdaptiveSfs);
    let queries = workload(&engine, 31, 60);
    let service = SkylineService::with_config(
        engine.clone(),
        ServiceConfig {
            cache_capacity: 0,
            workers: 4,
            ..ServiceConfig::default()
        },
    );
    for (q, r) in queries.iter().zip(service.serve_batch(&queries)) {
        let served = r.unwrap();
        assert!(!served.cache_hit);
        assert_eq!(
            served.outcome.skyline,
            engine.read().query(q).unwrap().skyline
        );
    }
    assert_eq!(service.stats().hits, 0);
    assert_eq!(service.cache_len(), 0);
}

#[test]
fn tiny_cache_evicts_but_never_corrupts() {
    let engine = build_engine(41, EngineConfig::Hybrid { top_k: 2 });
    let queries = workload(&engine, 43, 200);
    let service = SkylineService::with_config(
        engine.clone(),
        ServiceConfig {
            cache_capacity: 4,
            cache_shards: 2,
            workers: 6,
            ..ServiceConfig::default()
        },
    );
    for (q, r) in queries.iter().zip(service.serve_batch(&queries)) {
        assert_eq!(
            r.unwrap().outcome.skyline,
            engine.read().query(q).unwrap().skyline
        );
    }
    assert!(service.cache_len() <= 4);
}
