//! Fault isolation: injected shard panics and delays never corrupt an answer.
//!
//! The central proptest runs a *twin experiment* — one [`ShardedService`] with faults
//! injected, one fault-free, both fed the identical mutation stream — and checks, at every
//! serve of any interleaving of faults and mutations:
//!
//! 1. non-degraded responses are exactly the fault-free sharded answer;
//! 2. degraded responses are the fault-free answer restricted to the healthy shards
//!    (computed independently via per-shard queries + the public cross-shard merger);
//! 3. the cache never stores a partial or cancelled result — every cache hit is complete.
//!
//! Around it sit deterministic scenarios for the quarantine lifecycle: a background build
//! panic quarantines its shard, the service keeps answering degraded in the meantime, and
//! the shard returns to service through the bounded backoff rebuild.

use proptest::prelude::*;
use skyline::prelude::*;
use skyline_core::{CompiledOrder, Deadline, SkylineMerger};
use skyline_service::{
    DegradePolicy, GlobalRowId, RecoveryPolicy, ShardPartition, ShardedConfig, ShardedServed,
    ShardedService,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CARD: usize = 3;

fn schema() -> Schema {
    Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::numeric("y"),
        Dimension::nominal("g", NominalDomain::anonymous(CARD)),
    ])
    .unwrap()
}

type Rows = Vec<(Vec<f64>, Vec<ValueId>)>;

fn rows_strategy() -> impl Strategy<Value = Rows> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0i32..6, 2)
                .prop_map(|v| v.into_iter().map(f64::from).collect::<Vec<f64>>()),
            proptest::collection::vec(0..(CARD as ValueId), 1),
        ),
        1..16,
    )
}

fn initial_dataset(rows: &Rows) -> Dataset {
    let mut data = Dataset::empty(schema());
    for (numeric, nominal) in rows {
        data.push_row_ids(numeric, nominal).unwrap();
    }
    data
}

/// One step of the interleaved fault/mutation/query stream.
#[derive(Debug, Clone)]
enum Op {
    Insert {
        numeric: Vec<f64>,
        nominal: Vec<ValueId>,
    },
    Delete {
        index: usize,
    },
    /// Arm: the faulty twin's next scatter query on `shard % shards` panics.
    Panic {
        shard: usize,
    },
    Serve {
        choices: Vec<ValueId>,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            proptest::collection::vec(0i32..6, 2),
            proptest::collection::vec(0..(CARD as ValueId), 1),
        )
            .prop_map(|(n, c)| Op::Insert {
                numeric: n.into_iter().map(f64::from).collect(),
                nominal: c,
            }),
        (0usize..64).prop_map(|index| Op::Delete { index }),
        (0usize..8).prop_map(|shard| Op::Panic { shard }),
        proptest::sample::subsequence((0..CARD as ValueId).collect::<Vec<_>>(), 0..=2)
            .prop_map(|choices| Op::Serve { choices }),
    ]
}

type ValueKey = (Vec<u64>, Vec<ValueId>);

fn value_key(data: &Dataset, p: PointId) -> ValueKey {
    let schema = data.schema();
    (
        (0..schema.numeric_count())
            .map(|j| data.numeric(p, j).to_bits())
            .collect(),
        (0..schema.nominal_count())
            .map(|j| data.nominal(p, j))
            .collect(),
    )
}

fn served_values(service: &ShardedService, served: &ShardedServed) -> Vec<ValueKey> {
    let mut values: Vec<ValueKey> = served
        .outcome
        .skyline
        .iter()
        .map(|g| value_key(service.shard(g.shard).read().dataset(), g.row))
        .collect();
    values.sort();
    values
}

/// Ground truth for a (possibly degraded) answer: merge the per-shard skylines of `shards`,
/// computed through per-shard engine queries and the public merger — independent of the
/// scatter-gather serve path under test.
fn merge_of_shards(service: &ShardedService, shards: &[usize], pref: &Preference) -> Vec<ValueKey> {
    let orders: Vec<CompiledOrder> = service
        .template()
        .effective_orders(service.schema(), pref)
        .unwrap()
        .iter()
        .map(CompiledOrder::compile)
        .collect();
    let mut merger = SkylineMerger::new(orders, service.schema().numeric_count());
    for &s in shards {
        let guard = service.shard(s).read();
        let data = guard.dataset();
        for p in guard.query(pref).unwrap().skyline {
            let numeric: Vec<f64> = (0..service.schema().numeric_count())
                .map(|j| data.numeric(p, j))
                .collect();
            let nominal: Vec<ValueId> = (0..service.schema().nominal_count())
                .map(|j| data.nominal(p, j))
                .collect();
            merger.push(s, p, &numeric, &nominal).unwrap();
        }
    }
    let mut values: Vec<ValueKey> = merger
        .merge()
        .into_iter()
        .map(|(s, p)| value_key(service.shard(s).read().dataset(), p))
        .collect();
    values.sort();
    values
}

fn build_service(data: &Dataset, shards: usize, tolerate_all: bool) -> ShardedService {
    ShardedService::build(
        data,
        Template::empty(data.schema()),
        EngineConfig::AdaptiveSfs,
        ShardedConfig {
            shards,
            partition: ShardPartition::HashNominal { dim: 0 },
            workers: 2,
            degrade: if tolerate_all {
                DegradePolicy::Tolerate {
                    max_degraded: shards,
                }
            } else {
                DegradePolicy::FailClosed
            },
            // Deterministic quarantine: no automatic recovery mid-stream, shards stay
            // quarantined until the explicit recovery at the end of the case.
            recovery: RecoveryPolicy {
                max_attempts: 0,
                ..RecoveryPolicy::default()
            },
            ..ShardedConfig::default()
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// The twin experiment from the module docs: faults degrade availability, never
    /// correctness, under any interleaving of injected panics and mutations.
    #[test]
    fn faults_degrade_availability_never_correctness(
        initial in rows_strategy(),
        ops in proptest::collection::vec(op_strategy(), 0..24),
        shards in 2usize..=4,
    ) {
        let data = initial_dataset(&initial);
        let faulty = build_service(&data, shards, true);
        let clean = build_service(&data, shards, true);

        // Logical rows in insertion order; global ids are identical on both twins (same
        // partition, same insertion order) until a recovery rebuild — which only happens
        // after the mutation stream ends.
        let mut rows: Vec<Option<GlobalRowId>> =
            ShardedService::partition_rows(faulty.partition(), shards, &data)
                .into_iter()
                .map(Some)
                .collect();

        for op in &ops {
            match op {
                Op::Insert { numeric, nominal } => {
                    let f = faulty.insert_row(numeric, nominal).unwrap();
                    let c = clean.insert_row(numeric, nominal).unwrap();
                    prop_assert_eq!(f, c, "twins place rows identically");
                    rows.push(Some(f));
                }
                Op::Delete { index } => {
                    let target = index % rows.len();
                    if let Some(g) = rows[target] {
                        let f_live = faulty.delete_row(g).unwrap();
                        let c_live = clean.delete_row(g).unwrap();
                        prop_assert_eq!(f_live, c_live, "twins agree on liveness");
                        rows[target] = None;
                    }
                }
                Op::Panic { shard } => {
                    faulty.fault_injector().panic_on_shard_query(shard % shards, 1);
                }
                Op::Serve { choices } => {
                    let pref = Preference::from_dims(vec![
                        ImplicitPreference::new(choices.clone()).unwrap(),
                    ]);
                    let cache_before = faulty.cache_len();
                    let served = faulty.serve(&pref).unwrap();
                    if served.cache_hit {
                        prop_assert!(
                            !served.is_degraded(),
                            "a cache hit can only be a complete answer"
                        );
                    }
                    if served.is_degraded() {
                        // Lazy stale eviction may shrink the cache on lookup, but a
                        // degraded serve must never *add* an entry. (That cached answers
                        // are complete and correct is enforced by the cache-hit branch
                        // below comparing them against the fault-free twin.)
                        prop_assert!(
                            faulty.cache_len() <= cache_before,
                            "degraded answers are never cached"
                        );
                        // Degraded shards reported = exactly the quarantined set (panics
                        // only here; no deadlines are in play).
                        prop_assert_eq!(
                            served.degraded_shards.clone(),
                            faulty.quarantined_shards(),
                            "degraded answers name exactly the quarantined shards"
                        );
                        let healthy: Vec<usize> = (0..shards)
                            .filter(|s| !served.degraded_shards.contains(s))
                            .collect();
                        prop_assert_eq!(
                            served_values(&faulty, &served),
                            merge_of_shards(&clean, &healthy, &pref),
                            "degraded answer == fault-free answer restricted to healthy shards"
                        );
                    } else {
                        let reference = clean.serve(&pref).unwrap();
                        prop_assert!(!reference.is_degraded());
                        prop_assert_eq!(
                            served_values(&faulty, &served),
                            served_values(&clean, &reference),
                            "non-degraded answer == fault-free sharded answer"
                        );
                    }
                }
            }
        }

        // Recovery: disarm the injector, heal every quarantined shard explicitly, and the
        // twins converge back to identical complete answers.
        faulty.fault_injector().clear();
        for s in faulty.quarantined_shards() {
            prop_assert!(faulty.recover_shard(s).unwrap());
        }
        prop_assert!(faulty.quarantined_shards().is_empty());
        let pref = Preference::from_dims(vec![ImplicitPreference::new([0]).unwrap()]);
        let healed = faulty.serve(&pref).unwrap();
        prop_assert!(!healed.is_degraded());
        let reference = clean.serve(&pref).unwrap();
        prop_assert_eq!(
            served_values(&faulty, &healed),
            served_values(&clean, &reference)
        );
    }
}

/// A cancelled request fails fast with `DeadlineExceeded`, is counted, and leaves no trace
/// in the cache.
#[test]
fn cancelled_requests_leave_no_cache_entries() {
    let data = initial_dataset(&vec![
        (vec![1.0, 2.0], vec![0]),
        (vec![2.0, 1.0], vec![1]),
        (vec![0.5, 3.0], vec![2]),
    ]);
    let service = build_service(&data, 2, false);
    let pref = Preference::from_dims(vec![ImplicitPreference::new([0]).unwrap()]);

    let token = skyline_core::CancelToken::new();
    token.cancel();
    let deadline = Deadline::none().with_cancel(token);
    assert_eq!(
        service.serve_deadline(&pref, &deadline).unwrap_err(),
        SkylineError::DeadlineExceeded
    );
    assert_eq!(service.cache_len(), 0, "cancelled results are never cached");
    assert_eq!(service.stats().deadline_misses, 1);
    assert!(
        service.quarantined_shards().is_empty(),
        "cancellation is not a shard fault"
    );

    // The same request without the token answers (and caches) normally.
    let served = service.serve(&pref).unwrap();
    assert!(!served.cache_hit);
    assert_eq!(service.cache_len(), 1);

    // A cancelled request fails fast even when the answer is sitting in the cache —
    // returning an answer to a caller that revoked the request is wrong.
    let token = skyline_core::CancelToken::new();
    token.cancel();
    assert_eq!(
        service
            .serve_deadline(&pref, &Deadline::none().with_cancel(token))
            .unwrap_err(),
        SkylineError::DeadlineExceeded
    );
}

/// A panic inside a *background* build (the shared pool) quarantines its shard: the pool
/// worker survives (its drop guard releases the slot), the service keeps answering degraded
/// under a tolerant policy, and the shard heals through the serve-driven backoff rebuild.
#[test]
fn background_build_panic_quarantines_then_recovers() {
    let config = ExperimentConfig {
        n: 240,
        numeric_dims: 2,
        nominal_dims: 2,
        cardinality: 6,
        theta: 1.0,
        pref_order: 2,
        distribution: Distribution::AntiCorrelated,
        seed: 61,
    };
    let data = Arc::new(config.generate_dataset());
    let template = config.template(&data);
    let service = ShardedService::build(
        &data,
        template.clone(),
        EngineConfig::AdaptiveSfs,
        ShardedConfig {
            shards: 3,
            workers: 2,
            degrade: DegradePolicy::Tolerate { max_degraded: 1 },
            recovery: RecoveryPolicy {
                max_attempts: 5,
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(20),
            },
            maintenance: Some(MaintenancePolicy {
                dead_row_ratio: 0.01,
                max_mutations_since_rebuild: u64::MAX,
                poll_interval: Duration::from_millis(5),
            }),
            build_threads: 1,
            max_in_flight_builds: 1,
            ..ShardedConfig::default()
        },
    )
    .unwrap();
    let mut generator = QueryGenerator::new(67);
    let pref = generator.random_preference(data.schema(), &template, 2, None);

    // The victim shard's next background build panics. Deleting one of its rows makes the
    // pool's policy due; the nudge comes from the mutation itself.
    let victim = 1;
    service.fault_injector().panic_on_build(victim, 1);
    assert!(service
        .delete_row(GlobalRowId {
            shard: victim,
            row: 0
        })
        .unwrap());

    let deadline = Instant::now() + Duration::from_secs(10);
    while !service.quarantined_shards().contains(&victim) {
        assert!(
            Instant::now() < deadline,
            "build panic never quarantined the shard"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // While quarantined, the service answers degraded — never errors, never caches partials.
    let during = service.serve(&pref).unwrap();
    if during.is_degraded() {
        assert_eq!(during.degraded_shards, vec![victim]);
        assert_eq!(service.cache_len(), 0);
    }

    // The serve-driven backoff rebuild heals it (the failpoint consumed itself above), and
    // the dead row it was quarantined with gets reclaimed by that same rebuild.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let served = service.serve(&pref).unwrap();
        if !served.is_degraded() && service.quarantined_shards().is_empty() {
            break;
        }
        assert!(Instant::now() < deadline, "shard never recovered");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(service.shard(victim).read().dead_rows(), 0);
    let healed = service.serve(&pref).unwrap();
    assert!(!healed.is_degraded());
}
