//! Service-level lifecycle behavior: the background maintenance worker, the remap-aware
//! result cache, the single-flight miss latch, and the surfaced lifecycle metrics.

use skyline::prelude::*;
use skyline_service::{ServiceConfig, SkylineService};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_engine(config: EngineConfig) -> SharedEngine {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::nominal("g", NominalDomain::anonymous(3)),
    ])
    .unwrap();
    let mut data = Dataset::empty(schema.clone());
    for (x, g) in [(3.0, 0), (2.0, 1), (1.0, 2), (5.0, 0), (4.0, 1), (6.0, 2)] {
        data.push_row_ids(&[x], &[g]).unwrap();
    }
    let template = Template::empty(&schema);
    SharedEngine::new(SkylineEngine::build(Arc::new(data), template, config).unwrap())
}

/// A generation swap translates cached entries through the published remap instead of
/// cold-starting the cache: the very first serve after the swap is a (remapped) hit.
#[test]
fn generation_swaps_keep_the_cache_warm_via_the_remap() {
    let engine = small_engine(EngineConfig::AdaptiveSfs);
    let service = SkylineService::new(engine.clone());
    let pref = Preference::from_dims(vec![ImplicitPreference::new([0]).unwrap()]);

    // Create a tombstone, then cache the answer at the pre-swap epoch.
    service.delete_row(3).unwrap();
    let before = service.serve(&pref).unwrap();
    assert!(!before.cache_hit);
    assert!(service.serve(&pref).unwrap().cache_hit);

    // The swap renumbers every row id …
    assert!(service.force_rebuild().unwrap());
    assert_eq!(service.stats().rebuilds, 1);
    assert_eq!(service.stats().reclaimed_rows, 1);

    // … yet the cached entry survives, translated — no engine run, ids in the new space.
    let after = service.serve(&pref).unwrap();
    assert!(after.cache_hit, "the swap must not cold-start the cache");
    assert_eq!(service.stats().remapped_hits, 1);
    assert_eq!(service.stats().misses, 1, "still only the original miss");
    assert_eq!(
        after.outcome.skyline,
        engine.read().query(&pref).unwrap().skyline,
        "translated ids must match a fresh evaluation in the new id space"
    );
    assert_ne!(after.epoch, before.epoch);

    // A later *mutation* invalidates as usual — translation never bridges real changes.
    service.insert_row(&[0.1], &[0]).unwrap();
    assert!(!service.serve(&pref).unwrap().cache_hit);
}

/// Concurrent cold misses for the same canonical key run the engine once: the single-flight
/// latch makes the rest wait and hit the leader's freshly cached entry.
#[test]
fn concurrent_cold_misses_are_collapsed_to_one_engine_run() {
    const THREADS: usize = 8;
    // A big enough engine that the leader's query visibly outlasts the followers' join.
    let config = ExperimentConfig {
        n: 2_000,
        ..ExperimentConfig::paper_default()
    };
    let data = Arc::new(config.generate_dataset());
    let template = config.template(&data);
    let schema = data.schema().clone();
    let engine = SkylineEngine::build(data, template.clone(), EngineConfig::AdaptiveSfs).unwrap();
    let service = SkylineService::new(engine);
    let mut generator = config.query_generator();
    let pref = generator.random_preference(&schema, &template, 3, None);

    let barrier = std::sync::Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                barrier.wait();
                let served = service.serve(&pref).unwrap();
                assert_eq!(served.epoch, DatasetEpoch::INITIAL);
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.served(), THREADS as u64);
    assert_eq!(stats.misses, 1, "one engine run for the whole wave");
    assert_eq!(stats.hits, THREADS as u64 - 1);
    assert!(
        stats.coalesced >= 1,
        "at least one thread must have waited on the flight"
    );
}

/// End to end: a mutated hybrid service falls back to Adaptive SFS, the background worker
/// rebuilds under its policy, and tree-served queries come back — observable through the
/// service metrics and the served outcome's provenance.
#[test]
fn background_worker_restores_tree_served_queries() {
    let engine = small_engine(EngineConfig::Hybrid { top_k: 3 });
    let service = SkylineService::with_config(
        engine.clone(),
        ServiceConfig {
            maintenance: Some(MaintenancePolicy {
                dead_row_ratio: 1.0, // only the mutation trigger may fire
                max_mutations_since_rebuild: 2,
                poll_interval: Duration::from_millis(5),
            }),
            ..ServiceConfig::default()
        },
    );
    let pref = Preference::from_dims(vec![ImplicitPreference::new([0]).unwrap()]);
    assert_eq!(
        service.serve(&pref).unwrap().outcome.method,
        MethodUsed::IpoTree
    );

    // Two mutations cross the policy threshold; the service nudges the worker itself.
    service.insert_row(&[0.5], &[0]).unwrap();
    service.delete_row(4).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    while service.stats().rebuilds == 0 {
        assert!(Instant::now() < deadline, "worker never rebuilt");
        std::thread::sleep(Duration::from_millis(2));
    }
    let served = service.serve(&pref).unwrap();
    assert_eq!(
        served.outcome.method,
        MethodUsed::IpoTree,
        "the re-materialized tree serves again"
    );
    assert!(engine.read().serves_from_tree(&pref));
    let stats = service.stats();
    assert!(stats.rebuilds >= 1);
    assert!(stats.reclaimed_rows >= 1);
    {
        let engine = engine.read();
        let block = engine.point_block().unwrap();
        assert_eq!(block.len(), block.live_count());
    }
    // Dropping the service joins the worker thread (no panic, no leak).
    drop(service);
}

/// `force_rebuild` works with and without a worker, and the answers stay correct across the
/// swap for every caller.
#[test]
fn forced_rebuilds_preserve_answers() {
    let engine = small_engine(EngineConfig::Hybrid { top_k: 3 });
    let service = SkylineService::new(engine.clone());
    let schema = engine.read().dataset().schema().clone();
    let prefs: Vec<Preference> = (0..3u16)
        .map(|v| Preference::from_dims(vec![ImplicitPreference::new([v]).unwrap()]))
        .collect();

    service.delete_row(0).unwrap();
    let before: Vec<Vec<(i64, ValueId)>> = prefs
        .iter()
        .map(|p| fingerprints(&engine, &service.serve(p).unwrap().outcome.skyline))
        .collect();
    assert!(service.force_rebuild().unwrap());
    let after: Vec<Vec<(i64, ValueId)>> = prefs
        .iter()
        .map(|p| fingerprints(&engine, &service.serve(p).unwrap().outcome.skyline))
        .collect();
    assert_eq!(before, after, "the swap must not change any answer's rows");
    let _ = schema;

    fn fingerprints(engine: &SharedEngine, skyline: &[PointId]) -> Vec<(i64, ValueId)> {
        let engine = engine.read();
        let mut v: Vec<(i64, ValueId)> = skyline
            .iter()
            .map(|&p| {
                (
                    engine.dataset().numeric(p, 0) as i64,
                    engine.dataset().nominal(p, 0),
                )
            })
            .collect();
        v.sort_unstable();
        v
    }
}
