//! Overload behavior: bounded admission sheds excess load, deadlines cut off slow
//! scatters, and the acceptance scenario — 10× offered load plus an injected shard panic —
//! never stops answering.
//!
//! Slowness is injected deterministically through the `delay-on-shard-query` failpoint, so
//! none of these tests depend on real queries being slow.

use skyline::prelude::*;
use skyline_core::Deadline;
use skyline_service::{DegradePolicy, RecoveryPolicy, ShardedConfig, ShardedService};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn experiment(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        n: 200,
        numeric_dims: 2,
        nominal_dims: 2,
        cardinality: 6,
        theta: 1.0,
        pref_order: 2,
        distribution: Distribution::AntiCorrelated,
        seed,
    }
}

fn build(config: ShardedConfig) -> (ShardedService, Vec<Preference>) {
    let experiment = experiment(71);
    let data = Arc::new(experiment.generate_dataset());
    let template = experiment.template(&data);
    let service =
        ShardedService::build(&data, template.clone(), EngineConfig::AdaptiveSfs, config).unwrap();
    let mut generator = QueryGenerator::new(73);
    let prefs = (0..6)
        .map(|_| generator.random_preference(data.schema(), &template, 2, None))
        .collect();
    (service, prefs)
}

/// Under `FailClosed`, a shard that cannot answer before the deadline fails the request
/// with `DeadlineExceeded` — counted, uncached, and *not* treated as a shard fault.
#[test]
fn injected_delay_misses_deadline_fail_closed() {
    let (service, prefs) = build(ShardedConfig {
        shards: 2,
        workers: 2,
        degrade: DegradePolicy::FailClosed,
        ..ShardedConfig::default()
    });
    service
        .fault_injector()
        .delay_shard_query(0, Duration::from_millis(30));

    let deadline = Deadline::within(Duration::from_millis(5));
    assert_eq!(
        service.serve_deadline(&prefs[0], &deadline).unwrap_err(),
        SkylineError::DeadlineExceeded
    );
    assert_eq!(service.stats().deadline_misses, 1);
    assert_eq!(service.cache_len(), 0, "a missed deadline caches nothing");
    assert!(
        service.quarantined_shards().is_empty(),
        "slow is not broken: deadline misses never quarantine"
    );

    // Clearing the failpoint, the very same request answers completely and caches.
    // (A `Deadline` is an absolute instant — a reused one would already be expired.)
    service.fault_injector().clear();
    let served = service
        .serve_deadline(&prefs[0], &Deadline::within(Duration::from_secs(5)))
        .unwrap();
    assert!(!served.is_degraded());
    assert_eq!(service.cache_len(), 1);
}

/// Under a tolerant policy, the slow shard is reported degraded for this request only —
/// it stays in service (no quarantine) and the partial answer stays out of the cache.
#[test]
fn injected_delay_degrades_tolerant_service_without_quarantine() {
    let (service, prefs) = build(ShardedConfig {
        shards: 3,
        workers: 3,
        degrade: DegradePolicy::Tolerate { max_degraded: 3 },
        ..ShardedConfig::default()
    });
    service
        .fault_injector()
        .delay_shard_query(0, Duration::from_millis(30));

    let served = service
        .serve_deadline(&prefs[0], &Deadline::within(Duration::from_millis(8)))
        .unwrap();
    assert!(served.is_degraded());
    assert!(served.degraded_shards.contains(&0));
    assert_eq!(service.cache_len(), 0, "partial answers are never cached");
    assert!(service.quarantined_shards().is_empty());
    let partial = served.partial().unwrap();
    assert_eq!(partial.degraded_shards, served.degraded_shards);

    service.fault_injector().clear();
    let complete = service.serve(&prefs[0]).unwrap();
    assert!(!complete.is_degraded());
    assert_eq!(service.cache_len(), 1);
}

/// A full admission queue rejects the newest request with `Overloaded` instead of letting
/// it pile up; the permit releases when the in-flight serve finishes.
#[test]
fn full_admission_queue_sheds_newest_request() {
    let (service, prefs) = build(ShardedConfig {
        shards: 2,
        workers: 2,
        admission_depth: 1,
        ..ShardedConfig::default()
    });
    let service = Arc::new(service);
    service
        .fault_injector()
        .delay_shard_query(0, Duration::from_millis(150));
    service
        .fault_injector()
        .delay_shard_query(1, Duration::from_millis(150));

    // One slow request occupies the only admission slot…
    let occupant = {
        let service = Arc::clone(&service);
        let pref = prefs[0].clone();
        std::thread::spawn(move || service.serve(&pref).unwrap())
    };
    let waited = Instant::now();
    while service.stats().queue_depth == 0 {
        assert!(
            waited.elapsed() < Duration::from_secs(10),
            "occupant never admitted"
        );
        std::thread::yield_now();
    }

    // …so the next arrival is shed immediately, without touching cache or shards.
    assert_eq!(
        service.serve(&prefs[1]).unwrap_err(),
        SkylineError::Overloaded
    );
    assert_eq!(service.stats().shed, 1);

    let served = occupant.join().unwrap();
    assert!(!served.is_degraded());
    assert_eq!(service.stats().queue_depth, 0, "permit released on finish");
    assert!(service.serve(&prefs[1]).is_ok(), "capacity freed up again");
}

/// The acceptance scenario: 10× more client threads than admission slots hammer the
/// service while a failpoint panics one shard mid-storm. Every request resolves to a
/// complete answer, a flagged degraded answer, or a clean `Overloaded` rejection — the
/// service never errors otherwise, never wedges, and the quarantined shard returns after
/// the backoff rebuild.
#[test]
fn ten_x_overload_with_shard_panic_keeps_answering() {
    const DEPTH: usize = 4;
    const CLIENTS: usize = DEPTH * 10;
    const REQUESTS_PER_CLIENT: usize = 12;

    let (service, prefs) = build(ShardedConfig {
        shards: 4,
        workers: 2,
        admission_depth: DEPTH,
        degrade: DegradePolicy::Tolerate { max_degraded: 4 },
        recovery: RecoveryPolicy {
            max_attempts: 8,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
        },
        ..ShardedConfig::default()
    });
    let service = Arc::new(service);
    // Keep every miss measurably slow so the clients genuinely overlap in the queue.
    service
        .fault_injector()
        .delay_shard_query(3, Duration::from_millis(2));
    // And panic one shard partway into the storm.
    service.fault_injector().panic_on_shard_query(1, 1);

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let complete = Arc::new(AtomicUsize::new(0));
    let degraded = Arc::new(AtomicUsize::new(0));
    let shed = Arc::new(AtomicUsize::new(0));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let service = Arc::clone(&service);
            let prefs = prefs.clone();
            let barrier = Arc::clone(&barrier);
            let complete = Arc::clone(&complete);
            let degraded = Arc::clone(&degraded);
            let shed = Arc::clone(&shed);
            std::thread::spawn(move || {
                barrier.wait();
                for r in 0..REQUESTS_PER_CLIENT {
                    match service.serve(&prefs[(c + r) % prefs.len()]) {
                        Ok(served) if served.is_degraded() => {
                            assert!(!served.degraded_shards.is_empty());
                            degraded.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            complete.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(SkylineError::Overloaded) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected serve error under overload: {other}"),
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().unwrap();
    }

    let total = complete.load(Ordering::Relaxed)
        + degraded.load(Ordering::Relaxed)
        + shed.load(Ordering::Relaxed);
    assert_eq!(
        total,
        CLIENTS * REQUESTS_PER_CLIENT,
        "every request resolved"
    );
    assert!(
        complete.load(Ordering::Relaxed) > 0,
        "the service kept answering under overload"
    );
    assert!(
        shed.load(Ordering::Relaxed) > 0,
        "10x offered load over a depth-{DEPTH} queue must shed"
    );
    let stats = service.stats();
    assert_eq!(stats.shed, shed.load(Ordering::Relaxed) as u64);
    assert_eq!(stats.queue_depth, 0, "all permits released after the storm");

    // After the storm: disarm the failpoints and drive serves until the panicked shard's
    // backoff rebuild completes — the service converges back to complete answers.
    service.fault_injector().clear();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let served = service.serve(&prefs[0]).unwrap();
        if !served.is_degraded() && service.quarantined_shards().is_empty() {
            break;
        }
        assert!(Instant::now() < deadline, "panicked shard never recovered");
        std::thread::sleep(Duration::from_millis(2));
    }
}
