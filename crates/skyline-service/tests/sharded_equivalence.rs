//! Scatter-gather equivalence: a [`ShardedService`] answers every query with exactly the
//! same skyline (as a multiset of row *values*) as a single unsharded engine over the same
//! live rows — for every mutable engine configuration, both partition schemes, any shard
//! count from 1 to 8, and any interleaving of inserts, deletes and generation rebuilds.
//!
//! Row ids are not comparable across shard counts (each shard numbers its own rows, and
//! compactions renumber them independently), but the skyline's value multiset is fully
//! determined by the live rows: two rows with identical values either both survive (neither
//! strictly dominates the other) or both fall to the same dominator.

use proptest::prelude::*;
use skyline::prelude::*;
use skyline_service::{GlobalRowId, ShardPartition, ShardedConfig, ShardedService};
use std::sync::Arc;

const CARD: usize = 3;

#[derive(Debug, Clone)]
enum Update {
    Insert {
        numeric: Vec<f64>,
        nominal: Vec<ValueId>,
    },
    Delete {
        index: usize,
    },
    Rebuild,
}

fn update_strategy() -> impl Strategy<Value = Update> {
    prop_oneof![
        (
            proptest::collection::vec(0i32..6, 2),
            proptest::collection::vec(0..(CARD as ValueId), 1),
        )
            .prop_map(|(n, c)| Update::Insert {
                numeric: n.into_iter().map(f64::from).collect(),
                nominal: c,
            }),
        (0usize..64).prop_map(|index| Update::Delete { index }),
        Just(Update::Rebuild),
    ]
}

type Rows = Vec<(Vec<f64>, Vec<ValueId>)>;

fn rows_strategy() -> impl Strategy<Value = Rows> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0i32..6, 2)
                .prop_map(|v| v.into_iter().map(f64::from).collect::<Vec<f64>>()),
            proptest::collection::vec(0..(CARD as ValueId), 1),
        ),
        1..16,
    )
}

fn initial_dataset(rows: &[(Vec<f64>, Vec<ValueId>)]) -> Dataset {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::numeric("y"),
        Dimension::nominal("g", NominalDomain::anonymous(CARD)),
    ])
    .unwrap();
    let mut data = Dataset::empty(schema);
    for (numeric, nominal) in rows {
        data.push_row_ids(numeric, nominal).unwrap();
    }
    data
}

/// A row's identity across engines: its raw values (numeric bit patterns + nominal ids).
type ValueKey = (Vec<u64>, Vec<ValueId>);

fn value_key(data: &Dataset, p: PointId) -> ValueKey {
    let schema = data.schema();
    (
        (0..schema.numeric_count())
            .map(|j| data.numeric(p, j).to_bits())
            .collect(),
        (0..schema.nominal_count())
            .map(|j| data.nominal(p, j))
            .collect(),
    )
}

fn unsharded_values(engine: &SkylineEngine, pref: &Preference) -> Vec<ValueKey> {
    let mut values: Vec<ValueKey> = engine
        .query(pref)
        .unwrap()
        .skyline
        .iter()
        .map(|&p| value_key(engine.dataset(), p))
        .collect();
    values.sort();
    values
}

fn sharded_values(service: &ShardedService, pref: &Preference) -> Vec<ValueKey> {
    let served = service.serve(pref).unwrap();
    let mut values: Vec<ValueKey> = served
        .outcome
        .skyline
        .iter()
        .map(|g| value_key(service.shard(g.shard).read().dataset(), g.row))
        .collect();
    values.sort();
    values
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// The sharded service is observationally equal to the unsharded engine under churn.
    #[test]
    fn sharded_service_matches_unsharded_engine(
        initial in rows_strategy(),
        updates in proptest::collection::vec(update_strategy(), 0..20),
        shards in 1usize..=8,
        range_partition in any::<bool>(),
        query_choices in proptest::sample::subsequence(
            (0..CARD as ValueId).collect::<Vec<_>>(), 0..=2
        ).prop_shuffle(),
    ) {
        let data = Arc::new(initial_dataset(&initial));
        let template = Template::empty(data.schema());
        let pref = Preference::from_dims(vec![ImplicitPreference::new(query_choices).unwrap()]);
        let partition = if range_partition {
            // Numeric values live in 0..6: evenly spaced ascending split points.
            ShardPartition::RangeNumeric {
                dim: 0,
                bounds: (1..shards).map(|i| 6.0 * i as f64 / shards as f64).collect(),
            }
        } else {
            ShardPartition::HashNominal { dim: 0 }
        };

        for config in [
            EngineConfig::SfsD,
            EngineConfig::AdaptiveSfs,
            EngineConfig::Hybrid { top_k: 2 },
        ] {
            let reference = SharedEngine::new(
                SkylineEngine::build(data.clone(), template.clone(), config).unwrap(),
            );
            let service = ShardedService::build(
                &data,
                template.clone(),
                config,
                ShardedConfig {
                    shards,
                    partition: partition.clone(),
                    workers: 2,
                    ..ShardedConfig::default()
                },
            )
            .unwrap();
            prop_assert_eq!(service.shard_count(), shards);

            // Logical rows in insertion order, each tracked under both id spaces
            // (None = deleted, or reclaimed by a compaction).
            let mut rows: Vec<(Option<PointId>, Option<GlobalRowId>)> =
                ShardedService::partition_rows(&partition, shards, &data)
                    .into_iter()
                    .enumerate()
                    .map(|(p, g)| (Some(p as PointId), Some(g)))
                    .collect();

            for update in &updates {
                match update {
                    Update::Insert { numeric, nominal } => {
                        reference.write().insert_row(numeric, nominal).unwrap();
                        let row = (reference.read().dataset().len() - 1) as PointId;
                        let global = service.insert_row(numeric, nominal).unwrap();
                        rows.push((Some(row), Some(global)));
                    }
                    Update::Delete { index } => {
                        let target = index % rows.len();
                        if let (Some(p), Some(g)) = rows[target] {
                            // delete_row returns the (possibly moved) epoch; both sides
                            // must agree on whether the target was still live.
                            let before = reference.read().epoch();
                            let after = reference.write().delete_row(p).unwrap();
                            let sharded_live = service.delete_row(g).unwrap();
                            prop_assert_eq!(after != before, sharded_live);
                            rows[target] = (None, None);
                        }
                    }
                    Update::Rebuild => {
                        let published = reference.rebuild_now().unwrap();
                        for (p, _) in rows.iter_mut() {
                            *p = p.and_then(|old| {
                                published.remap.translate_ids(&[old]).map(|v| v[0])
                            });
                        }
                        for s in 0..service.shard_count() {
                            prop_assert!(service.force_rebuild_shard(s).unwrap());
                            let remap = service.shard(s).read().last_remap().unwrap().clone();
                            for (_, g) in rows.iter_mut() {
                                *g = g.and_then(|old| {
                                    if old.shard != s {
                                        return Some(old);
                                    }
                                    remap.remap.translate_ids(&[old.row]).map(|v| GlobalRowId {
                                        shard: s,
                                        row: v[0],
                                    })
                                });
                            }
                        }
                        // Equivalence holds at every intermediate generation too.
                        prop_assert_eq!(
                            sharded_values(&service, &pref),
                            unsharded_values(&reference.read(), &pref),
                            "mid-stream divergence, config {:?}",
                            config
                        );
                    }
                }
            }

            let expected = unsharded_values(&reference.read(), &pref);
            prop_assert_eq!(
                sharded_values(&service, &pref),
                expected.clone(),
                "config {:?} shards {} partition {:?}",
                config,
                shards,
                &partition
            );
            // Serving again hits the epoch-vector cache and answers identically.
            let again = service.serve(&pref).unwrap();
            prop_assert!(again.cache_hit);
            prop_assert_eq!(sharded_values(&service, &pref), expected);
            // No rows were lost to the bookkeeping: live counts agree.
            prop_assert_eq!(service.live_rows(), reference.read().live_rows());
        }
    }
}
