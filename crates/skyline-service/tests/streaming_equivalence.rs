//! Streaming equivalence: the progressive result path is observationally equal to the batch
//! path — for every mutable engine configuration, any shard count from 1 to 6, and with
//! mutations landing mid-stream.
//!
//! Four properties per case:
//!
//! * **no retraction** — a row is emitted at most once, and every emitted row is in the
//!   final answer (there is no "tentative" output to take back);
//! * **score order** — rows arrive in ascending query-score order (the SFS presort order
//!   that makes progressive emission sound in the first place);
//! * **completeness** — the emitted set equals the batch skyline at the stream's pinned
//!   epoch;
//! * **snapshot isolation** — a mutation racing the stream does not change its answer: the
//!   stream serves the generation it started on.
//!
//! The suite is kernel-agnostic; CI runs it under both `SKYLINE_KERNEL` modes.

use proptest::prelude::*;
use skyline::prelude::*;
use skyline_core::score::ScoreFn;
use skyline_service::{ServiceConfig, ShardedConfig, ShardedService, SkylineService};
use std::sync::Arc;

const CARD: usize = 3;

type Rows = Vec<(Vec<f64>, Vec<ValueId>)>;

fn rows_strategy() -> impl Strategy<Value = Rows> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0i32..6, 2)
                .prop_map(|v| v.into_iter().map(f64::from).collect::<Vec<f64>>()),
            proptest::collection::vec(0..(CARD as ValueId), 1),
        ),
        1..16,
    )
}

fn initial_dataset(rows: &[(Vec<f64>, Vec<ValueId>)]) -> Dataset {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::numeric("y"),
        Dimension::nominal("g", NominalDomain::anonymous(CARD)),
    ])
    .unwrap();
    let mut data = Dataset::empty(schema);
    for (numeric, nominal) in rows {
        data.push_row_ids(numeric, nominal).unwrap();
    }
    data
}

/// A row's identity across engines: its raw values (numeric bit patterns + nominal ids).
type ValueKey = (Vec<u64>, Vec<ValueId>);

fn value_key(data: &Dataset, p: PointId) -> ValueKey {
    let schema = data.schema();
    (
        (0..schema.numeric_count())
            .map(|j| data.numeric(p, j).to_bits())
            .collect(),
        (0..schema.nominal_count())
            .map(|j| data.nominal(p, j))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Progressive serving — single-engine and sharded — matches batch answers everywhere.
    #[test]
    fn streaming_matches_batch_for_every_config_and_shard_count(
        initial in rows_strategy(),
        shards in 1usize..=6,
        mutate_mid_stream in any::<bool>(),
        query_choices in proptest::sample::subsequence(
            (0..CARD as ValueId).collect::<Vec<_>>(), 0..=2
        ).prop_shuffle(),
    ) {
        let data = Arc::new(initial_dataset(&initial));
        let template = Template::empty(data.schema());
        let pref = Preference::from_dims(vec![ImplicitPreference::new(query_choices).unwrap()]);
        let score = ScoreFn::for_preference(data.schema(), &pref).unwrap();

        for config in [
            EngineConfig::SfsD,
            EngineConfig::AdaptiveSfs,
            EngineConfig::Hybrid { top_k: 2 },
        ] {
            // The ground truth at the initial generation, in the initial id space.
            let reference =
                SkylineEngine::build(data.clone(), template.clone(), config).unwrap();
            let expected_ids = reference.query(&pref).unwrap().skyline;
            let mut expected_values: Vec<ValueKey> =
                expected_ids.iter().map(|&p| value_key(&data, p)).collect();
            expected_values.sort();

            // --- Single-engine service stream ---
            let engine = SharedEngine::new(
                SkylineEngine::build(data.clone(), template.clone(), config).unwrap(),
            );
            let service = SkylineService::with_config(
                engine,
                ServiceConfig { workers: 1, ..ServiceConfig::default() },
            );
            let mut stream = service.serve_streaming(&pref).unwrap();
            let pinned = stream.epoch();
            let mut rows: Vec<PointId> = Vec::new();
            let mut mutated = false;
            while let Some(p) = stream.next_row().unwrap() {
                prop_assert!(!rows.contains(&p), "row {} emitted twice ({:?})", p, config);
                rows.push(p);
                if mutate_mid_stream && !mutated {
                    mutated = true;
                    // A dominating row lands mid-stream; the pinned snapshot must not see it.
                    service.insert_row(&[-1.0, -1.0], &[0]).unwrap();
                    prop_assert!(service.epoch() != pinned);
                }
            }
            let scores: Vec<f64> = rows.iter().map(|&p| score.score(&data, p)).collect();
            prop_assert!(
                scores.windows(2).all(|w| w[0] <= w[1]),
                "score order violated ({:?}): {:?}",
                config,
                scores
            );
            rows.sort_unstable();
            prop_assert_eq!(&rows, &expected_ids, "single-engine set mismatch ({:?})", config);

            // --- Sharded service stream ---
            let sharded = ShardedService::build(
                &data,
                template.clone(),
                config,
                ShardedConfig { shards, workers: 2, ..ShardedConfig::default() },
            )
            .unwrap();
            let mut stream = sharded.serve_streaming(&pref).unwrap();
            let mut global: Vec<skyline_service::GlobalRowId> = Vec::new();
            let mut mutated = false;
            while let Some(g) = stream.next_row().unwrap() {
                prop_assert!(!global.contains(&g), "row {:?} emitted twice ({:?})", g, config);
                global.push(g);
                if mutate_mid_stream && !mutated {
                    mutated = true;
                    sharded.insert_row(&[-1.0, -1.0], &[0]).unwrap();
                }
            }
            // Ascending global score order (ids appended post-stream keep earlier ids
            // stable, so scoring against the live shard datasets is sound).
            let scores: Vec<f64> = global
                .iter()
                .map(|g| score.score(sharded.shard(g.shard).read().dataset(), g.row))
                .collect();
            prop_assert!(
                scores.windows(2).all(|w| w[0] <= w[1]),
                "sharded score order violated ({:?}, {} shards): {:?}",
                config,
                shards,
                scores
            );
            let mut values: Vec<ValueKey> = global
                .iter()
                .map(|g| value_key(sharded.shard(g.shard).read().dataset(), g.row))
                .collect();
            values.sort();
            prop_assert_eq!(
                &values,
                &expected_values,
                "sharded set mismatch ({:?}, {} shards)",
                config,
                shards
            );
        }
    }
}
