//! Sorted-list snapshot codec: the `SECTION_ASFS_ENTRIES` payload.
//!
//! The expensive part of Adaptive SFS preprocessing is computing the template skyline and
//! score-sorting it. A snapshot stores the finished product — the `(score, point)` entries
//! already in ascending `(score.total_cmp, point)` order — so
//! [`AdaptiveSfs::from_sorted_entries`](crate::AdaptiveSfs::from_sorted_entries) can
//! rehydrate the structure without re-scoring or re-sorting: decode, verify the order
//! invariant, rebuild the cheap `O(skyline · dims)` value index, done.
//!
//! Scores are stored as raw IEEE-754 bits ([`ByteWriter::put_f64_slice`]), so the decoded
//! order compares identically under `total_cmp` — including NaN payloads — and the
//! rehydrated binary-search maintenance path behaves bit-for-bit like the original.

use crate::sorted_list::ScoredEntry;
use skyline_core::snapshot::{ByteReader, ByteWriter, SnapshotError};

/// Serializes the sorted list (count, the score column, then the point column).
pub fn encode_entries(entries: &[ScoredEntry]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(entries.len() as u64);
    for e in entries {
        w.put_f64(e.score);
    }
    for e in entries {
        w.put_u32(e.point);
    }
    w.into_inner()
}

/// Decodes a payload written by [`encode_entries`].
///
/// `max_entries` bounds the claimed count (a skyline cannot exceed the row count), and the
/// decoded list must already be strictly ascending under the [`ScoredEntry`] total order —
/// an out-of-order or duplicated entry means the payload was not produced by
/// [`encode_entries`] over a real sorted list, so it is rejected rather than re-sorted.
pub fn decode_entries(bytes: &[u8], max_entries: usize) -> Result<Vec<ScoredEntry>, SnapshotError> {
    let mut r = ByteReader::new(bytes);
    let count = r.get_u64()? as usize;
    if count > max_entries {
        return Err(SnapshotError::Corrupt(format!(
            "sorted list claims {count} entries but at most {max_entries} rows exist"
        )));
    }
    let scores = r.get_f64_vec(count)?;
    let mut entries = Vec::with_capacity(count);
    for score in scores {
        entries.push(ScoredEntry::new(r.get_u32()?, score));
    }
    r.expect_end()?;
    if entries.windows(2).any(|w| w[0] >= w[1]) {
        return Err(SnapshotError::Corrupt(
            "sorted list entries are not strictly ascending by (score, point)".into(),
        ));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_round_trip_bit_for_bit() {
        let entries = vec![
            ScoredEntry::new(4, f64::NEG_INFINITY),
            ScoredEntry::new(2, -0.0),
            ScoredEntry::new(0, 0.0),
            ScoredEntry::new(7, 0.0),
            ScoredEntry::new(1, 3.5),
            ScoredEntry::new(9, f64::NAN),
        ];
        assert!(entries.windows(2).all(|w| w[0] < w[1]));
        let bytes = encode_entries(&entries);
        let decoded = decode_entries(&bytes, 16).unwrap();
        assert_eq!(decoded.len(), entries.len());
        for (d, e) in decoded.iter().zip(&entries) {
            assert_eq!(d.point, e.point);
            assert_eq!(d.score.to_bits(), e.score.to_bits());
        }
    }

    #[test]
    fn empty_list_round_trips() {
        let bytes = encode_entries(&[]);
        assert_eq!(decode_entries(&bytes, 0).unwrap(), vec![]);
    }

    #[test]
    fn decode_rejects_overclaimed_counts() {
        let bytes = encode_entries(&[ScoredEntry::new(0, 1.0), ScoredEntry::new(1, 2.0)]);
        assert!(matches!(
            decode_entries(&bytes, 1),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn decode_rejects_unsorted_and_duplicate_entries() {
        let unsorted = {
            let mut w = skyline_core::snapshot::ByteWriter::new();
            w.put_u64(2);
            w.put_f64(2.0);
            w.put_f64(1.0);
            w.put_u32(0);
            w.put_u32(1);
            w.into_inner()
        };
        assert!(matches!(
            decode_entries(&unsorted, 8),
            Err(SnapshotError::Corrupt(_))
        ));
        let duplicate = {
            let mut w = skyline_core::snapshot::ByteWriter::new();
            w.put_u64(2);
            w.put_f64(1.0);
            w.put_f64(1.0);
            w.put_u32(3);
            w.put_u32(3);
            w.into_inner()
        };
        assert!(matches!(
            decode_entries(&duplicate, 8),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn decode_rejects_truncations() {
        let bytes = encode_entries(&[ScoredEntry::new(0, 1.0), ScoredEntry::new(1, 2.0)]);
        for len in 0..bytes.len() {
            assert!(
                decode_entries(&bytes[..len], 8).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }
}
