//! # skyline-adaptive
//!
//! **Adaptive SFS** (Section 4 of *"Efficient Skyline Querying with Variable User Preferences
//! on Nominal Attributes"*): a progressive, low-preprocessing alternative to the IPO-tree.
//!
//! Preprocessing (Algorithm 3) computes the template skyline `SKY(R̃)` once and keeps it sorted
//! by a monotone preference score. At query time (Algorithm 4) only the points that carry a
//! value listed in the query preference change rank; they are re-inserted at their new
//! positions and a single elimination pass — which only ever tests points against the
//! re-ranked ones — produces `SKY(R̃′)`. Results stream out progressively in score order, and
//! the sorted list supports incremental maintenance when the underlying data changes.
//!
//! * [`asfs::AdaptiveSfs`] — the query structure (the paper's **SFS-A**), including the
//!   incremental-maintenance mode of Section 4.3: [`AdaptiveSfs::insert_row`] and
//!   [`AdaptiveSfs::delete_row`] update the sorted list and indexes in place (bumping the
//!   structure's [`skyline_core::DatasetEpoch`]), with periodic compaction back through the
//!   parallel build path.
//! * [`sorted_list`] — the scored entries behind the sorted list.
//! * [`index::SkylineValueIndex`] — per-dimension value → skyline-point lookup used to find
//!   the affected points without scanning the whole list.
//! * [`index::LiveRowIndex`] — value → live-row lookup over the whole dataset, which lets the
//!   delete path restrict its resurface scan to the deleted member's dominance region.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asfs;
pub mod index;
pub mod snapshot;
pub mod sorted_list;

pub use asfs::{
    AdaptiveSfs, EvalScratch, MaintenanceStats, PreprocessStats, ProgressiveScan, QueryScratch,
    QueryStats, ScanMode,
};
pub use index::{LiveRowIndex, SkylineValueIndex};
pub use sorted_list::ScoredEntry;
