//! # skyline-adaptive
//!
//! **Adaptive SFS** (Section 4 of *"Efficient Skyline Querying with Variable User Preferences
//! on Nominal Attributes"*): a progressive, low-preprocessing alternative to the IPO-tree.
//!
//! Preprocessing (Algorithm 3) computes the template skyline `SKY(R̃)` once and keeps it sorted
//! by a monotone preference score. At query time (Algorithm 4) only the points that carry a
//! value listed in the query preference change rank; they are re-inserted at their new
//! positions and a single elimination pass — which only ever tests points against the
//! re-ranked ones — produces `SKY(R̃′)`. Results stream out progressively in score order, and
//! the sorted list supports incremental maintenance when the underlying data changes.
//!
//! * [`asfs::AdaptiveSfs`] — the query structure over an immutable dataset (the paper's
//!   **SFS-A**).
//! * [`sorted_list`] — the scored, ordered container shared by the static and maintained
//!   variants.
//! * [`index::SkylineValueIndex`] — per-dimension value → skyline-point lookup used to find
//!   the affected points without scanning the whole list.
//! * [`maintenance::MaintainedAdaptiveSfs`] — an owning variant that keeps `SKY(R̃)` (and the
//!   sorted list) up to date under row insertions and deletions (Section 4.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asfs;
pub mod index;
pub mod maintenance;
pub mod sorted_list;

pub use asfs::{
    AdaptiveSfs, EvalScratch, PreprocessStats, ProgressiveScan, QueryScratch, QueryStats, ScanMode,
};
pub use index::SkylineValueIndex;
pub use maintenance::MaintainedAdaptiveSfs;
pub use sorted_list::{ScoredEntry, SortedList};
