//! Incremental maintenance (Section 4.3).
//!
//! "Another desirable property of adaptive SFS is that it allows incremental maintenance. …
//! After data is updated, the set `SKY(R̃)` is modified. The sorted list in the method is
//! altered by simple insertions or deletions. The time complexity is O(log n) for each such
//! update."
//!
//! [`MaintainedAdaptiveSfs`] owns its dataset and keeps the template skyline, the sorted list
//! and the per-dimension value index up to date as rows are inserted or deleted. Insertions
//! follow the cheap path above (a dominance check against the current skyline plus `O(log n)`
//! list updates). Deleting a skyline member is inherently more expensive because previously
//! dominated points may resurface; that path rescans the live points once.

use crate::asfs::{evaluate_query, EvalScratch, QueryStats, ScanMode};
use crate::index::SkylineValueIndex;
use crate::sorted_list::{ScoredEntry, SortedList};
use skyline_core::algo::sfs;
use skyline_core::score::ScoreFn;
use skyline_core::{
    Dataset, DominanceContext, PointId, Preference, Result, SkylineError, Template, ValueId,
};

/// An Adaptive-SFS structure that owns its dataset and supports row insertions and deletions.
#[derive(Debug, Clone)]
pub struct MaintainedAdaptiveSfs {
    data: Dataset,
    template: Template,
    template_score: ScoreFn,
    list: SortedList,
    index: SkylineValueIndex,
    deleted: Vec<bool>,
}

impl MaintainedAdaptiveSfs {
    /// Builds the structure, computing the initial template skyline with SFS.
    pub fn new(data: Dataset, template: Template) -> Result<Self> {
        let template_pref = template.implicit().cloned().ok_or_else(|| {
            SkylineError::InvalidArgument(
                "Adaptive SFS requires a template with an implicit form".into(),
            )
        })?;
        template_pref.validate(data.schema())?;
        let template_score = ScoreFn::for_preference(data.schema(), &template_pref)?;
        let ctx = DominanceContext::for_template(&data, &template)?;
        let all: Vec<PointId> = data.point_ids().collect();
        let skyline = sfs::skyline_sorted(&ctx, &template_score, &all);
        let list: SortedList = skyline
            .iter()
            .map(|&p| ScoredEntry::new(p, template_score.score(&data, p)))
            .collect();
        let index = SkylineValueIndex::build(&data, &skyline);
        let deleted = vec![false; data.len()];
        Ok(Self {
            data,
            template,
            template_score,
            list,
            index,
            deleted,
        })
    }

    /// The underlying dataset (including rows that have been logically deleted).
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// The template the structure maintains `SKY(R̃)` for.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// Number of live (non-deleted) rows.
    pub fn live_rows(&self) -> usize {
        self.deleted.iter().filter(|&&d| !d).count()
    }

    /// True when a row has been logically deleted.
    pub fn is_deleted(&self, p: PointId) -> bool {
        self.deleted.get(p as usize).copied().unwrap_or(true)
    }

    /// Current template skyline as sorted point ids.
    pub fn template_skyline(&self) -> Vec<PointId> {
        let mut ids = self.list.points_in_order();
        ids.sort_unstable();
        ids
    }

    /// Current size of the sorted list (`|SKY(R̃)|`).
    pub fn skyline_size(&self) -> usize {
        self.list.len()
    }

    /// Inserts a row (numeric values in numeric-index order, nominal value ids in
    /// nominal-index order) and updates the skyline structures. Returns the new row id.
    pub fn insert_row(&mut self, numeric: &[f64], nominal: &[ValueId]) -> Result<PointId> {
        let p = self.data.push_row_ids(numeric, nominal)?;
        self.deleted.push(false);
        let ctx = DominanceContext::for_template(&self.data, &self.template)?;

        // If an existing skyline member dominates the new point, the skyline is unchanged.
        let members = self.list.points_in_order();
        if members.iter().any(|&q| ctx.dominates(q, p)) {
            return Ok(p);
        }
        // Otherwise the new point joins the skyline and evicts the members it dominates.
        for &q in &members {
            if ctx.dominates(p, q) {
                let entry = ScoredEntry::new(q, self.template_score.score(&self.data, q));
                self.list.remove(&entry);
                self.index.remove(&self.data, q);
            }
        }
        self.list.insert(ScoredEntry::new(
            p,
            self.template_score.score(&self.data, p),
        ));
        self.index.insert(&self.data, p);
        Ok(p)
    }

    /// Logically deletes a row. Returns `true` when the row was live before the call.
    ///
    /// Deleting a non-skyline row is `O(1)`; deleting a skyline member triggers one scan of
    /// the live rows to find the points that resurface.
    pub fn delete_row(&mut self, p: PointId) -> Result<bool> {
        if (p as usize) >= self.data.len() {
            return Err(SkylineError::InvalidArgument(format!(
                "row {p} does not exist"
            )));
        }
        if self.deleted[p as usize] {
            return Ok(false);
        }
        self.deleted[p as usize] = true;
        let entry = ScoredEntry::new(p, self.template_score.score(&self.data, p));
        if !self.list.remove(&entry) {
            // Not a skyline member: nothing else changes.
            return Ok(true);
        }
        self.index.remove(&self.data, p);

        // Points previously shadowed (possibly only by p) may resurface: a live, non-member
        // point joins the skyline when no remaining member dominates it.
        let ctx = DominanceContext::for_template(&self.data, &self.template)?;
        let members = self.list.points_in_order();
        let member_set: std::collections::HashSet<PointId> = members.iter().copied().collect();
        let mut resurfaced = Vec::new();
        for q in self.data.point_ids() {
            if self.deleted[q as usize] || member_set.contains(&q) {
                continue;
            }
            if !members.iter().any(|&m| ctx.dominates(m, q))
                && !resurfaced.iter().any(|&r| ctx.dominates(r, q))
            {
                resurfaced.push(q);
            }
        }
        // A resurfacing candidate accepted early could be dominated by a later candidate when
        // the scan order is arbitrary; re-check the final set against itself.
        let confirmed: Vec<PointId> = resurfaced
            .iter()
            .copied()
            .filter(|&q| !resurfaced.iter().any(|&r| ctx.dominates(r, q)))
            .collect();
        for q in confirmed {
            self.list.insert(ScoredEntry::new(
                q,
                self.template_score.score(&self.data, q),
            ));
            self.index.insert(&self.data, q);
        }
        Ok(true)
    }

    /// Answers an implicit-preference query against the current state (Algorithm 4).
    pub fn query(&self, pref: &Preference) -> Result<Vec<PointId>> {
        self.query_with_stats(pref).map(|(r, _)| r)
    }

    /// Like [`MaintainedAdaptiveSfs::query`], reporting per-query statistics.
    ///
    /// The dataset is mutable here, so the elimination pass runs on a per-query
    /// [`DominanceContext`] rather than a cached compiled kernel (the static
    /// [`crate::AdaptiveSfs`] takes the compiled path).
    pub fn query_with_stats(&self, pref: &Preference) -> Result<(Vec<PointId>, QueryStats)> {
        let ctx = DominanceContext::for_query(&self.data, &self.template, pref)?;
        let entries = self.list.to_vec();
        let mut scratch = EvalScratch::<Vec<PointId>>::default();
        let (mut result, stats) = evaluate_query(
            &ctx,
            &self.data,
            &self.template,
            &entries,
            &self.index,
            pref,
            ScanMode::AffectedOnly,
            &mut scratch,
        )?;
        result.sort_unstable();
        Ok((result, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::algo::bnl;
    use skyline_core::{DatasetBuilder, Dimension, RowValue, Schema};

    fn vacation_data() -> Dataset {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group) in [
            (1600.0, 4.0, "T"),
            (2400.0, 1.0, "T"),
            (3000.0, 5.0, "H"),
            (3600.0, 4.0, "H"),
            (2400.0, 2.0, "M"),
            (3000.0, 3.0, "M"),
        ] {
            b.push_row([RowValue::Num(price), RowValue::Num(-class), group.into()])
                .unwrap();
        }
        b.build().unwrap()
    }

    /// Brute-force skyline of the live rows only.
    fn oracle(m: &MaintainedAdaptiveSfs, pref: &Preference) -> Vec<PointId> {
        let ctx = DominanceContext::for_query(m.dataset(), m.template(), pref).unwrap();
        let live: Vec<PointId> = m
            .dataset()
            .point_ids()
            .filter(|&p| !m.is_deleted(p))
            .collect();
        bnl::skyline_of(&ctx, &live)
    }

    #[test]
    fn initial_state_matches_static_structure() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let m = MaintainedAdaptiveSfs::new(data, template).unwrap();
        assert_eq!(m.template_skyline(), vec![0, 2, 4, 5]);
        assert_eq!(m.skyline_size(), 4);
        assert_eq!(m.live_rows(), 6);
        assert!(!m.is_deleted(0));
        assert!(m.is_deleted(99));
    }

    #[test]
    fn inserting_a_dominated_row_changes_nothing() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let mut m = MaintainedAdaptiveSfs::new(data, template).unwrap();
        // Worse than a in every way, same group.
        let p = m.insert_row(&[5000.0, 0.0], &[0]).unwrap();
        assert_eq!(p, 6);
        assert_eq!(m.template_skyline(), vec![0, 2, 4, 5]);
        assert_eq!(m.live_rows(), 7);
    }

    #[test]
    fn inserting_a_dominating_row_evicts_members() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let mut m = MaintainedAdaptiveSfs::new(data, template).unwrap();
        // Cheaper and better class than every Tulips package.
        let p = m.insert_row(&[1000.0, -5.0], &[0]).unwrap();
        assert_eq!(m.template_skyline(), vec![2, 4, 5, p]);
        // Query results stay consistent with the oracle.
        let schema = m.dataset().schema().clone();
        let pref = Preference::parse(&schema, [("hotel-group", "T < M < *")]).unwrap();
        assert_eq!(m.query(&pref).unwrap(), oracle(&m, &pref));
    }

    #[test]
    fn deleting_a_skyline_member_resurfaces_shadowed_points() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let mut m = MaintainedAdaptiveSfs::new(data, template).unwrap();
        // Deleting a (id 0) lets b (id 1, the other Tulips package) resurface.
        assert!(m.delete_row(0).unwrap());
        assert!(!m.delete_row(0).unwrap(), "double delete is a no-op");
        assert_eq!(m.template_skyline(), vec![1, 2, 4, 5]);
        assert_eq!(m.live_rows(), 5);
        let schema = m.dataset().schema().clone();
        for text in ["*", "T < M < *", "H < M < *", "M < *"] {
            let pref = Preference::parse(&schema, [("hotel-group", text)]).unwrap();
            assert_eq!(
                m.query(&pref).unwrap(),
                oracle(&m, &pref),
                "preference {text}"
            );
        }
    }

    #[test]
    fn deleting_a_non_member_is_cheap_and_correct() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let mut m = MaintainedAdaptiveSfs::new(data, template).unwrap();
        assert!(m.delete_row(1).unwrap());
        assert_eq!(m.template_skyline(), vec![0, 2, 4, 5]);
        assert!(m.delete_row(999).is_err());
    }

    #[test]
    fn mixed_update_sequence_stays_consistent_with_rebuild() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let mut m = MaintainedAdaptiveSfs::new(data, template.clone()).unwrap();
        m.insert_row(&[2000.0, -3.0], &[1]).unwrap();
        m.delete_row(2).unwrap();
        m.insert_row(&[1500.0, -1.0], &[2]).unwrap();
        m.delete_row(4).unwrap();
        m.insert_row(&[1500.0, -1.0], &[2]).unwrap();

        let pref = Preference::parse(&schema, [("hotel-group", "M < H < *")]).unwrap();
        assert_eq!(m.query(&pref).unwrap(), oracle(&m, &pref));
        // The maintained skyline equals a from-scratch skyline of the live rows.
        let ctx = DominanceContext::for_template(m.dataset(), m.template()).unwrap();
        let live: Vec<PointId> = m
            .dataset()
            .point_ids()
            .filter(|&p| !m.is_deleted(p))
            .collect();
        assert_eq!(m.template_skyline(), bnl::skyline_of(&ctx, &live));
    }

    #[test]
    fn general_template_rejected() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::from_partial_orders(
            &schema,
            vec![skyline_core::PartialOrder::from_pairs(3, [(0, 1)]).unwrap()],
        )
        .unwrap();
        assert!(MaintainedAdaptiveSfs::new(data, template).is_err());
    }
}
