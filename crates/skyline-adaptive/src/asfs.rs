//! Adaptive SFS (the paper's **SFS-A**): preprocessing (Algorithm 3), query processing
//! (Algorithm 4) with a progressive result iterator, and incremental maintenance
//! (Section 4.3) — row insertions and logical deletions keep the sorted list and the value
//! index up to date in place, with periodic compaction back to the parallel build path.

use crate::index::{LiveRowIndex, SkylineValueIndex};
use crate::sorted_list::ScoredEntry;
use skyline_core::algo::{merge_skylines, sfs};
use skyline_core::kernel::{
    CompiledOrder, CompiledRelation, DatasetEpoch, DenseWindow, PointBlock, RowIdRemap,
};
use skyline_core::score::ScoreFn;
use skyline_core::{
    Dataset, Deadline, Dominance, PointId, Preference, Result, SkylineError, Template, ValueId,
    DEADLINE_CHECK_INTERVAL,
};
use std::collections::HashSet;
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::Instant;

/// Datasets below this size skip thread spawning in the auto-parallel [`AdaptiveSfs::build`]:
/// the chunked scan's merge pass costs more than it saves on small inputs.
const PARALLEL_BUILD_THRESHOLD: usize = 4096;

/// Mutations between automatic [`AdaptiveSfs::compact`] passes. Each insert or delete is an
/// exact in-place update, so compaction is not needed for correctness — it re-runs the
/// parallel preprocessing over the live rows as a periodic self-check and the hook where
/// physical row reclamation will land.
const AUTO_COMPACT_INTERVAL: usize = 4096;

/// How the elimination pass of Algorithm 4 is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Only re-ranked (affected) points are tested against everything; unaffected points are
    /// tested only against accepted affected points. This matches the paper's observation that
    /// "there is no need to follow the SFS from scratch" and is the default.
    #[default]
    AffectedOnly,
    /// Re-sort and run the plain SFS elimination over the whole template skyline. Kept as the
    /// ablation baseline for the re-insertion optimization.
    FullRescan,
}

/// Statistics recorded by [`AdaptiveSfs::build`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PreprocessStats {
    /// `|D|`.
    pub dataset_size: usize,
    /// `|SKY(R̃)|`: the number of entries in the sorted list.
    pub template_skyline_size: usize,
    /// Wall-clock seconds spent computing and sorting the template skyline.
    pub preprocess_seconds: f64,
    /// Worker threads the template-skyline scan was chunked over (1 = serial).
    pub workers: usize,
}

/// Statistics recorded by one query evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of affected (re-ranked) points — the paper's `l`.
    pub affected: usize,
    /// Pairwise dominance tests performed during the elimination pass.
    pub dominance_tests: u64,
    /// Size of the returned skyline.
    pub result_size: usize,
}

/// Counters accumulated by the incremental-maintenance mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Rows inserted since the structure was built.
    pub inserts: u64,
    /// Rows logically deleted (tombstoned) since the structure was built.
    pub deletes: u64,
    /// Candidate rows actually tested by delete resurface passes (the quantity the
    /// dominance-region restriction shrinks).
    pub resurface_candidates: u64,
    /// Compaction passes run (automatic or explicit, logical or physical).
    pub compactions: u64,
    /// Tombstoned rows physically reclaimed — dropped from the dataset and block — by
    /// [`AdaptiveSfs::compact_physical`] or an engine-level generation rebuild.
    pub reclaimed_rows: u64,
    /// Generational rebuilds installed. Always 0 on a standalone structure (a rebuild
    /// *replaces* the structure); the engine lifecycle layer counts installs and merges them
    /// in via [`MaintenanceStats::merged`].
    pub rebuilds: u64,
}

impl MaintenanceStats {
    /// Field-wise sum of two counter sets — how the engine lifecycle layer carries the
    /// counters of a replaced generation's structure into the totals it reports.
    pub fn merged(self, other: Self) -> Self {
        Self {
            inserts: self.inserts + other.inserts,
            deletes: self.deletes + other.deletes,
            resurface_candidates: self.resurface_candidates + other.resurface_candidates,
            compactions: self.compactions + other.compactions,
            reclaimed_rows: self.reclaimed_rows + other.reclaimed_rows,
            rebuilds: self.rebuilds + other.rebuilds,
        }
    }
}

/// The Adaptive SFS query structure.
///
/// The dataset is held by shared ownership ([`Arc`]), so the structure is `Send + Sync` and
/// one build can serve queries from many threads concurrently (`&self` queries only read).
///
/// # Incremental maintenance (Section 4.3)
///
/// [`AdaptiveSfs::insert_row`] and [`AdaptiveSfs::delete_row`] mutate the dataset in place —
/// appending to the shared [`PointBlock`] or tombstoning a row — and update the sorted list
/// and the value index incrementally: an insert is one dominance check against the current
/// skyline plus an `O(log n)` list update, a delete of a skyline member additionally scans the
/// deleted point's *dominance region* for resurfacing rows. Every mutation bumps the
/// structure's [`DatasetEpoch`]; queries answer against the current epoch.
///
/// Mutations take `&mut self`. When other `Arc` handles to the dataset or block are still
/// alive (for example a [`ProgressiveScan`] in flight), the first mutation copies the shared
/// state (`Arc::make_mut`) so those handles keep an immutable snapshot; subsequent mutations
/// are in place.
#[derive(Debug, Clone)]
pub struct AdaptiveSfs {
    data: Arc<Dataset>,
    block: Arc<PointBlock>,
    template: Template,
    /// The template's ranking, shared by the sorted list and every mutation.
    template_score: ScoreFn,
    /// The template's nominal orders, compiled once at construction; mutations reuse them
    /// instead of re-deriving the dominance closure per call.
    template_compiled: Vec<CompiledOrder>,
    entries: Vec<ScoredEntry>,
    index: SkylineValueIndex,
    /// Value → live-row index over the whole dataset; built lazily by the first deletion and
    /// maintained incrementally afterwards.
    row_index: Option<LiveRowIndex>,
    updates_since_compact: usize,
    maintenance: MaintenanceStats,
    stats: PreprocessStats,
}

impl AdaptiveSfs {
    /// Algorithm 3: computes `SKY(R̃)`, scores it under the template ranking and sorts it.
    ///
    /// Accepts either an owned [`Dataset`] or an [`Arc<Dataset>`] (share the same `Arc` across
    /// engines and threads to avoid copying the data). Requires a template with an implicit
    /// form (the sorted list's ranking is derived from it); general partial-order templates
    /// are rejected.
    ///
    /// Large datasets are preprocessed in parallel: the score-sorted candidate list is split
    /// into chunks whose local skylines are computed on one thread per available core and
    /// merged with a final elimination pass (divide and conquer; the result is bit-for-bit
    /// identical to a serial scan). Use [`AdaptiveSfs::build_with_workers`] to pin the worker
    /// count or [`AdaptiveSfs::build_serial`] to force the single-threaded reference path.
    pub fn build(data: impl Into<Arc<Dataset>>, template: &Template) -> Result<Self> {
        let data = data.into();
        let workers = if data.len() >= PARALLEL_BUILD_THRESHOLD {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            1
        };
        Self::build_with_workers(data, template, workers)
    }

    /// [`AdaptiveSfs::build`] pinned to one thread (the reference preprocessing path).
    pub fn build_serial(data: impl Into<Arc<Dataset>>, template: &Template) -> Result<Self> {
        Self::build_with_workers(data, template, 1)
    }

    /// [`AdaptiveSfs::build`] with an explicit preprocessing worker count (clamped to ≥ 1).
    ///
    /// Unlike the auto path this honours `workers > 1` regardless of dataset size, which the
    /// equivalence test suites use to exercise the chunked scan on small inputs.
    pub fn build_with_workers(
        data: impl Into<Arc<Dataset>>,
        template: &Template,
        workers: usize,
    ) -> Result<Self> {
        let data = data.into();
        let block = Arc::new(PointBlock::new(&data));
        Self::build_on_block(data, block, template, workers)
    }

    /// Rebases a structure onto an existing (typically physically compacted) [`PointBlock`]
    /// of the same rows as `data`, recomputing the template skyline over the block's live
    /// rows through the parallel preprocessing path.
    ///
    /// This is the engine lifecycle's entry point for building the next generation's query
    /// structure off a remapped snapshot: the block — with whatever [`DatasetEpoch`] the
    /// compaction stamped on it — is adopted as-is instead of being re-transposed at epoch
    /// zero, so epoch-tagged artifacts built against the old generation keep failing their
    /// staleness checks against the new one.
    pub fn rebased(
        data: impl Into<Arc<Dataset>>,
        block: Arc<PointBlock>,
        template: &Template,
    ) -> Result<Self> {
        let data = data.into();
        let workers = if block.live_count() >= PARALLEL_BUILD_THRESHOLD {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            1
        };
        Self::build_on_block(data, block, template, workers)
    }

    /// The shared preprocessing path behind [`AdaptiveSfs::build_with_workers`] and
    /// [`AdaptiveSfs::rebased`]: score-sort the block's live rows, run the (possibly chunked)
    /// elimination scan, assemble the structure around the given block.
    fn build_on_block(
        data: Arc<Dataset>,
        block: Arc<PointBlock>,
        template: &Template,
        workers: usize,
    ) -> Result<Self> {
        let started = Instant::now();
        let template_pref = template.implicit().cloned().ok_or_else(|| {
            SkylineError::InvalidArgument(
                "Adaptive SFS requires a template with an implicit form".into(),
            )
        })?;
        template_pref.validate(data.schema())?;
        let score = ScoreFn::for_preference(data.schema(), &template_pref)?;
        let compiled = CompiledRelation::for_template(block.clone(), template)?;
        let all: Vec<PointId> = block.live_ids().collect();
        let sorted = score.sort_by_score(&data, &all);
        let workers = workers.max(1);
        let skyline = chunked_scan_presorted(&compiled, &sorted, workers);
        let mut this = Self::from_precomputed_with_block(data, block, template.clone(), skyline)?;
        this.stats.preprocess_seconds = started.elapsed().as_secs_f64();
        this.stats.workers = workers;
        Ok(this)
    }

    /// Builds the structure from an already-computed template skyline (used by the hybrid
    /// engine, which shares one skyline computation between the IPO tree and Adaptive SFS, and
    /// by the maintained variant).
    pub fn from_precomputed_skyline(
        data: impl Into<Arc<Dataset>>,
        template: Template,
        skyline: Vec<PointId>,
    ) -> Result<Self> {
        let data = data.into();
        let block = Arc::new(PointBlock::new(&data));
        Self::from_precomputed_with_block(data, block, template, skyline)
    }

    /// Like [`AdaptiveSfs::from_precomputed_skyline`], reusing an existing [`PointBlock`] of
    /// the same dataset instead of transposing it again (the hybrid engine shares one block
    /// between its own query path and this fallback structure).
    pub fn from_precomputed_with_block(
        data: impl Into<Arc<Dataset>>,
        block: Arc<PointBlock>,
        template: Template,
        skyline: Vec<PointId>,
    ) -> Result<Self> {
        let data = data.into();
        if block.len() != data.len() {
            return Err(SkylineError::InvalidArgument(format!(
                "point block holds {} points but the dataset has {}",
                block.len(),
                data.len()
            )));
        }
        let template_pref = template.implicit().cloned().ok_or_else(|| {
            SkylineError::InvalidArgument(
                "Adaptive SFS requires a template with an implicit form".into(),
            )
        })?;
        let score = ScoreFn::for_preference(data.schema(), &template_pref)?;
        let template_compiled: Vec<CompiledOrder> = template
            .orders()
            .iter()
            .map(CompiledOrder::compile)
            .collect();
        let mut entries: Vec<ScoredEntry> = skyline
            .iter()
            .map(|&p| ScoredEntry::new(p, score.score(&data, p)))
            .collect();
        entries.sort();
        let index = SkylineValueIndex::build(&data, &skyline);
        let stats = PreprocessStats {
            dataset_size: data.len(),
            template_skyline_size: entries.len(),
            preprocess_seconds: 0.0,
            workers: 1,
        };
        Ok(Self {
            data,
            block,
            template,
            template_score: score,
            template_compiled,
            entries,
            index,
            row_index: None,
            updates_since_compact: 0,
            maintenance: MaintenanceStats::default(),
            stats,
        })
    }

    /// Rehydrates the structure from an already-scored, already-sorted list — the snapshot
    /// load path. Where [`AdaptiveSfs::from_precomputed_with_block`] still scores and sorts
    /// the skyline, this constructor trusts the decoded `(score, point)` entries and only
    /// re-establishes the invariants it depends on: strict ascending
    /// `(score.total_cmp, point)` order, every point id in range and live in `block`. The
    /// remaining work — compiling the template ranking and rebuilding the value index — is
    /// `O(skyline · dims)`, independent of the dataset size.
    pub fn from_sorted_entries(
        data: impl Into<Arc<Dataset>>,
        block: Arc<PointBlock>,
        template: Template,
        entries: Vec<ScoredEntry>,
    ) -> Result<Self> {
        let data = data.into();
        if block.len() != data.len() {
            return Err(SkylineError::InvalidArgument(format!(
                "point block holds {} points but the dataset has {}",
                block.len(),
                data.len()
            )));
        }
        if entries.windows(2).any(|w| w[0] >= w[1]) {
            return Err(SkylineError::Snapshot(
                "sorted list entries are not strictly ascending by (score, point)".into(),
            ));
        }
        for e in &entries {
            if e.point as usize >= block.len() || !block.is_live(e.point) {
                return Err(SkylineError::Snapshot(format!(
                    "sorted list references point {} which is not a live row",
                    e.point
                )));
            }
        }
        let template_pref = template.implicit().cloned().ok_or_else(|| {
            SkylineError::InvalidArgument(
                "Adaptive SFS requires a template with an implicit form".into(),
            )
        })?;
        let score = ScoreFn::for_preference(data.schema(), &template_pref)?;
        let template_compiled: Vec<CompiledOrder> = template
            .orders()
            .iter()
            .map(CompiledOrder::compile)
            .collect();
        let skyline: Vec<PointId> = entries.iter().map(|e| e.point).collect();
        // Strict (score, point) ordering cannot rule out one point listed under two
        // different scores, which would corrupt the value index — check ids themselves.
        let mut ids = skyline.clone();
        ids.sort_unstable();
        if ids.windows(2).any(|w| w[0] == w[1]) {
            return Err(SkylineError::Snapshot(
                "sorted list references the same point twice".into(),
            ));
        }
        let index = SkylineValueIndex::build(&data, &skyline);
        let stats = PreprocessStats {
            dataset_size: data.len(),
            template_skyline_size: entries.len(),
            preprocess_seconds: 0.0,
            workers: 1,
        };
        Ok(Self {
            data,
            block,
            template,
            template_score: score,
            template_compiled,
            entries,
            index,
            row_index: None,
            updates_since_compact: 0,
            maintenance: MaintenanceStats::default(),
            stats,
        })
    }

    /// The dataset the structure is bound to.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// Shared handle to the dataset (cheap to clone; hand it to sibling engines or threads).
    pub fn dataset_arc(&self) -> &Arc<Dataset> {
        &self.data
    }

    /// The template the structure was preprocessed for.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// Preprocessing statistics.
    pub fn preprocess_stats(&self) -> &PreprocessStats {
        &self.stats
    }

    /// The sorted list entries (`SKY(R̃)` in ascending template-score order).
    pub fn sorted_entries(&self) -> &[ScoredEntry] {
        &self.entries
    }

    /// The template skyline as sorted point ids.
    pub fn template_skyline(&self) -> Vec<PointId> {
        let mut ids: Vec<PointId> = self.entries.iter().map(|e| e.point).collect();
        ids.sort_unstable();
        ids
    }

    /// The per-dimension value index over the template skyline.
    pub fn value_index(&self) -> &SkylineValueIndex {
        &self.index
    }

    /// The shared row-major point layout the compiled query kernel evaluates over.
    pub fn point_block(&self) -> &Arc<PointBlock> {
        &self.block
    }

    /// Approximate heap footprint in bytes (sorted list + value index), for the storage plots.
    pub fn approximate_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<ScoredEntry>() + self.index.approximate_bytes()
    }

    /// Algorithm 4 with the default [`ScanMode::AffectedOnly`]; returns sorted point ids.
    pub fn query(&self, pref: &Preference) -> Result<Vec<PointId>> {
        self.query_with_stats(pref, ScanMode::default())
            .map(|(r, _)| r)
    }

    /// Like [`AdaptiveSfs::query`], reusing caller-owned scratch buffers across queries.
    ///
    /// Hand one [`QueryScratch`] to a loop of queries (e.g. a service worker thread draining a
    /// batch) and the merge/elimination buffers are reused instead of reallocated per query.
    pub fn query_with_scratch(
        &self,
        pref: &Preference,
        scratch: &mut QueryScratch,
    ) -> Result<Vec<PointId>> {
        self.query_with_stats_scratch(pref, ScanMode::default(), scratch)
            .map(|(r, _)| r)
    }

    /// Algorithm 4 with an explicit scan mode, reporting per-query statistics.
    pub fn query_with_stats(
        &self,
        pref: &Preference,
        mode: ScanMode,
    ) -> Result<(Vec<PointId>, QueryStats)> {
        let mut scratch = QueryScratch::default();
        self.query_with_stats_scratch(pref, mode, &mut scratch)
    }

    /// [`AdaptiveSfs::query_with_stats`] with caller-owned scratch buffers.
    pub fn query_with_stats_scratch(
        &self,
        pref: &Preference,
        mode: ScanMode,
        scratch: &mut QueryScratch,
    ) -> Result<(Vec<PointId>, QueryStats)> {
        self.query_deadline_scratch(pref, mode, &Deadline::none(), scratch)
    }

    /// [`AdaptiveSfs::query_with_stats_scratch`] under a request [`Deadline`]: the
    /// elimination scan polls the deadline at block granularity and aborts with
    /// [`SkylineError::DeadlineExceeded`] instead of finishing an answer nobody is waiting
    /// for. The scratch buffers stay reusable after an abort.
    pub fn query_deadline_scratch(
        &self,
        pref: &Preference,
        mode: ScanMode,
        deadline: &Deadline,
        scratch: &mut QueryScratch,
    ) -> Result<(Vec<PointId>, QueryStats)> {
        let dom = CompiledRelation::for_query(
            self.block.clone(),
            self.data.schema(),
            &self.template,
            pref,
        )?;
        let (mut result, stats) = evaluate_query(
            &dom,
            &self.data,
            &self.template,
            &self.entries,
            &self.index,
            pref,
            mode,
            deadline,
            scratch,
        )?;
        result.sort_unstable();
        Ok((result, stats))
    }

    /// Progressive evaluation: returns an iterator that yields skyline points in ascending
    /// query-score order. Every yielded point is already guaranteed to be in `SKY(R̃′)`, so a
    /// caller can stop early (e.g. "give me the first 10 results") without any wasted work.
    pub fn query_progressive(&self, pref: &Preference) -> Result<ProgressiveScan> {
        let dom = CompiledRelation::for_query(
            self.block.clone(),
            self.data.schema(),
            &self.template,
            pref,
        )?;
        let mut scratch = QueryScratch::default();
        merged_order(
            &self.data,
            &self.template,
            &self.entries,
            &self.index,
            pref,
            &mut scratch,
        )?;
        let mut window_all = DenseWindow::default();
        let mut window_affected = DenseWindow::default();
        dom.reset_window(&mut window_all);
        dom.reset_window(&mut window_affected);
        Ok(ProgressiveScan {
            dom,
            merged: std::mem::take(&mut scratch.merged),
            pos: 0,
            window_all,
            window_affected,
        })
    }
}

/// Incremental maintenance (Section 4.3): in-place inserts, logical deletes, compaction.
impl AdaptiveSfs {
    /// The structure's current mutation epoch (bumped by every insert or live delete).
    pub fn epoch(&self) -> DatasetEpoch {
        self.block.epoch()
    }

    /// Number of live (non-deleted) rows.
    pub fn live_rows(&self) -> usize {
        self.block.live_count()
    }

    /// Current size of the sorted list (`|SKY(R̃)|`).
    pub fn skyline_size(&self) -> usize {
        self.entries.len()
    }

    /// True when a row has been logically deleted (or never existed).
    pub fn is_deleted(&self, p: PointId) -> bool {
        !self.block.is_live(p)
    }

    /// Counters accumulated by the maintenance mode.
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        self.maintenance
    }

    /// Mutations applied since the last [`AdaptiveSfs::compact`] (or since the build).
    pub fn updates_since_compact(&self) -> usize {
        self.updates_since_compact
    }

    /// The template relation over the current block, from the orders compiled at construction
    /// (no per-mutation closure derivation).
    fn template_relation(&self) -> CompiledRelation {
        CompiledRelation::from_compiled_orders(self.block.clone(), self.template_compiled.clone())
            .expect("template orders cover the schema domains by construction")
    }

    /// Inserts a row (numeric values in numeric-index order, nominal value ids in
    /// nominal-index order) and updates the skyline structures in place. Returns the new
    /// row id.
    ///
    /// Cost: one dominance check of the new point against the current template skyline plus
    /// `O(log n)` sorted-list updates — the cheap path the paper's maintenance analysis
    /// promises. The structure's [`DatasetEpoch`] is bumped.
    pub fn insert_row(&mut self, numeric: &[f64], nominal: &[ValueId]) -> Result<PointId> {
        let p = Arc::make_mut(&mut self.data).push_row_ids(numeric, nominal)?;
        Arc::make_mut(&mut self.block).append_row(numeric, nominal)?;
        if let Some(idx) = &mut self.row_index {
            idx.insert(&self.data, p);
        }
        self.maintenance.inserts += 1;
        self.updates_since_compact += 1;

        let rel = self.template_relation();
        let members: Vec<PointId> = self.entries.iter().map(|e| e.point).collect();
        // If an existing skyline member dominates the new point, the skyline is unchanged.
        if rel.first_dominator(p, &members).is_none() {
            // Otherwise the new point joins the skyline and evicts the members it dominates.
            let evicted: Vec<PointId> = members
                .iter()
                .copied()
                .filter(|&q| rel.dominates(p, q))
                .collect();
            if !evicted.is_empty() {
                self.entries.retain(|e| !evicted.contains(&e.point));
                for &q in &evicted {
                    self.index.remove(&self.data, q);
                }
            }
            let entry = ScoredEntry::new(p, self.template_score.score(&self.data, p));
            if let Err(pos) = self.entries.binary_search(&entry) {
                self.entries.insert(pos, entry);
            }
            self.index.insert(&self.data, p);
        }
        self.maybe_compact();
        Ok(p)
    }

    /// Logically deletes a row, updating the skyline structures in place. Returns `true` when
    /// the row was live before the call (double deletes are a no-op that does not bump the
    /// epoch); rows that never existed are an error.
    ///
    /// Deleting a non-member is `O(log n)`. Deleting a skyline member runs a resurface pass
    /// restricted to the member's *dominance region*: only live rows carrying the deleted
    /// point's value (or a template-order-worse one) on the most selective nominal dimension
    /// are tested, instead of every live row. [`AdaptiveSfs::delete_row_rescan_all`] is the
    /// unrestricted reference path the equivalence tests pin this against.
    pub fn delete_row(&mut self, p: PointId) -> Result<bool> {
        self.delete_row_impl(p, true)
    }

    /// [`AdaptiveSfs::delete_row`] with the resurface pass scanning **all** live rows (the
    /// ablation/reference path; same result, more dominance tests).
    pub fn delete_row_rescan_all(&mut self, p: PointId) -> Result<bool> {
        self.delete_row_impl(p, false)
    }

    fn delete_row_impl(&mut self, p: PointId, restrict: bool) -> Result<bool> {
        if !Arc::make_mut(&mut self.block).tombstone(p)? {
            return Ok(false);
        }
        if let Some(idx) = &mut self.row_index {
            idx.remove(&self.data, p);
        }
        self.maintenance.deletes += 1;
        self.updates_since_compact += 1;

        let entry = ScoredEntry::new(p, self.template_score.score(&self.data, p));
        let Ok(pos) = self.entries.binary_search(&entry) else {
            // Not a skyline member: nothing else changes.
            self.maybe_compact();
            return Ok(true);
        };
        self.entries.remove(pos);
        self.index.remove(&self.data, p);

        // Rows previously shadowed (possibly only by p) may resurface: a live non-member
        // joins the skyline when no remaining member dominates it. Any such row was dominated
        // by p (it was shadowed before, and every other shadow still stands), so the scan can
        // be restricted to p's dominance region.
        let rel = self.template_relation();
        let members: Vec<PointId> = self.entries.iter().map(|e| e.point).collect();
        let member_set: HashSet<PointId> = members.iter().copied().collect();
        let region = if restrict {
            self.ensure_row_index();
            self.row_index.as_ref().and_then(|idx| {
                idx.dominance_region_candidates(&self.data, &self.template_compiled, p)
            })
        } else {
            None
        };
        let candidates: Vec<PointId> = match region {
            Some(rows) => rows,
            None => self.block.live_ids().collect(),
        };
        let mut resurfaced: Vec<PointId> = Vec::new();
        for q in candidates {
            if !self.block.is_live(q) || member_set.contains(&q) || !rel.dominates(p, q) {
                continue;
            }
            self.maintenance.resurface_candidates += 1;
            if rel.first_dominator(q, &members).is_none() {
                resurfaced.push(q);
            }
        }
        // Resurfacing candidates can shadow each other; only the mutually undominated ones
        // join the skyline.
        let confirmed: Vec<PointId> = resurfaced
            .iter()
            .copied()
            .filter(|&q| !resurfaced.iter().any(|&r| rel.dominates(r, q)))
            .collect();
        for q in confirmed {
            let entry = ScoredEntry::new(q, self.template_score.score(&self.data, q));
            if let Err(pos) = self.entries.binary_search(&entry) {
                self.entries.insert(pos, entry);
            }
            self.index.insert(&self.data, q);
        }
        self.maybe_compact();
        Ok(true)
    }

    /// Recomputes the maintained structures from scratch over the live rows, via the same
    /// parallel preprocessing path as [`AdaptiveSfs::build`].
    ///
    /// Every mutation is an exact in-place update, so compaction does not change the answer
    /// set (the maintenance proptests pin maintained ≡ recomputed); it runs automatically
    /// every few thousand mutations as a drift bound and is the hook where physical
    /// reclamation of tombstoned rows (dropping them from the dataset and block) will land.
    pub fn compact(&mut self) {
        let rel = self.template_relation();
        let live: Vec<PointId> = self.block.live_ids().collect();
        let sorted = self.template_score.sort_by_score(&self.data, &live);
        let workers = if live.len() >= PARALLEL_BUILD_THRESHOLD {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            1
        };
        let skyline = chunked_scan_presorted(&rel, &sorted, workers);
        self.entries = skyline
            .iter()
            .map(|&p| ScoredEntry::new(p, self.template_score.score(&self.data, p)))
            .collect();
        self.entries.sort();
        self.index = SkylineValueIndex::build(&self.data, &skyline);
        self.stats.dataset_size = self.data.len();
        self.stats.template_skyline_size = self.entries.len();
        self.updates_since_compact = 0;
        self.maintenance.compactions += 1;
    }

    /// Physically compacts the structure in place: tombstoned rows are dropped from the
    /// dataset and the block ([`PointBlock::compacted`]), the survivors renumbered, and the
    /// maintained structures recomputed over the compacted snapshot. Returns the
    /// [`RowIdRemap`] translating the old row ids, so callers holding stale ids (cached
    /// skylines, external row handles) can rewrite them instead of discarding them.
    ///
    /// Every id the structure ever handed out is stale after this call; the block's
    /// [`DatasetEpoch`] moves past every previously observed epoch, so epoch-tagged artifacts
    /// fail their staleness checks rather than misread renumbered rows. Counted in
    /// [`MaintenanceStats::reclaimed_rows`] (and as a compaction).
    pub fn compact_physical(&mut self) -> RowIdRemap {
        let (block, remap) = self.block.compacted();
        self.data = Arc::new(self.data.retained(remap.kept_old_ids()));
        self.block = Arc::new(block);
        // The whole id space moved: the lazily built live-row index is rebuilt on demand.
        self.row_index = None;
        self.maintenance.reclaimed_rows += remap.reclaimed() as u64;
        self.compact();
        remap
    }

    fn maybe_compact(&mut self) {
        if self.updates_since_compact >= AUTO_COMPACT_INTERVAL {
            self.compact();
        }
    }

    fn ensure_row_index(&mut self) {
        if self.row_index.is_none() {
            let block = &self.block;
            self.row_index = Some(LiveRowIndex::build(&self.data, |q| block.is_live(q)));
        }
    }
}

/// Divide-and-conquer presorted elimination scan.
///
/// The score-sorted candidate list is split into contiguous chunks; each worker thread
/// computes its chunk-local skyline (any point it removes is dominated by an earlier-sorted
/// point, so it cannot be in the global skyline), and one final scan over the concatenated
/// survivors — which is still in global score order — removes cross-chunk dominated points.
/// The output is **bit-for-bit identical** to a serial [`sfs::scan_presorted`] over the full
/// list: the monotone score guarantees dominators sort strictly earlier, so both scans accept
/// exactly the global skyline in score order. The cross-chunk pass is the shared
/// [`merge_skylines`] operator (order-preserving, so the score order survives the merge) —
/// the same machinery a sharded service uses to gather per-shard skylines.
fn chunked_scan_presorted(
    compiled: &CompiledRelation,
    sorted: &[PointId],
    workers: usize,
) -> Vec<PointId> {
    if workers <= 1 || sorted.len() < workers * 2 {
        return sfs::scan_presorted(compiled, sorted);
    }
    let chunk = sorted.len().div_ceil(workers);
    let locals: Vec<Vec<PointId>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sorted
            .chunks(chunk)
            .map(|part| scope.spawn(move || sfs::scan_presorted(compiled, part)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("skyline scan worker panicked"))
            .collect()
    });
    let fragments: Vec<&[PointId]> = locals.iter().map(Vec::as_slice).collect();
    merge_skylines(compiled, &fragments)
}

/// Reusable buffers for Adaptive SFS query evaluation, generic over the dominance
/// implementation's window representation.
///
/// One query needs a re-scored entry list, the merged candidate order and the elimination
/// windows; allocating them per query is wasteful when a worker thread serves thousands of
/// queries back to back. A scratch starts empty ([`Default`]) and grows to the high-water
/// mark of the queries it served. [`QueryScratch`] is the kernel-windowed alias every public
/// query path uses.
#[derive(Debug, Default)]
pub struct EvalScratch<W: Default> {
    affected: HashSet<PointId>,
    reinserted: Vec<ScoredEntry>,
    merged: Vec<(PointId, bool)>,
    window_all: W,
    window_affected: W,
}

/// Scratch buffers for the compiled-kernel query path (see [`EvalScratch`]).
pub type QueryScratch = EvalScratch<DenseWindow>;

impl QueryScratch {
    /// Creates an empty scratch (equivalent to [`QueryScratch::default`]).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Builds the query-score-ordered candidate list into `scratch.merged` as
/// `(point, is_affected)` pairs.
fn merged_order<W: Default>(
    data: &Dataset,
    template: &Template,
    entries: &[ScoredEntry],
    index: &SkylineValueIndex,
    pref: &Preference,
    scratch: &mut EvalScratch<W>,
) -> Result<()> {
    pref.validate(data.schema())?;
    template.check_refinement(data.schema(), pref)?;
    let query_score = ScoreFn::for_preference(data.schema(), pref)?;
    scratch.affected.clear();
    scratch.affected.extend(index.affected_by(pref));

    // Affected points are deleted from the sorted list and re-inserted with their new score;
    // everything else keeps its template-score position (listed-value ranks only ever move
    // points towards the front, unlisted ranks are unchanged).
    scratch.reinserted.clear();
    scratch.reinserted.extend(
        scratch
            .affected
            .iter()
            .map(|&p| ScoredEntry::new(p, query_score.score(data, p))),
    );
    scratch.reinserted.sort();

    scratch.merged.clear();
    scratch.merged.reserve(entries.len());
    let merged = &mut scratch.merged;
    let mut kept = entries
        .iter()
        .filter(|e| !scratch.affected.contains(&e.point))
        .peekable();
    let mut moved = scratch.reinserted.iter().peekable();
    loop {
        match (kept.peek(), moved.peek()) {
            (Some(&&k), Some(&&m)) => {
                if k <= m {
                    merged.push((k.point, false));
                    kept.next();
                } else {
                    merged.push((m.point, true));
                    moved.next();
                }
            }
            (Some(&&k), None) => {
                merged.push((k.point, false));
                kept.next();
            }
            (None, Some(&&m)) => {
                merged.push((m.point, true));
                moved.next();
            }
            (None, None) => break,
        }
    }
    Ok(())
}

/// The core of Algorithm 4, shared by [`AdaptiveSfs`] and the maintained variant.
///
/// Generic over [`Dominance`]: the static structure passes the compiled kernel (its dataset
/// is immutable, so the point block is built once) with dense elimination windows, while the
/// maintained variant passes a fresh [`skyline_core::DominanceContext`] over its mutable
/// dataset with plain id windows.
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_query<D: Dominance>(
    dom: &D,
    data: &Dataset,
    template: &Template,
    entries: &[ScoredEntry],
    index: &SkylineValueIndex,
    pref: &Preference,
    mode: ScanMode,
    deadline: &Deadline,
    scratch: &mut EvalScratch<D::Window>,
) -> Result<(Vec<PointId>, QueryStats)> {
    merged_order(data, template, entries, index, pref, scratch)?;
    let mut stats = QueryStats {
        affected: scratch.merged.iter().filter(|(_, a)| *a).count(),
        ..QueryStats::default()
    };

    let mut accepted: Vec<PointId> = Vec::new();
    let mut all_len = 0u64;
    let mut affected_len = 0u64;
    dom.reset_window(&mut scratch.window_all);
    dom.reset_window(&mut scratch.window_affected);
    let bounded = deadline.is_bounded();
    for (i, &(p, is_affected)) in scratch.merged.iter().enumerate() {
        // Cooperative cancellation at block granularity: one wall-clock poll per packed
        // window block of candidates, so an expired budget stops mid-scan.
        if bounded && i % DEADLINE_CHECK_INTERVAL == 0 {
            deadline.check()?;
        }
        let (window, window_len) = match mode {
            ScanMode::AffectedOnly if !is_affected => (&mut scratch.window_affected, affected_len),
            _ => (&mut scratch.window_all, all_len),
        };
        let dominated = match dom.window_first_dominator(window, p) {
            Some(i) => {
                stats.dominance_tests += i as u64 + 1;
                true
            }
            None => {
                stats.dominance_tests += window_len;
                false
            }
        };
        if !dominated {
            accepted.push(p);
            dom.push_window(&mut scratch.window_all, p);
            all_len += 1;
            if is_affected {
                dom.push_window(&mut scratch.window_affected, p);
                affected_len += 1;
            }
        }
    }
    stats.result_size = accepted.len();
    Ok((accepted, stats))
}

/// Iterator returned by [`AdaptiveSfs::query_progressive`].
///
/// Yields the members of `SKY(R̃′)` in ascending query-score order; each item is final as soon
/// as it is produced (the progressiveness property of Section 4.3). Owns its compiled
/// dominance kernel (the point block is shared with the parent structure), so the iterator
/// carries no borrow of the [`AdaptiveSfs`] it came from.
#[derive(Debug)]
pub struct ProgressiveScan {
    dom: CompiledRelation,
    merged: Vec<(PointId, bool)>,
    pos: usize,
    window_all: DenseWindow,
    window_affected: DenseWindow,
}

impl ProgressiveScan {
    /// Number of candidates examined so far (the scan's position in the merged order).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True once every candidate has been examined — no further point can be yielded.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.merged.len()
    }

    /// [`Iterator::next`] under a request [`Deadline`]: the candidate walk polls the deadline
    /// once per [`DEADLINE_CHECK_INTERVAL`] candidates (block granularity, matching the batch
    /// scans) and aborts with [`SkylineError::DeadlineExceeded`] on expiry. The scan stays
    /// usable after an abort — a later call with a fresh deadline resumes where it stopped —
    /// which is what lets a streaming follower pick up a timed-out leader's scan.
    pub fn next_deadline(&mut self, deadline: &Deadline) -> Result<Option<PointId>> {
        let bounded = deadline.is_bounded();
        // One check per pull (each call is an external consumer touchpoint), plus the usual
        // block-granularity polling for long dominated runs between yields.
        if bounded {
            deadline.check()?;
        }
        while self.pos < self.merged.len() {
            if bounded && self.pos.is_multiple_of(DEADLINE_CHECK_INTERVAL) {
                deadline.check()?;
            }
            let (p, is_affected) = self.merged[self.pos];
            self.pos += 1;
            let window = if is_affected {
                &mut self.window_all
            } else {
                &mut self.window_affected
            };
            let dominated = self.dom.window_first_dominator(window, p).is_some();
            if !dominated {
                self.dom.push_window(&mut self.window_all, p);
                if is_affected {
                    self.dom.push_window(&mut self.window_affected, p);
                }
                return Ok(Some(p));
            }
        }
        Ok(None)
    }
}

impl Iterator for ProgressiveScan {
    type Item = PointId;

    fn next(&mut self) -> Option<PointId> {
        self.next_deadline(&Deadline::none())
            .expect("an unbounded deadline never expires")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::algo::bnl;
    use skyline_core::{
        DatasetBuilder, Dimension, DominanceContext, ImplicitPreference, RowValue, Schema,
    };

    fn vacation_data() -> Arc<Dataset> {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group) in [
            (1600.0, 4.0, "T"),
            (2400.0, 1.0, "T"),
            (3000.0, 5.0, "H"),
            (3600.0, 4.0, "H"),
            (2400.0, 2.0, "M"),
            (3000.0, 3.0, "M"),
        ] {
            b.push_row([RowValue::Num(price), RowValue::Num(-class), group.into()])
                .unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn build_materializes_template_skyline() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
        assert_eq!(asfs.template_skyline(), vec![0, 2, 4, 5]);
        assert_eq!(asfs.preprocess_stats().template_skyline_size, 4);
        assert_eq!(asfs.preprocess_stats().dataset_size, 6);
        assert!(asfs.approximate_bytes() > 0);
        assert_eq!(asfs.sorted_entries().len(), 4);
        assert_eq!(asfs.template().nominal_count(), 1);
        assert!(std::ptr::eq(asfs.dataset(), &*data));
        assert!(Arc::ptr_eq(asfs.dataset_arc(), &data));
    }

    #[test]
    fn table2_preferences_match_the_oracle() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
        for text in [
            "*",
            "T < M < *",
            "H < M < *",
            "H < M < T",
            "H < T < *",
            "M < *",
        ] {
            let pref = Preference::parse(&schema, [("hotel-group", text)]).unwrap();
            let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
            let expected = bnl::skyline(&ctx);
            assert_eq!(asfs.query(&pref).unwrap(), expected, "preference {text}");
            let (full, _) = asfs.query_with_stats(&pref, ScanMode::FullRescan).unwrap();
            assert_eq!(full, expected, "full rescan, preference {text}");
        }
    }

    #[test]
    fn query_stats_count_affected_points() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
        let pref = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();
        let (result, stats) = asfs
            .query_with_stats(&pref, ScanMode::AffectedOnly)
            .unwrap();
        // Affected = skyline points with hotel-group M = {e, f}.
        assert_eq!(stats.affected, 2);
        assert_eq!(stats.result_size, result.len());
        assert_eq!(result, vec![0, 2, 4, 5]);
    }

    #[test]
    fn progressive_scan_yields_final_points_in_score_order() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
        let pref = Preference::parse(&schema, [("hotel-group", "T < M < *")]).unwrap();
        let full = asfs.query(&pref).unwrap();
        let mut streamed: Vec<PointId> = Vec::new();
        for p in asfs.query_progressive(&pref).unwrap() {
            // Progressiveness: every yielded point must be in the final answer.
            assert!(
                full.contains(&p),
                "point {p} streamed but not in the skyline"
            );
            streamed.push(p);
        }
        let mut sorted = streamed.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, full);
        // First streamed result must be the best-scoring point (a = id 0 here).
        assert_eq!(streamed[0], 0);
    }

    #[test]
    fn queries_must_refine_the_template() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::from_preference(
            &schema,
            Preference::parse(&schema, [("hotel-group", "H < *")]).unwrap(),
        )
        .unwrap();
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
        let bad = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();
        assert!(asfs.query(&bad).is_err());
        let good = Preference::parse(&schema, [("hotel-group", "H < M < *")]).unwrap();
        let ctx = DominanceContext::for_query(&data, &template, &good).unwrap();
        assert_eq!(asfs.query(&good).unwrap(), bnl::skyline(&ctx));
    }

    #[test]
    fn mismatched_point_blocks_are_rejected() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        // A block over a one-row dataset cannot serve the six-row dataset.
        let tiny = Dataset::from_columns(
            data.schema().clone(),
            vec![vec![1.0], vec![1.0]],
            vec![vec![0]],
        )
        .unwrap();
        let wrong_block = Arc::new(skyline_core::PointBlock::new(&tiny));
        assert!(matches!(
            AdaptiveSfs::from_precomputed_with_block(
                data.clone(),
                wrong_block,
                template.clone(),
                vec![0, 2, 4, 5],
            ),
            Err(SkylineError::InvalidArgument(_))
        ));
    }

    #[test]
    fn general_templates_are_rejected() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::from_partial_orders(
            &schema,
            vec![skyline_core::PartialOrder::from_pairs(3, [(0, 1)]).unwrap()],
        )
        .unwrap();
        assert!(matches!(
            AdaptiveSfs::build(data.clone(), &template),
            Err(SkylineError::InvalidArgument(_))
        ));
    }

    #[test]
    fn wrong_arity_preferences_are_rejected() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
        let pref =
            Preference::from_dims(vec![ImplicitPreference::none(), ImplicitPreference::none()]);
        assert!(asfs.query(&pref).is_err());
    }

    /// Brute-force skyline of the live rows only.
    fn oracle(asfs: &AdaptiveSfs, pref: &Preference) -> Vec<PointId> {
        let ctx = DominanceContext::for_query(asfs.dataset(), asfs.template(), pref).unwrap();
        let live: Vec<PointId> = asfs.point_block().live_ids().collect();
        bnl::skyline_of(&ctx, &live)
    }

    #[test]
    fn inserting_a_dominated_row_changes_nothing() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let mut asfs = AdaptiveSfs::build(data, &template).unwrap();
        assert_eq!(asfs.epoch(), skyline_core::DatasetEpoch::INITIAL);
        // Worse than a in every way, same group.
        let p = asfs.insert_row(&[5000.0, 0.0], &[0]).unwrap();
        assert_eq!(p, 6);
        assert_eq!(asfs.template_skyline(), vec![0, 2, 4, 5]);
        assert_eq!(asfs.live_rows(), 7);
        assert_eq!(asfs.epoch().get(), 1);
        assert_eq!(asfs.maintenance_stats().inserts, 1);
    }

    #[test]
    fn inserting_a_dominating_row_evicts_members() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let mut asfs = AdaptiveSfs::build(data, &template).unwrap();
        // Cheaper and better class than every Tulips package.
        let p = asfs.insert_row(&[1000.0, -5.0], &[0]).unwrap();
        assert_eq!(asfs.template_skyline(), vec![2, 4, 5, p]);
        // Query results stay consistent with the oracle.
        let schema = asfs.dataset().schema().clone();
        let pref = Preference::parse(&schema, [("hotel-group", "T < M < *")]).unwrap();
        assert_eq!(asfs.query(&pref).unwrap(), oracle(&asfs, &pref));
    }

    #[test]
    fn deleting_a_skyline_member_resurfaces_shadowed_points() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let mut asfs = AdaptiveSfs::build(data, &template).unwrap();
        // Deleting a (id 0) lets b (id 1, the other Tulips package) resurface.
        assert!(asfs.delete_row(0).unwrap());
        let epoch = asfs.epoch();
        assert!(!asfs.delete_row(0).unwrap(), "double delete is a no-op");
        assert_eq!(asfs.epoch(), epoch, "no-op must not bump the epoch");
        assert_eq!(asfs.template_skyline(), vec![1, 2, 4, 5]);
        assert_eq!(asfs.live_rows(), 5);
        assert!(asfs.is_deleted(0));
        assert!(!asfs.is_deleted(1));
        assert!(asfs.is_deleted(99), "rows that never existed are not live");
        let schema = asfs.dataset().schema().clone();
        for text in ["*", "T < M < *", "H < M < *", "M < *"] {
            let pref = Preference::parse(&schema, [("hotel-group", text)]).unwrap();
            assert_eq!(
                asfs.query(&pref).unwrap(),
                oracle(&asfs, &pref),
                "preference {text}"
            );
        }
    }

    #[test]
    fn deleting_a_non_member_is_cheap_and_correct() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let mut asfs = AdaptiveSfs::build(data, &template).unwrap();
        assert!(asfs.delete_row(1).unwrap());
        assert_eq!(asfs.template_skyline(), vec![0, 2, 4, 5]);
        assert_eq!(
            asfs.maintenance_stats().resurface_candidates,
            0,
            "non-member deletes must not scan"
        );
        assert!(asfs.delete_row(999).is_err());
    }

    #[test]
    fn restricted_and_full_resurface_scans_agree() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let mut restricted = AdaptiveSfs::build(data, &template).unwrap();
        let mut full = restricted.clone();
        for p in [0, 4, 2] {
            assert_eq!(
                restricted.delete_row(p).unwrap(),
                full.delete_row_rescan_all(p).unwrap(),
                "deleting {p}"
            );
            assert_eq!(
                restricted.template_skyline(),
                full.template_skyline(),
                "after deleting {p}"
            );
        }
        assert!(
            restricted.maintenance_stats().resurface_candidates
                <= full.maintenance_stats().resurface_candidates,
            "the dominance-region restriction must never test more rows"
        );
    }

    #[test]
    fn mixed_update_sequence_stays_consistent_with_rebuild_and_compaction() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let mut asfs = AdaptiveSfs::build(data, &template).unwrap();
        asfs.insert_row(&[2000.0, -3.0], &[1]).unwrap();
        asfs.delete_row(2).unwrap();
        asfs.insert_row(&[1500.0, -1.0], &[2]).unwrap();
        asfs.delete_row(4).unwrap();
        asfs.insert_row(&[1500.0, -1.0], &[2]).unwrap();
        assert_eq!(asfs.updates_since_compact(), 5);

        let pref = Preference::parse(&schema, [("hotel-group", "M < H < *")]).unwrap();
        assert_eq!(asfs.query(&pref).unwrap(), oracle(&asfs, &pref));
        // The maintained skyline equals a from-scratch skyline of the live rows, and an
        // explicit compaction (the parallel build path) leaves it unchanged.
        let before = asfs.template_skyline();
        let ctx = DominanceContext::for_template(asfs.dataset(), asfs.template()).unwrap();
        let live: Vec<PointId> = asfs.point_block().live_ids().collect();
        assert_eq!(&before, &bnl::skyline_of(&ctx, &live));
        asfs.compact();
        assert_eq!(asfs.template_skyline(), before);
        assert_eq!(asfs.updates_since_compact(), 0);
        assert_eq!(asfs.maintenance_stats().compactions, 1);
        assert_eq!(asfs.query(&pref).unwrap(), oracle(&asfs, &pref));
    }

    #[test]
    fn physical_compaction_reclaims_rows_and_remaps_ids() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let mut asfs = AdaptiveSfs::build(data, &template).unwrap();
        asfs.delete_row(0).unwrap();
        asfs.delete_row(3).unwrap();
        asfs.insert_row(&[1000.0, -5.0], &[0]).unwrap();
        let before_epoch = asfs.epoch();
        let logical_skyline = asfs.template_skyline();

        let remap = asfs.compact_physical();
        // Dead rows are physically gone: the dataset and block shrink to the live rows.
        assert_eq!(asfs.dataset().len(), 5);
        assert_eq!(asfs.point_block().len(), 5);
        assert_eq!(asfs.point_block().live_count(), 5);
        assert_eq!(remap.reclaimed(), 2);
        assert!(asfs.epoch() > before_epoch, "compaction moves the epoch");
        assert_eq!(asfs.maintenance_stats().reclaimed_rows, 2);
        assert_eq!(asfs.maintenance_stats().compactions, 1);
        // The maintained skyline is the logical one translated through the remap.
        let translated = remap.translate_ids(&logical_skyline).unwrap();
        assert_eq!(asfs.template_skyline(), translated);
        // Queries over the compacted structure match the oracle over its (all-live) rows.
        for text in ["*", "T < M < *", "M < *"] {
            let pref = Preference::parse(&schema, [("hotel-group", text)]).unwrap();
            assert_eq!(
                asfs.query(&pref).unwrap(),
                oracle(&asfs, &pref),
                "preference {text}"
            );
        }
        // Mutations keep working in the new id space.
        assert!(asfs.delete_row(0).unwrap());
        assert_eq!(asfs.query(&Preference::none(1)).unwrap(), {
            let pref = Preference::none(1);
            oracle(&asfs, &pref)
        });
    }

    #[test]
    fn rebased_matches_a_fresh_build_and_keeps_the_block_epoch() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let mut asfs = AdaptiveSfs::build(data, &template).unwrap();
        asfs.delete_row(1).unwrap();
        asfs.delete_row(4).unwrap();
        let (block, remap) = asfs.point_block().compacted();
        let compact_data = Arc::new(asfs.dataset().retained(remap.kept_old_ids()));
        let epoch = block.epoch();

        let rebased =
            AdaptiveSfs::rebased(compact_data.clone(), Arc::new(block), &template).unwrap();
        assert_eq!(rebased.epoch(), epoch, "the compacted epoch is adopted");
        let fresh = AdaptiveSfs::build(compact_data, &template).unwrap();
        assert_eq!(rebased.template_skyline(), fresh.template_skyline());
        assert_eq!(
            rebased.preprocess_stats().dataset_size,
            fresh.preprocess_stats().dataset_size
        );
    }

    #[test]
    fn maintenance_stats_merge_field_wise() {
        let a = MaintenanceStats {
            inserts: 1,
            deletes: 2,
            resurface_candidates: 3,
            compactions: 4,
            reclaimed_rows: 5,
            rebuilds: 6,
        };
        let b = MaintenanceStats {
            inserts: 10,
            ..MaintenanceStats::default()
        };
        let m = a.merged(b);
        assert_eq!(m.inserts, 11);
        assert_eq!(m.deletes, 2);
        assert_eq!(m.rebuilds, 6);
    }

    #[test]
    fn progressive_scans_keep_a_snapshot_across_mutations() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let mut asfs = AdaptiveSfs::build(data, &template).unwrap();
        let pref = Preference::parse(&schema, [("hotel-group", "T < M < *")]).unwrap();
        let snapshot = asfs.query_progressive(&pref).unwrap();
        let before: Vec<PointId> = {
            let mut v = asfs.query(&pref).unwrap();
            v.sort_unstable();
            v
        };
        // Mutating while the scan is alive copies the shared block; the scan still yields
        // the pre-mutation answer.
        asfs.insert_row(&[100.0, -5.0], &[0]).unwrap();
        let mut streamed: Vec<PointId> = snapshot.collect();
        streamed.sort_unstable();
        assert_eq!(streamed, before);
        // New queries see the new row.
        assert_eq!(asfs.query(&pref).unwrap(), oracle(&asfs, &pref));
    }

    #[test]
    fn progressive_scan_honours_deadlines_and_resumes_after_expiry() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let asfs = AdaptiveSfs::build(data, &template).unwrap();
        let pref = Preference::parse(&schema, [("hotel-group", "T < M < *")]).unwrap();
        let expected: Vec<PointId> = asfs.query_progressive(&pref).unwrap().collect();

        let mut scan = asfs.query_progressive(&pref).unwrap();
        // An already-expired deadline aborts before the first candidate is examined.
        let expired = Deadline::within(std::time::Duration::ZERO);
        assert_eq!(
            scan.next_deadline(&expired).unwrap_err(),
            SkylineError::DeadlineExceeded
        );
        assert_eq!(scan.position(), 0, "nothing consumed on abort");
        // A fresh unbounded deadline resumes the same scan and yields the full sequence.
        let mut resumed = Vec::new();
        while let Some(p) = scan.next_deadline(&Deadline::none()).unwrap() {
            resumed.push(p);
        }
        assert_eq!(resumed, expected);
        assert!(scan.is_exhausted());
        assert_eq!(scan.next_deadline(&Deadline::none()).unwrap(), None);
    }

    #[test]
    fn affected_only_and_full_rescan_agree_on_many_preferences() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
        let values: Vec<u16> = vec![0, 1, 2];
        for &a in &values {
            for &b in &values {
                if a == b {
                    continue;
                }
                let pref = Preference::from_dims(vec![ImplicitPreference::new([a, b]).unwrap()]);
                let (fast, _) = asfs
                    .query_with_stats(&pref, ScanMode::AffectedOnly)
                    .unwrap();
                let (slow, _) = asfs.query_with_stats(&pref, ScanMode::FullRescan).unwrap();
                assert_eq!(fast, slow, "preference {a} < {b} < *");
            }
        }
    }
}
