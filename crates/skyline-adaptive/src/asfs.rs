//! Adaptive SFS (the paper's **SFS-A**): preprocessing (Algorithm 3) and query processing
//! (Algorithm 4), with a progressive result iterator.

use crate::index::SkylineValueIndex;
use crate::sorted_list::ScoredEntry;
use skyline_core::algo::sfs;
use skyline_core::score::ScoreFn;
use skyline_core::{
    Dataset, DominanceContext, PointId, Preference, Result, SkylineError, Template,
};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// How the elimination pass of Algorithm 4 is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Only re-ranked (affected) points are tested against everything; unaffected points are
    /// tested only against accepted affected points. This matches the paper's observation that
    /// "there is no need to follow the SFS from scratch" and is the default.
    #[default]
    AffectedOnly,
    /// Re-sort and run the plain SFS elimination over the whole template skyline. Kept as the
    /// ablation baseline for the re-insertion optimization.
    FullRescan,
}

/// Statistics recorded by [`AdaptiveSfs::build`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PreprocessStats {
    /// `|D|`.
    pub dataset_size: usize,
    /// `|SKY(R̃)|`: the number of entries in the sorted list.
    pub template_skyline_size: usize,
    /// Wall-clock seconds spent computing and sorting the template skyline.
    pub preprocess_seconds: f64,
}

/// Statistics recorded by one query evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of affected (re-ranked) points — the paper's `l`.
    pub affected: usize,
    /// Pairwise dominance tests performed during the elimination pass.
    pub dominance_tests: u64,
    /// Size of the returned skyline.
    pub result_size: usize,
}

/// The Adaptive SFS query structure over an immutable dataset.
///
/// The dataset is held by shared ownership ([`Arc`]), so the structure is `Send + Sync` and
/// one build can serve queries from many threads concurrently (`&self` queries only read).
#[derive(Debug, Clone)]
pub struct AdaptiveSfs {
    data: Arc<Dataset>,
    template: Template,
    entries: Vec<ScoredEntry>,
    index: SkylineValueIndex,
    stats: PreprocessStats,
}

impl AdaptiveSfs {
    /// Algorithm 3: computes `SKY(R̃)`, scores it under the template ranking and sorts it.
    ///
    /// Accepts either an owned [`Dataset`] or an [`Arc<Dataset>`] (share the same `Arc` across
    /// engines and threads to avoid copying the data). Requires a template with an implicit
    /// form (the sorted list's ranking is derived from it); general partial-order templates
    /// are rejected.
    pub fn build(data: impl Into<Arc<Dataset>>, template: &Template) -> Result<Self> {
        let data = data.into();
        let started = Instant::now();
        let template_pref = template.implicit().cloned().ok_or_else(|| {
            SkylineError::InvalidArgument(
                "Adaptive SFS requires a template with an implicit form".into(),
            )
        })?;
        template_pref.validate(data.schema())?;
        let score = ScoreFn::for_preference(data.schema(), &template_pref)?;
        let ctx = DominanceContext::for_template(&data, template)?;
        let all: Vec<PointId> = data.point_ids().collect();
        let skyline = sfs::skyline_sorted(&ctx, &score, &all);
        let mut this = Self::from_precomputed_skyline(data, template.clone(), skyline)?;
        this.stats.preprocess_seconds = started.elapsed().as_secs_f64();
        Ok(this)
    }

    /// Builds the structure from an already-computed template skyline (used by the hybrid
    /// engine, which shares one skyline computation between the IPO tree and Adaptive SFS, and
    /// by the maintained variant).
    pub fn from_precomputed_skyline(
        data: impl Into<Arc<Dataset>>,
        template: Template,
        skyline: Vec<PointId>,
    ) -> Result<Self> {
        let data = data.into();
        let template_pref = template.implicit().cloned().ok_or_else(|| {
            SkylineError::InvalidArgument(
                "Adaptive SFS requires a template with an implicit form".into(),
            )
        })?;
        let score = ScoreFn::for_preference(data.schema(), &template_pref)?;
        let mut entries: Vec<ScoredEntry> = skyline
            .iter()
            .map(|&p| ScoredEntry::new(p, score.score(&data, p)))
            .collect();
        entries.sort();
        let index = SkylineValueIndex::build(&data, &skyline);
        let stats = PreprocessStats {
            dataset_size: data.len(),
            template_skyline_size: entries.len(),
            preprocess_seconds: 0.0,
        };
        Ok(Self {
            data,
            template,
            entries,
            index,
            stats,
        })
    }

    /// The dataset the structure is bound to.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// Shared handle to the dataset (cheap to clone; hand it to sibling engines or threads).
    pub fn dataset_arc(&self) -> &Arc<Dataset> {
        &self.data
    }

    /// The template the structure was preprocessed for.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// Preprocessing statistics.
    pub fn preprocess_stats(&self) -> &PreprocessStats {
        &self.stats
    }

    /// The sorted list entries (`SKY(R̃)` in ascending template-score order).
    pub fn sorted_entries(&self) -> &[ScoredEntry] {
        &self.entries
    }

    /// The template skyline as sorted point ids.
    pub fn template_skyline(&self) -> Vec<PointId> {
        let mut ids: Vec<PointId> = self.entries.iter().map(|e| e.point).collect();
        ids.sort_unstable();
        ids
    }

    /// The per-dimension value index over the template skyline.
    pub fn value_index(&self) -> &SkylineValueIndex {
        &self.index
    }

    /// Approximate heap footprint in bytes (sorted list + value index), for the storage plots.
    pub fn approximate_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<ScoredEntry>() + self.index.approximate_bytes()
    }

    /// Algorithm 4 with the default [`ScanMode::AffectedOnly`]; returns sorted point ids.
    pub fn query(&self, pref: &Preference) -> Result<Vec<PointId>> {
        self.query_with_stats(pref, ScanMode::default())
            .map(|(r, _)| r)
    }

    /// Algorithm 4 with an explicit scan mode, reporting per-query statistics.
    pub fn query_with_stats(
        &self,
        pref: &Preference,
        mode: ScanMode,
    ) -> Result<(Vec<PointId>, QueryStats)> {
        let (mut result, stats) = evaluate_query(
            &self.data,
            &self.template,
            &self.entries,
            &self.index,
            pref,
            mode,
        )?;
        result.sort_unstable();
        Ok((result, stats))
    }

    /// Progressive evaluation: returns an iterator that yields skyline points in ascending
    /// query-score order. Every yielded point is already guaranteed to be in `SKY(R̃′)`, so a
    /// caller can stop early (e.g. "give me the first 10 results") without any wasted work.
    pub fn query_progressive(&self, pref: &Preference) -> Result<ProgressiveScan<'_>> {
        let ctx = DominanceContext::for_query(&self.data, &self.template, pref)?;
        let merged = merged_order(&self.data, &self.template, &self.entries, &self.index, pref)?;
        Ok(ProgressiveScan {
            ctx,
            merged,
            pos: 0,
            accepted: Vec::new(),
            accepted_affected: Vec::new(),
        })
    }
}

/// Builds the query-score-ordered candidate list: `(point, is_affected)` pairs.
fn merged_order(
    data: &Dataset,
    template: &Template,
    entries: &[ScoredEntry],
    index: &SkylineValueIndex,
    pref: &Preference,
) -> Result<Vec<(PointId, bool)>> {
    pref.validate(data.schema())?;
    template.check_refinement(data.schema(), pref)?;
    let query_score = ScoreFn::for_preference(data.schema(), pref)?;
    let affected: HashSet<PointId> = index.affected_by(pref).into_iter().collect();

    // Affected points are deleted from the sorted list and re-inserted with their new score;
    // everything else keeps its template-score position (listed-value ranks only ever move
    // points towards the front, unlisted ranks are unchanged).
    let mut reinserted: Vec<ScoredEntry> = affected
        .iter()
        .map(|&p| ScoredEntry::new(p, query_score.score(data, p)))
        .collect();
    reinserted.sort();

    let mut merged = Vec::with_capacity(entries.len());
    let mut kept = entries
        .iter()
        .filter(|e| !affected.contains(&e.point))
        .peekable();
    let mut moved = reinserted.iter().peekable();
    loop {
        match (kept.peek(), moved.peek()) {
            (Some(&&k), Some(&&m)) => {
                if k <= m {
                    merged.push((k.point, false));
                    kept.next();
                } else {
                    merged.push((m.point, true));
                    moved.next();
                }
            }
            (Some(&&k), None) => {
                merged.push((k.point, false));
                kept.next();
            }
            (None, Some(&&m)) => {
                merged.push((m.point, true));
                moved.next();
            }
            (None, None) => break,
        }
    }
    Ok(merged)
}

/// The core of Algorithm 4, shared by [`AdaptiveSfs`] and the maintained variant.
pub(crate) fn evaluate_query(
    data: &Dataset,
    template: &Template,
    entries: &[ScoredEntry],
    index: &SkylineValueIndex,
    pref: &Preference,
    mode: ScanMode,
) -> Result<(Vec<PointId>, QueryStats)> {
    let ctx = DominanceContext::for_query(data, template, pref)?;
    let merged = merged_order(data, template, entries, index, pref)?;
    let mut stats = QueryStats {
        affected: merged.iter().filter(|(_, a)| *a).count(),
        ..QueryStats::default()
    };

    let mut accepted: Vec<PointId> = Vec::new();
    let mut accepted_affected: Vec<PointId> = Vec::new();
    for &(p, is_affected) in &merged {
        let opponents: &[PointId] = match mode {
            ScanMode::AffectedOnly if !is_affected => &accepted_affected,
            _ => &accepted,
        };
        let mut dominated = false;
        for &q in opponents {
            stats.dominance_tests += 1;
            if ctx.dominates(q, p) {
                dominated = true;
                break;
            }
        }
        if !dominated {
            accepted.push(p);
            if is_affected {
                accepted_affected.push(p);
            }
        }
    }
    stats.result_size = accepted.len();
    Ok((accepted, stats))
}

/// Iterator returned by [`AdaptiveSfs::query_progressive`].
///
/// Yields the members of `SKY(R̃′)` in ascending query-score order; each item is final as soon
/// as it is produced (the progressiveness property of Section 4.3).
#[derive(Debug)]
pub struct ProgressiveScan<'a> {
    ctx: DominanceContext<'a>,
    merged: Vec<(PointId, bool)>,
    pos: usize,
    accepted: Vec<PointId>,
    accepted_affected: Vec<PointId>,
}

impl Iterator for ProgressiveScan<'_> {
    type Item = PointId;

    fn next(&mut self) -> Option<PointId> {
        while self.pos < self.merged.len() {
            let (p, is_affected) = self.merged[self.pos];
            self.pos += 1;
            let opponents = if is_affected {
                &self.accepted
            } else {
                &self.accepted_affected
            };
            let dominated = opponents.iter().any(|&q| self.ctx.dominates(q, p));
            if !dominated {
                self.accepted.push(p);
                if is_affected {
                    self.accepted_affected.push(p);
                }
                return Some(p);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::algo::bnl;
    use skyline_core::{DatasetBuilder, Dimension, ImplicitPreference, RowValue, Schema};

    fn vacation_data() -> Arc<Dataset> {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group) in [
            (1600.0, 4.0, "T"),
            (2400.0, 1.0, "T"),
            (3000.0, 5.0, "H"),
            (3600.0, 4.0, "H"),
            (2400.0, 2.0, "M"),
            (3000.0, 3.0, "M"),
        ] {
            b.push_row([RowValue::Num(price), RowValue::Num(-class), group.into()])
                .unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn build_materializes_template_skyline() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
        assert_eq!(asfs.template_skyline(), vec![0, 2, 4, 5]);
        assert_eq!(asfs.preprocess_stats().template_skyline_size, 4);
        assert_eq!(asfs.preprocess_stats().dataset_size, 6);
        assert!(asfs.approximate_bytes() > 0);
        assert_eq!(asfs.sorted_entries().len(), 4);
        assert_eq!(asfs.template().nominal_count(), 1);
        assert!(std::ptr::eq(asfs.dataset(), &*data));
        assert!(Arc::ptr_eq(asfs.dataset_arc(), &data));
    }

    #[test]
    fn table2_preferences_match_the_oracle() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
        for text in [
            "*",
            "T < M < *",
            "H < M < *",
            "H < M < T",
            "H < T < *",
            "M < *",
        ] {
            let pref = Preference::parse(&schema, [("hotel-group", text)]).unwrap();
            let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
            let expected = bnl::skyline(&ctx);
            assert_eq!(asfs.query(&pref).unwrap(), expected, "preference {text}");
            let (full, _) = asfs.query_with_stats(&pref, ScanMode::FullRescan).unwrap();
            assert_eq!(full, expected, "full rescan, preference {text}");
        }
    }

    #[test]
    fn query_stats_count_affected_points() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
        let pref = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();
        let (result, stats) = asfs
            .query_with_stats(&pref, ScanMode::AffectedOnly)
            .unwrap();
        // Affected = skyline points with hotel-group M = {e, f}.
        assert_eq!(stats.affected, 2);
        assert_eq!(stats.result_size, result.len());
        assert_eq!(result, vec![0, 2, 4, 5]);
    }

    #[test]
    fn progressive_scan_yields_final_points_in_score_order() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
        let pref = Preference::parse(&schema, [("hotel-group", "T < M < *")]).unwrap();
        let full = asfs.query(&pref).unwrap();
        let mut streamed: Vec<PointId> = Vec::new();
        for p in asfs.query_progressive(&pref).unwrap() {
            // Progressiveness: every yielded point must be in the final answer.
            assert!(
                full.contains(&p),
                "point {p} streamed but not in the skyline"
            );
            streamed.push(p);
        }
        let mut sorted = streamed.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, full);
        // First streamed result must be the best-scoring point (a = id 0 here).
        assert_eq!(streamed[0], 0);
    }

    #[test]
    fn queries_must_refine_the_template() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::from_preference(
            &schema,
            Preference::parse(&schema, [("hotel-group", "H < *")]).unwrap(),
        )
        .unwrap();
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
        let bad = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();
        assert!(asfs.query(&bad).is_err());
        let good = Preference::parse(&schema, [("hotel-group", "H < M < *")]).unwrap();
        let ctx = DominanceContext::for_query(&data, &template, &good).unwrap();
        assert_eq!(asfs.query(&good).unwrap(), bnl::skyline(&ctx));
    }

    #[test]
    fn general_templates_are_rejected() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::from_partial_orders(
            &schema,
            vec![skyline_core::PartialOrder::from_pairs(3, [(0, 1)]).unwrap()],
        )
        .unwrap();
        assert!(matches!(
            AdaptiveSfs::build(data.clone(), &template),
            Err(SkylineError::InvalidArgument(_))
        ));
    }

    #[test]
    fn wrong_arity_preferences_are_rejected() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
        let pref =
            Preference::from_dims(vec![ImplicitPreference::none(), ImplicitPreference::none()]);
        assert!(asfs.query(&pref).is_err());
    }

    #[test]
    fn affected_only_and_full_rescan_agree_on_many_preferences() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
        let values: Vec<u16> = vec![0, 1, 2];
        for &a in &values {
            for &b in &values {
                if a == b {
                    continue;
                }
                let pref = Preference::from_dims(vec![ImplicitPreference::new([a, b]).unwrap()]);
                let (fast, _) = asfs
                    .query_with_stats(&pref, ScanMode::AffectedOnly)
                    .unwrap();
                let (slow, _) = asfs.query_with_stats(&pref, ScanMode::FullRescan).unwrap();
                assert_eq!(fast, slow, "preference {a} < {b} < *");
            }
        }
    }
}
