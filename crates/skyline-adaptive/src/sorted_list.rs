//! The scored entries of the sorted list at the heart of Adaptive SFS.
//!
//! Every entry pairs a template-skyline point with its preference score `f(p)` under the
//! template ranking. [`crate::AdaptiveSfs`] keeps its entries in a sorted `Vec<ScoredEntry>`;
//! the total `(score, point)` order below is what makes binary-search insertion and removal
//! during incremental maintenance deterministic even when scores tie.

use skyline_core::PointId;

/// One `(score, point)` entry. Ordering is by score first (ascending), then by point id so the
/// order is total and deterministic even when scores tie.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredEntry {
    /// Preference score `f(p)` under the list's ranking.
    pub score: f64,
    /// The data point.
    pub point: PointId,
}

impl ScoredEntry {
    /// Creates an entry.
    pub fn new(point: PointId, score: f64) -> Self {
        Self { score, point }
    }
}

impl Eq for ScoredEntry {}

impl PartialOrd for ScoredEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScoredEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| self.point.cmp(&other.point))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_order_by_score_then_point() {
        let a = ScoredEntry::new(5, 1.0);
        let b = ScoredEntry::new(3, 1.0);
        let c = ScoredEntry::new(1, 2.0);
        let mut v = vec![c, a, b];
        v.sort();
        assert_eq!(v, vec![b, a, c]);
        assert!(a > b);
        assert_eq!(a.partial_cmp(&c), Some(std::cmp::Ordering::Less));
    }

    #[test]
    fn nan_scores_keep_the_order_total() {
        // total_cmp gives NaN a fixed position instead of panicking, so binary-search
        // insertion during maintenance cannot fail on degenerate scores.
        let mut v = [ScoredEntry::new(1, f64::NAN), ScoredEntry::new(2, 0.0)];
        v.sort();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].point, 2);
    }
}
