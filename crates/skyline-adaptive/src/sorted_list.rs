//! The scored, sorted list at the heart of Adaptive SFS.
//!
//! Every entry pairs a template-skyline point with its preference score `f(p)` under the
//! template ranking. The static query structure keeps the entries in a sorted `Vec`; the
//! maintained variant keeps them in an ordered set so single insertions and deletions cost
//! `O(log n)`, which is the property Section 4.3 relies on.

use skyline_core::PointId;
use std::collections::BTreeSet;

/// One `(score, point)` entry. Ordering is by score first (ascending), then by point id so the
/// order is total and deterministic even when scores tie.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredEntry {
    /// Preference score `f(p)` under the list's ranking.
    pub score: f64,
    /// The data point.
    pub point: PointId,
}

impl ScoredEntry {
    /// Creates an entry.
    pub fn new(point: PointId, score: f64) -> Self {
        Self { score, point }
    }
}

impl Eq for ScoredEntry {}

impl PartialOrd for ScoredEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScoredEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| self.point.cmp(&other.point))
    }
}

/// An ordered collection of [`ScoredEntry`] values with logarithmic insertion and removal.
#[derive(Debug, Clone, Default)]
pub struct SortedList {
    entries: BTreeSet<ScoredEntry>,
}

impl SortedList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a list from entries (duplicates by `(score, point)` collapse).
    pub fn from_entries<I: IntoIterator<Item = ScoredEntry>>(entries: I) -> Self {
        Self {
            entries: entries.into_iter().collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts an entry (`O(log n)`). Returns `true` if it was not present yet.
    pub fn insert(&mut self, entry: ScoredEntry) -> bool {
        self.entries.insert(entry)
    }

    /// Removes an entry (`O(log n)`). The score must match the one used at insertion; callers
    /// track scores through their value index.
    pub fn remove(&mut self, entry: &ScoredEntry) -> bool {
        self.entries.remove(entry)
    }

    /// True when the exact entry is present.
    pub fn contains(&self, entry: &ScoredEntry) -> bool {
        self.entries.contains(entry)
    }

    /// Iterates entries in ascending score order.
    pub fn iter(&self) -> impl Iterator<Item = &ScoredEntry> {
        self.entries.iter()
    }

    /// Materializes the entries into a `Vec` in ascending score order.
    pub fn to_vec(&self) -> Vec<ScoredEntry> {
        self.entries.iter().copied().collect()
    }

    /// The points in ascending score order.
    pub fn points_in_order(&self) -> Vec<PointId> {
        self.entries.iter().map(|e| e.point).collect()
    }

    /// Approximate heap footprint in bytes (for the storage plots).
    pub fn approximate_bytes(&self) -> usize {
        self.entries.len() * (std::mem::size_of::<ScoredEntry>() + 16)
    }
}

impl FromIterator<ScoredEntry> for SortedList {
    fn from_iter<I: IntoIterator<Item = ScoredEntry>>(iter: I) -> Self {
        Self::from_entries(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_order_by_score_then_point() {
        let a = ScoredEntry::new(5, 1.0);
        let b = ScoredEntry::new(3, 1.0);
        let c = ScoredEntry::new(1, 2.0);
        let mut v = vec![c, a, b];
        v.sort();
        assert_eq!(v, vec![b, a, c]);
        assert!(a > b);
        assert_eq!(a.partial_cmp(&c), Some(std::cmp::Ordering::Less));
    }

    #[test]
    fn insert_remove_iterate() {
        let mut list = SortedList::new();
        assert!(list.is_empty());
        assert!(list.insert(ScoredEntry::new(7, 3.5)));
        assert!(list.insert(ScoredEntry::new(2, 1.5)));
        assert!(list.insert(ScoredEntry::new(9, 2.5)));
        assert!(
            !list.insert(ScoredEntry::new(9, 2.5)),
            "duplicate insert is a no-op"
        );
        assert_eq!(list.len(), 3);
        assert_eq!(list.points_in_order(), vec![2, 9, 7]);
        assert!(list.contains(&ScoredEntry::new(9, 2.5)));
        assert!(list.remove(&ScoredEntry::new(9, 2.5)));
        assert!(!list.remove(&ScoredEntry::new(9, 2.5)));
        assert_eq!(list.points_in_order(), vec![2, 7]);
        assert!(list.approximate_bytes() > 0);
    }

    #[test]
    fn from_iterator_and_to_vec() {
        let list: SortedList = [ScoredEntry::new(1, 9.0), ScoredEntry::new(2, 0.5)]
            .into_iter()
            .collect();
        let v = list.to_vec();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].point, 2);
        assert_eq!(list.iter().count(), 2);
    }

    #[test]
    fn nan_scores_do_not_break_total_order() {
        // total_cmp gives NaN a fixed position instead of panicking.
        let mut list = SortedList::new();
        list.insert(ScoredEntry::new(1, f64::NAN));
        list.insert(ScoredEntry::new(2, 0.0));
        assert_eq!(list.len(), 2);
    }
}
