//! Per-dimension value index over the template skyline.
//!
//! Algorithm 4 (step 2) needs "an index for each nominal dimension" so that the data points of
//! `SKY(R̃)` carrying a particular value can be found without scanning the whole sorted list.
//! [`SkylineValueIndex`] is that index: `(nominal dimension, value id) → point ids`.

use skyline_core::{Dataset, PointId, Preference, ValueId};

/// Value → skyline-point lookup for every nominal dimension.
#[derive(Debug, Clone, Default)]
pub struct SkylineValueIndex {
    /// `lists[j][v]` = skyline points whose value on nominal dimension `j` is `v` (ascending).
    lists: Vec<Vec<Vec<PointId>>>,
}

impl SkylineValueIndex {
    /// Builds the index for the given skyline members (in any order; the per-value lists are
    /// kept sorted by point id so later insertions and removals can binary-search).
    pub fn build(data: &Dataset, skyline: &[PointId]) -> Self {
        let schema = data.schema();
        let mut lists = Vec::with_capacity(schema.nominal_count());
        for j in 0..schema.nominal_count() {
            let cardinality = schema.nominal_domain(j).map_or(0, |d| d.cardinality());
            let mut per_value = vec![Vec::new(); cardinality];
            for &p in skyline {
                per_value[data.nominal(p, j) as usize].push(p);
            }
            for list in &mut per_value {
                list.sort_unstable();
                list.dedup();
            }
            lists.push(per_value);
        }
        Self { lists }
    }

    /// Skyline points carrying value `v` on nominal dimension `j`.
    pub fn points_with(&self, nominal_index: usize, v: ValueId) -> &[PointId] {
        &self.lists[nominal_index][v as usize]
    }

    /// All skyline points affected by `pref`: those carrying at least one value listed on any
    /// dimension. Returned sorted and duplicate-free.
    pub fn affected_by(&self, pref: &Preference) -> Vec<PointId> {
        let mut out: Vec<PointId> = Vec::new();
        for (j, lists) in self.lists.iter().enumerate() {
            for &v in pref.dim(j).choices() {
                if let Some(points) = lists.get(v as usize) {
                    out.extend_from_slice(points);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Adds one point to the index (used by incremental maintenance).
    pub fn insert(&mut self, data: &Dataset, p: PointId) {
        for (j, lists) in self.lists.iter_mut().enumerate() {
            let v = data.nominal(p, j) as usize;
            let list = &mut lists[v];
            if let Err(pos) = list.binary_search(&p) {
                list.insert(pos, p);
            }
        }
    }

    /// Removes one point from the index (used by incremental maintenance).
    pub fn remove(&mut self, data: &Dataset, p: PointId) {
        for (j, lists) in self.lists.iter_mut().enumerate() {
            let v = data.nominal(p, j) as usize;
            let list = &mut lists[v];
            if let Ok(pos) = list.binary_search(&p) {
                list.remove(pos);
            }
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.lists
            .iter()
            .flat_map(|per_value| {
                per_value
                    .iter()
                    .map(|l| l.len() * std::mem::size_of::<PointId>())
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::{Dataset, Dimension, ImplicitPreference, Schema};

    fn data() -> Dataset {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal_with_labels("g", ["a", "b", "c"]),
            Dimension::nominal_with_labels("h", ["p", "q"]),
        ])
        .unwrap();
        Dataset::from_columns(
            schema,
            vec![vec![1.0, 2.0, 3.0, 4.0]],
            vec![vec![0, 1, 2, 0], vec![0, 1, 0, 1]],
        )
        .unwrap()
    }

    #[test]
    fn lookup_by_value() {
        let data = data();
        // Build from a score-ordered (non id-sorted) skyline: lists must still come out sorted.
        let index = SkylineValueIndex::build(&data, &[3, 0, 1]);
        assert_eq!(index.points_with(0, 0), &[0, 3]);
        assert_eq!(index.points_with(0, 1), &[1]);
        assert_eq!(index.points_with(0, 2), &[] as &[PointId]);
        assert_eq!(index.points_with(1, 1), &[1, 3]);
        assert!(index.approximate_bytes() > 0);
    }

    #[test]
    fn affected_by_unions_dimensions() {
        let data = data();
        let index = SkylineValueIndex::build(&data, &[0, 1, 2, 3]);
        let pref = Preference::from_dims(vec![
            ImplicitPreference::new([2]).unwrap(),
            ImplicitPreference::new([1]).unwrap(),
        ]);
        assert_eq!(index.affected_by(&pref), vec![1, 2, 3]);
        let none = Preference::none(2);
        assert!(index.affected_by(&none).is_empty());
    }

    #[test]
    fn insert_and_remove_maintain_sorted_lists() {
        let data = data();
        let mut index = SkylineValueIndex::build(&data, &[1]);
        index.insert(&data, 3);
        index.insert(&data, 0);
        index.insert(&data, 0); // duplicate insert is a no-op
        assert_eq!(index.points_with(0, 0), &[0, 3]);
        index.remove(&data, 0);
        index.remove(&data, 0);
        assert_eq!(index.points_with(0, 0), &[3]);
        assert_eq!(index.points_with(0, 1), &[1]);
    }
}
