//! Per-dimension value index over the template skyline.
//!
//! Algorithm 4 (step 2) needs "an index for each nominal dimension" so that the data points of
//! `SKY(R̃)` carrying a particular value can be found without scanning the whole sorted list.
//! [`SkylineValueIndex`] is that index: `(nominal dimension, value id) → point ids`.
//!
//! [`LiveRowIndex`] is the same shape over **all live rows** (not just the skyline). The
//! incremental-maintenance delete path uses it to restrict the resurface scan to the deleted
//! member's dominance region instead of rescanning every live row.

use skyline_core::kernel::CompiledOrder;
use skyline_core::{Dataset, PointId, Preference, ValueId};

/// Value → skyline-point lookup for every nominal dimension.
#[derive(Debug, Clone, Default)]
pub struct SkylineValueIndex {
    /// `lists[j][v]` = skyline points whose value on nominal dimension `j` is `v` (ascending).
    lists: Vec<Vec<Vec<PointId>>>,
}

impl SkylineValueIndex {
    /// Builds the index for the given skyline members (in any order; the per-value lists are
    /// kept sorted by point id so later insertions and removals can binary-search).
    pub fn build(data: &Dataset, skyline: &[PointId]) -> Self {
        let schema = data.schema();
        let mut lists = Vec::with_capacity(schema.nominal_count());
        for j in 0..schema.nominal_count() {
            let cardinality = schema.nominal_domain(j).map_or(0, |d| d.cardinality());
            let mut per_value = vec![Vec::new(); cardinality];
            for &p in skyline {
                per_value[data.nominal(p, j) as usize].push(p);
            }
            for list in &mut per_value {
                list.sort_unstable();
                list.dedup();
            }
            lists.push(per_value);
        }
        Self { lists }
    }

    /// Skyline points carrying value `v` on nominal dimension `j`.
    pub fn points_with(&self, nominal_index: usize, v: ValueId) -> &[PointId] {
        &self.lists[nominal_index][v as usize]
    }

    /// All skyline points affected by `pref`: those carrying at least one value listed on any
    /// dimension. Returned sorted and duplicate-free.
    pub fn affected_by(&self, pref: &Preference) -> Vec<PointId> {
        let mut out: Vec<PointId> = Vec::new();
        for (j, lists) in self.lists.iter().enumerate() {
            for &v in pref.dim(j).choices() {
                if let Some(points) = lists.get(v as usize) {
                    out.extend_from_slice(points);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Adds one point to the index (used by incremental maintenance).
    pub fn insert(&mut self, data: &Dataset, p: PointId) {
        for (j, lists) in self.lists.iter_mut().enumerate() {
            let v = data.nominal(p, j) as usize;
            let list = &mut lists[v];
            if let Err(pos) = list.binary_search(&p) {
                list.insert(pos, p);
            }
        }
    }

    /// Removes one point from the index (used by incremental maintenance).
    pub fn remove(&mut self, data: &Dataset, p: PointId) {
        for (j, lists) in self.lists.iter_mut().enumerate() {
            let v = data.nominal(p, j) as usize;
            let list = &mut lists[v];
            if let Ok(pos) = list.binary_search(&p) {
                list.remove(pos);
            }
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.lists
            .iter()
            .flat_map(|per_value| {
                per_value
                    .iter()
                    .map(|l| l.len() * std::mem::size_of::<PointId>())
            })
            .sum()
    }
}

/// Value → live-row lookup for every nominal dimension, over the **whole dataset**.
///
/// Built lazily by the incremental-maintenance mode on its first mutation (a one-off O(n·m')
/// pass) and updated per row afterwards with a binary search plus an in-place `Vec`
/// insert/remove — O(log n) to locate, O(k) element shifting within the touched value's list
/// (k can approach n on heavily skewed dimensions; acceptable because deletes already pay a
/// resurface scan, and fresh inserts append at the tail). When a skyline member is deleted, only
/// rows inside its *dominance region* can resurface — on each nominal dimension they must
/// carry the deleted member's value or one the template order ranks strictly worse. The index
/// makes that candidate set enumerable per dimension, so the resurface pass scans the most
/// selective dimension's list instead of every live row.
#[derive(Debug, Clone, Default)]
pub struct LiveRowIndex {
    /// `lists[j][v]` = live rows whose value on nominal dimension `j` is `v` (ascending ids).
    lists: Vec<Vec<Vec<PointId>>>,
}

impl LiveRowIndex {
    /// Builds the index over the rows for which `is_live` holds.
    pub fn build(data: &Dataset, is_live: impl Fn(PointId) -> bool) -> Self {
        let schema = data.schema();
        let mut lists = Vec::with_capacity(schema.nominal_count());
        for j in 0..schema.nominal_count() {
            let cardinality = schema.nominal_domain(j).map_or(0, |d| d.cardinality());
            let mut per_value = vec![Vec::new(); cardinality];
            for p in data.point_ids().filter(|&p| is_live(p)) {
                per_value[data.nominal(p, j) as usize].push(p);
            }
            lists.push(per_value);
        }
        Self { lists }
    }

    /// Live rows carrying value `v` on nominal dimension `j`.
    pub fn rows_with(&self, nominal_index: usize, v: ValueId) -> &[PointId] {
        &self.lists[nominal_index][v as usize]
    }

    /// Adds one (newly live) row.
    pub fn insert(&mut self, data: &Dataset, p: PointId) {
        for (j, lists) in self.lists.iter_mut().enumerate() {
            let list = &mut lists[data.nominal(p, j) as usize];
            if let Err(pos) = list.binary_search(&p) {
                list.insert(pos, p);
            }
        }
    }

    /// Removes one (tombstoned) row.
    pub fn remove(&mut self, data: &Dataset, p: PointId) {
        for (j, lists) in self.lists.iter_mut().enumerate() {
            let list = &mut lists[data.nominal(p, j) as usize];
            if let Ok(pos) = list.binary_search(&p) {
                list.remove(pos);
            }
        }
    }

    /// The candidate rows of point `p`'s dominance region, restricted along the most selective
    /// nominal dimension, or `None` when no dimension narrows the scan.
    ///
    /// A row `q` dominated by `p` must, on every nominal dimension `j`, carry `p`'s value or
    /// one strictly worse under the template order. This returns the per-dimension candidate
    /// union for whichever dimension yields the fewest rows — a superset of the dominance
    /// region, so callers still run the full pairwise test on each candidate. With no nominal
    /// dimensions the caller falls back to the full live scan.
    pub fn dominance_region_candidates(
        &self,
        data: &Dataset,
        orders: &[CompiledOrder],
        p: PointId,
    ) -> Option<Vec<PointId>> {
        let mut best: Option<(usize, usize, Vec<ValueId>)> = None; // (count, dim, worse values)
        for (j, order) in orders.iter().enumerate() {
            let pv = data.nominal(p, j);
            let worse: Vec<ValueId> = (0..order.cardinality() as ValueId)
                .filter(|&v| v == pv || order.strictly_preferred(pv, v))
                .collect();
            let count: usize = worse.iter().map(|&v| self.rows_with(j, v).len()).sum();
            if best.as_ref().is_none_or(|(c, _, _)| count < *c) {
                best = Some((count, j, worse));
            }
        }
        let (_, dim, worse) = best?;
        let mut candidates: Vec<PointId> = worse
            .iter()
            .flat_map(|&v| self.rows_with(dim, v).iter().copied())
            .collect();
        candidates.sort_unstable();
        Some(candidates)
    }

    /// Approximate heap footprint in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.lists
            .iter()
            .flat_map(|per_value| {
                per_value
                    .iter()
                    .map(|l| l.len() * std::mem::size_of::<PointId>())
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::{Dataset, Dimension, ImplicitPreference, Schema};

    fn data() -> Dataset {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal_with_labels("g", ["a", "b", "c"]),
            Dimension::nominal_with_labels("h", ["p", "q"]),
        ])
        .unwrap();
        Dataset::from_columns(
            schema,
            vec![vec![1.0, 2.0, 3.0, 4.0]],
            vec![vec![0, 1, 2, 0], vec![0, 1, 0, 1]],
        )
        .unwrap()
    }

    #[test]
    fn lookup_by_value() {
        let data = data();
        // Build from a score-ordered (non id-sorted) skyline: lists must still come out sorted.
        let index = SkylineValueIndex::build(&data, &[3, 0, 1]);
        assert_eq!(index.points_with(0, 0), &[0, 3]);
        assert_eq!(index.points_with(0, 1), &[1]);
        assert_eq!(index.points_with(0, 2), &[] as &[PointId]);
        assert_eq!(index.points_with(1, 1), &[1, 3]);
        assert!(index.approximate_bytes() > 0);
    }

    #[test]
    fn affected_by_unions_dimensions() {
        let data = data();
        let index = SkylineValueIndex::build(&data, &[0, 1, 2, 3]);
        let pref = Preference::from_dims(vec![
            ImplicitPreference::new([2]).unwrap(),
            ImplicitPreference::new([1]).unwrap(),
        ]);
        assert_eq!(index.affected_by(&pref), vec![1, 2, 3]);
        let none = Preference::none(2);
        assert!(index.affected_by(&none).is_empty());
    }

    #[test]
    fn insert_and_remove_maintain_sorted_lists() {
        let data = data();
        let mut index = SkylineValueIndex::build(&data, &[1]);
        index.insert(&data, 3);
        index.insert(&data, 0);
        index.insert(&data, 0); // duplicate insert is a no-op
        assert_eq!(index.points_with(0, 0), &[0, 3]);
        index.remove(&data, 0);
        index.remove(&data, 0);
        assert_eq!(index.points_with(0, 0), &[3]);
        assert_eq!(index.points_with(0, 1), &[1]);
    }

    #[test]
    fn live_row_index_tracks_all_live_rows() {
        let data = data();
        let mut index = LiveRowIndex::build(&data, |p| p != 2);
        assert_eq!(index.rows_with(0, 0), &[0, 3]);
        assert_eq!(index.rows_with(0, 2), &[] as &[PointId]);
        index.insert(&data, 2);
        assert_eq!(index.rows_with(0, 2), &[2]);
        index.remove(&data, 3);
        assert_eq!(index.rows_with(0, 0), &[0]);
        assert!(index.approximate_bytes() > 0);
    }

    #[test]
    fn dominance_region_picks_the_most_selective_dimension() {
        use skyline_core::PartialOrder;
        let data = data();
        let index = LiveRowIndex::build(&data, |_| true);
        // Empty template orders: the region of a value is the value itself.
        let empty = [
            CompiledOrder::compile(&PartialOrder::empty(3)),
            CompiledOrder::compile(&PartialOrder::empty(2)),
        ];
        // Point 2 carries g=2 (1 row) and h=0 (2 rows): dimension g is more selective.
        let candidates = index.dominance_region_candidates(&data, &empty, 2).unwrap();
        assert_eq!(candidates, vec![2]);
        // With a template order 0 ≺ 1 on h, point 0 (h=0) dominates rows with h ∈ {0, 1}:
        // the g dimension (value 0 → rows {0, 3}) still ties or wins.
        let ordered = [
            CompiledOrder::compile(&PartialOrder::empty(3)),
            CompiledOrder::compile(&PartialOrder::from_pairs(2, [(0, 1)]).unwrap()),
        ];
        let candidates = index
            .dominance_region_candidates(&data, &ordered, 0)
            .unwrap();
        assert_eq!(candidates, vec![0, 3]);
        // No nominal dimensions → no restriction possible.
        let numeric_only = Schema::new(vec![Dimension::numeric("x")]).unwrap();
        let tiny = Dataset::from_columns(numeric_only, vec![vec![1.0]], vec![]).unwrap();
        let bare = LiveRowIndex::build(&tiny, |_| true);
        assert!(bare.dominance_region_candidates(&tiny, &[], 0).is_none());
    }
}
