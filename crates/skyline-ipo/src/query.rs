//! IPO-tree query evaluation: Algorithm 1 (recursive decomposition) and Algorithm 2 (merge).
//!
//! An implicit preference of order `x` on dimension `d` is split into its `x` first-order
//! sub-preferences `v₁ ≺ ∗`, …, `v_x ≺ ∗`. Each sub-preference maps to one child of the current
//! tree node; the recursion evaluates the remaining dimensions under that child with the
//! child's disqualified points removed, and the partial results are recombined with the
//! merging property (Theorem 2):
//!
//! ```text
//! SKY(v₁ ≺ … ≺ v_i ≺ ∗)  =  (SKY(v₁ ≺ … ≺ v_{i-1} ≺ ∗) ∩ SKY(v_i ≺ ∗))  ∪  PSKY
//! ```
//!
//! where `PSKY` is the subset of the left operand whose dimension-`d` value is one of
//! `v₁ … v_{i-1}`. (Algorithm 2 in the paper writes the merge dimension as `d + 1` because its
//! pseudo-code increments `d` before the call; the dimension that matters is the one that was
//! split, which is what this implementation uses.)
//!
//! All sets here are sorted id vectors; see [`crate::bitmap`] for the bitmap variant.

use crate::setops;
use crate::tree::IpoTree;
use skyline_core::{Dataset, PointId, Preference, Result};

/// Work counters for one query evaluation (the paper bounds the number of set operations by
/// `O(x^{m'})`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of tree nodes visited.
    pub nodes_visited: u64,
    /// Number of set operations (intersections, unions, differences, filters) performed.
    pub set_operations: u64,
    /// Number of leaf-level partial results produced.
    pub leaf_results: u64,
}

impl IpoTree {
    /// Evaluates an implicit-preference query and returns the skyline as sorted point ids.
    ///
    /// The preference must refine the tree's template and may only list values that are
    /// materialized in the tree; otherwise [`skyline_core::SkylineError::NotMaterialized`] (or a refinement
    /// error) is returned so a caller can fall back to Adaptive SFS, as Section 3.1 recommends
    /// for unpopular values.
    pub fn query(&self, data: &Dataset, pref: &Preference) -> Result<Vec<PointId>> {
        self.query_with_stats(data, pref).map(|(result, _)| result)
    }

    /// Like [`IpoTree::query`], additionally reporting work counters.
    pub fn query_with_stats(
        &self,
        data: &Dataset,
        pref: &Preference,
    ) -> Result<(Vec<PointId>, QueryStats)> {
        let schema = data.schema();
        pref.validate(schema)?;
        self.template.check_refinement(schema, pref)?;
        self.require_materialized(schema, pref)?;
        let mut stats = QueryStats::default();
        let result = self.query_rec(data, pref, 0, 0, self.skyline.clone(), &mut stats);
        Ok((result, stats))
    }

    /// Algorithm 1: evaluate dimensions `dim..m'` below `node`, starting from candidate set `s`.
    fn query_rec(
        &self,
        data: &Dataset,
        pref: &Preference,
        dim: usize,
        node: u32,
        s: Vec<PointId>,
        stats: &mut QueryStats,
    ) -> Vec<PointId> {
        stats.nodes_visited += 1;
        if dim == self.nominal_count() {
            stats.leaf_results += 1;
            return s;
        }
        let dim_pref = pref.dim(dim);
        if dim_pref.is_none() {
            let child = self
                .child_of(node, None)
                .expect("every node has a φ child by construction");
            return self.query_rec(data, pref, dim + 1, child, s, stats);
        }
        // Split into first-order sub-queries, one per listed value.
        let mut partials = Vec::with_capacity(dim_pref.order());
        for &v in dim_pref.choices() {
            let child = self
                .child_of(node, Some(v))
                .expect("materialization was checked before the recursion started");
            let disqualified = self.node(child).disqualified();
            stats.set_operations += 1;
            let reduced = setops::difference(&s, disqualified);
            partials.push(self.query_rec(data, pref, dim + 1, child, reduced, stats));
        }
        self.merge(data, dim, dim_pref.choices(), partials, stats)
    }

    /// Algorithm 2: fold the per-value partial results into the skyline of the full
    /// `v₁ ≺ … ≺ v_x ≺ ∗` preference on dimension `dim`.
    fn merge(
        &self,
        data: &Dataset,
        dim: usize,
        choices: &[skyline_core::ValueId],
        partials: Vec<Vec<PointId>>,
        stats: &mut QueryStats,
    ) -> Vec<PointId> {
        let mut partials = partials.into_iter();
        let mut x = partials.next().unwrap_or_default();
        for (i, y) in partials.enumerate() {
            // `prefix` holds v₁ … v_i (the values already folded into `x`).
            let prefix = &choices[..=i];
            stats.set_operations += 3;
            let z: Vec<PointId> = x
                .iter()
                .copied()
                .filter(|&p| prefix.contains(&data.nominal(p, dim)))
                .collect();
            let intersection = setops::intersection(&x, &y);
            x = setops::union(&intersection, &z);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IpoTreeBuilder;
    use skyline_core::algo::bnl;
    use skyline_core::SkylineError;
    use skyline_core::{
        DatasetBuilder, Dimension, DominanceContext, ImplicitPreference, RowValue, Schema, Template,
    };

    /// Table 3 of the paper.
    fn table3_data() -> skyline_core::Dataset {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
            Dimension::nominal_with_labels("airline", ["G", "R", "W"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group, airline) in [
            (1600.0, 4.0, "T", "G"),
            (2400.0, 1.0, "T", "G"),
            (3000.0, 5.0, "H", "G"),
            (3600.0, 4.0, "H", "R"),
            (2400.0, 2.0, "M", "R"),
            (3000.0, 3.0, "M", "W"),
        ] {
            b.push_row([
                RowValue::Num(price),
                RowValue::Num(-class),
                group.into(),
                airline.into(),
            ])
            .unwrap();
        }
        b.build().unwrap()
    }

    fn tree_and_data() -> (IpoTree, skyline_core::Dataset) {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let tree = IpoTreeBuilder::new().build(&data, &template).unwrap();
        (tree, data)
    }

    #[test]
    fn example1_queries_from_the_paper() {
        let (tree, data) = tree_and_data();
        let schema = data.schema().clone();
        // Q_A: "M ≺ ∗"                        → {a, c, d, e, f}
        // Q_B: "M ≺ ∗, G ≺ ∗"                 → {a, c, e, f}
        // Q_C: "M ≺ H ≺ ∗, G ≺ ∗"             → {a, c, e, f}
        // Q_D: "M ≺ H ≺ ∗, G ≺ R ≺ ∗"         → {a, c, e, f}
        let cases = [
            (vec![("hotel-group", "M < *")], vec![0, 2, 3, 4, 5]),
            (
                vec![("hotel-group", "M < *"), ("airline", "G < *")],
                vec![0, 2, 4, 5],
            ),
            (
                vec![("hotel-group", "M < H < *"), ("airline", "G < *")],
                vec![0, 2, 4, 5],
            ),
            (
                vec![("hotel-group", "M < H < *"), ("airline", "G < R < *")],
                vec![0, 2, 4, 5],
            ),
        ];
        for (spec, expected) in cases {
            let pref = Preference::parse(&schema, spec.clone()).unwrap();
            let got = tree.query(&data, &pref).unwrap();
            assert_eq!(got, expected, "query {spec:?}");
        }
    }

    #[test]
    fn matches_bnl_for_every_order_two_preference() {
        let (tree, data) = tree_and_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        // Exhaustively check every ordered pair of values on each dimension (and their
        // combinations) against the brute-force oracle.
        let values: Vec<u16> = vec![0, 1, 2];
        let mut prefs = vec![ImplicitPreference::none()];
        for &a in &values {
            prefs.push(ImplicitPreference::new([a]).unwrap());
            for &b in &values {
                if a != b {
                    prefs.push(ImplicitPreference::new([a, b]).unwrap());
                }
            }
        }
        for hotel in &prefs {
            for airline in &prefs {
                let pref = Preference::from_dims(vec![hotel.clone(), airline.clone()]);
                let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
                let expected = bnl::skyline(&ctx);
                let got = tree.query(&data, &pref).unwrap();
                assert_eq!(got, expected, "hotel {hotel:?} airline {airline:?}");
            }
        }
    }

    #[test]
    fn query_stats_are_reported() {
        let (tree, data) = tree_and_data();
        let schema = data.schema().clone();
        let pref = Preference::parse(
            &schema,
            [("hotel-group", "M < H < *"), ("airline", "G < R < *")],
        )
        .unwrap();
        let (result, stats) = tree.query_with_stats(&data, &pref).unwrap();
        assert_eq!(result, vec![0, 2, 4, 5]);
        // Figure 3: the evaluation touches 4 leaf combinations for a 2×2 order query.
        assert_eq!(stats.leaf_results, 4);
        assert!(stats.nodes_visited >= 4);
        assert!(stats.set_operations > 0);
    }

    #[test]
    fn non_materialized_values_are_reported() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let tree = IpoTreeBuilder::new()
            .top_k_values(1)
            .build(&data, &template)
            .unwrap();
        let schema = data.schema().clone();
        let pref = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();
        assert!(matches!(
            tree.query(&data, &pref),
            Err(SkylineError::NotMaterialized { .. })
        ));
        // A query that only uses materialized values still works.
        let ok =
            Preference::parse(&schema, [("hotel-group", "T < *"), ("airline", "G < *")]).unwrap();
        assert_eq!(tree.query(&data, &ok).unwrap(), vec![0, 2]);
    }

    #[test]
    fn queries_must_refine_the_template() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::from_preference(
            &schema,
            Preference::parse(&schema, [("hotel-group", "T < *")]).unwrap(),
        )
        .unwrap();
        let tree = IpoTreeBuilder::new().build(&data, &template).unwrap();
        let bad = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();
        assert!(matches!(
            tree.query(&data, &bad),
            Err(SkylineError::NotARefinement { .. })
        ));
        let good = Preference::parse(
            &schema,
            [("hotel-group", "T < M < *"), ("airline", "G < *")],
        )
        .unwrap();
        let ctx = DominanceContext::for_query(&data, &template, &good).unwrap();
        assert_eq!(tree.query(&data, &good).unwrap(), bnl::skyline(&ctx));
    }

    #[test]
    fn wrong_arity_preference_is_rejected() {
        let (tree, data) = tree_and_data();
        let pref = Preference::none(1);
        assert!(tree.query(&data, &pref).is_err());
    }

    #[test]
    fn empty_preference_returns_template_skyline() {
        let (tree, data) = tree_and_data();
        let pref = Preference::none(2);
        assert_eq!(tree.query(&data, &pref).unwrap(), tree.skyline());
    }
}
