//! Set operations over sorted point-id vectors.
//!
//! The set-based IPO-tree query evaluation (Algorithm 1/2) manipulates subsets of the template
//! skyline. All sets are kept as **sorted, duplicate-free `Vec<PointId>`**, so every operation
//! is a linear merge walk.

use skyline_core::PointId;

/// `a ∩ b` for sorted, duplicate-free inputs.
pub fn intersection(a: &[PointId], b: &[PointId]) -> Vec<PointId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// `a ∪ b` for sorted, duplicate-free inputs.
pub fn union(a: &[PointId], b: &[PointId]) -> Vec<PointId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// `a \ b` for sorted, duplicate-free inputs.
pub fn difference(a: &[PointId], b: &[PointId]) -> Vec<PointId> {
    let mut out = Vec::with_capacity(a.len());
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
    out
}

/// True when sorted, duplicate-free `a` is a subset of sorted, duplicate-free `b`.
pub fn is_subset(a: &[PointId], b: &[PointId]) -> bool {
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// Debug helper: checks the "sorted and duplicate-free" invariant.
pub fn is_sorted_set(a: &[PointId]) -> bool {
    a.windows(2).all(|w| w[0] < w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_union_difference() {
        let a = vec![1, 3, 5, 7, 9];
        let b = vec![3, 4, 5, 10];
        assert_eq!(intersection(&a, &b), vec![3, 5]);
        assert_eq!(union(&a, &b), vec![1, 3, 4, 5, 7, 9, 10]);
        assert_eq!(difference(&a, &b), vec![1, 7, 9]);
        assert_eq!(difference(&b, &a), vec![4, 10]);
    }

    #[test]
    fn operations_with_empty_sets() {
        let a = vec![1, 2, 3];
        let empty: Vec<PointId> = vec![];
        assert_eq!(intersection(&a, &empty), empty);
        assert_eq!(union(&a, &empty), a);
        assert_eq!(union(&empty, &a), a);
        assert_eq!(difference(&a, &empty), a);
        assert_eq!(difference(&empty, &a), empty);
    }

    #[test]
    fn subset_checks() {
        assert!(is_subset(&[2, 4], &[1, 2, 3, 4]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[2, 5], &[1, 2, 3, 4]));
        assert!(!is_subset(&[0], &[]));
    }

    #[test]
    fn results_remain_sorted_sets() {
        let a = vec![1, 2, 3, 50];
        let b = vec![2, 3, 4];
        for result in [intersection(&a, &b), union(&a, &b), difference(&a, &b)] {
            assert!(is_sorted_set(&result));
        }
        assert!(is_sorted_set(&[]));
        assert!(!is_sorted_set(&[1, 1]));
        assert!(!is_sorted_set(&[2, 1]));
    }
}
