//! Set operations over sorted point-id vectors.
//!
//! The set-based IPO-tree query evaluation (Algorithm 1/2) manipulates subsets of the template
//! skyline. All sets are kept as **sorted, duplicate-free `Vec<PointId>`**, so every operation
//! is a linear merge walk.

use skyline_core::PointId;

/// Size ratio at which [`intersection`] switches from the linear merge to the galloping
/// (exponential-search) walk: when one input is at least this many times larger than the
/// other, skipping through the big side beats scanning it.
const GALLOP_RATIO: usize = 8;

/// `a ∩ b` for sorted, duplicate-free inputs.
///
/// Size-adaptive: comparably sized inputs take the linear merge (the dense-case path, O(|a| +
/// |b|)); when one side is ≫ smaller the merge walks the small side and **gallops** through
/// the large side with exponential + binary search, giving O(|small| · log |large|) instead of
/// a full scan. The IPO-tree merge (Algorithm 2) hits exactly this shape whenever one
/// first-order sub-skyline is much more selective than the other.
pub fn intersection(a: &[PointId], b: &[PointId]) -> Vec<PointId> {
    if a.len().saturating_mul(GALLOP_RATIO) < b.len() {
        return gallop_intersection(a, b);
    }
    if b.len().saturating_mul(GALLOP_RATIO) < a.len() {
        return gallop_intersection(b, a);
    }
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Intersection walking the small side, galloping through the large side.
fn gallop_intersection(small: &[PointId], large: &[PointId]) -> Vec<PointId> {
    let mut out = Vec::with_capacity(small.len());
    let mut base = 0;
    for &x in small {
        base += gallop_to(&large[base..], x);
        if base >= large.len() {
            break;
        }
        if large[base] == x {
            out.push(x);
            base += 1;
        }
    }
    out
}

/// Index of the first element of sorted `slice` that is `>= x` (or `slice.len()`): probe at
/// exponentially growing steps to bracket `x`, then binary-search the bracket.
fn gallop_to(slice: &[PointId], x: PointId) -> usize {
    if slice.first().is_none_or(|&first| first >= x) {
        return 0;
    }
    // Invariant: slice[lo] < x. Double the step until the probe overshoots (or runs out).
    let mut lo = 0;
    let mut step = 1;
    while lo + step < slice.len() && slice[lo + step] < x {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step).min(slice.len());
    lo += 1 + slice[lo + 1..hi].partition_point(|&v| v < x);
    lo
}

/// `a ∪ b` for sorted, duplicate-free inputs.
pub fn union(a: &[PointId], b: &[PointId]) -> Vec<PointId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// `a \ b` for sorted, duplicate-free inputs.
pub fn difference(a: &[PointId], b: &[PointId]) -> Vec<PointId> {
    let mut out = Vec::with_capacity(a.len());
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
    out
}

/// True when sorted, duplicate-free `a` is a subset of sorted, duplicate-free `b`.
pub fn is_subset(a: &[PointId], b: &[PointId]) -> bool {
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// Debug helper: checks the "sorted and duplicate-free" invariant.
pub fn is_sorted_set(a: &[PointId]) -> bool {
    a.windows(2).all(|w| w[0] < w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_union_difference() {
        let a = vec![1, 3, 5, 7, 9];
        let b = vec![3, 4, 5, 10];
        assert_eq!(intersection(&a, &b), vec![3, 5]);
        assert_eq!(union(&a, &b), vec![1, 3, 4, 5, 7, 9, 10]);
        assert_eq!(difference(&a, &b), vec![1, 7, 9]);
        assert_eq!(difference(&b, &a), vec![4, 10]);
    }

    #[test]
    fn operations_with_empty_sets() {
        let a = vec![1, 2, 3];
        let empty: Vec<PointId> = vec![];
        assert_eq!(intersection(&a, &empty), empty);
        assert_eq!(union(&a, &empty), a);
        assert_eq!(union(&empty, &a), a);
        assert_eq!(difference(&a, &empty), a);
        assert_eq!(difference(&empty, &a), empty);
    }

    #[test]
    fn subset_checks() {
        assert!(is_subset(&[2, 4], &[1, 2, 3, 4]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[2, 5], &[1, 2, 3, 4]));
        assert!(!is_subset(&[0], &[]));
    }

    /// The plain two-pointer merge, kept as the oracle for the size-adaptive dispatch.
    fn linear_intersection(a: &[PointId], b: &[PointId]) -> Vec<PointId> {
        a.iter().copied().filter(|x| b.contains(x)).collect()
    }

    #[test]
    fn galloping_matches_linear_on_skewed_inputs() {
        // Large side triggers the galloping path (ratio ≥ 8) in both argument orders.
        let large: Vec<PointId> = (0..1000).map(|i| i * 3).collect();
        let cases: Vec<Vec<PointId>> = vec![
            vec![],
            vec![0],
            vec![2999],
            vec![1, 2, 4],                            // nothing in common
            vec![0, 3, 2997],                         // first, early, last
            (0..40).map(|i| i * 75).collect(),        // spread across the range
            vec![2996, 2997, 2998, 2999, 3000, 4000], // clustered past the end
        ];
        for small in cases {
            let expected = linear_intersection(&small, &large);
            assert_eq!(intersection(&small, &large), expected, "small={small:?}");
            assert_eq!(
                intersection(&large, &small),
                expected,
                "flipped small={small:?}"
            );
        }
    }

    #[test]
    fn galloping_handles_dense_runs_in_the_large_side() {
        let large: Vec<PointId> = (0..500).collect();
        let small: Vec<PointId> = vec![0, 1, 2, 250, 498, 499];
        assert_eq!(intersection(&small, &large), small);
        assert_eq!(intersection(&large, &small), small);
    }

    #[test]
    fn gallop_to_finds_the_first_not_less_position() {
        let v: Vec<PointId> = vec![2, 4, 8, 16, 32, 64];
        assert_eq!(gallop_to(&v, 0), 0);
        assert_eq!(gallop_to(&v, 2), 0);
        assert_eq!(gallop_to(&v, 3), 1);
        assert_eq!(gallop_to(&v, 33), 5);
        assert_eq!(gallop_to(&v, 64), 5);
        assert_eq!(gallop_to(&v, 65), 6);
        assert_eq!(gallop_to(&[], 5), 0);
    }

    #[test]
    fn results_remain_sorted_sets() {
        let a = vec![1, 2, 3, 50];
        let b = vec![2, 3, 4];
        for result in [intersection(&a, &b), union(&a, &b), difference(&a, &b)] {
            assert!(is_sorted_set(&result));
        }
        assert!(is_sorted_set(&[]));
        assert!(!is_sorted_set(&[1, 1]));
        assert!(!is_sorted_set(&[2, 1]));
    }
}
