//! IPO-tree construction (Section 3.1).
//!
//! The builder:
//!
//! 1. computes the *base skyline* `SKY(∅)` (no nominal preference at all) and the *template
//!    skyline* `SKY(R)` that the root stores;
//! 2. decides which values to materialize per nominal dimension — all of them (full **IPO
//!    Tree**) or the `K` most frequent (**IPO Tree-K**, the paper's *IPO Tree-10*);
//! 3. enumerates one node per combination of at most one first-order choice per dimension and
//!    computes its disqualified set `A`, either from precomputed minimal disqualifying
//!    conditions (the paper's approach) or by direct recomputation against the base skyline.
//!
//! The per-node computations are independent, so step 3 can optionally run on multiple threads
//! (scoped threads); the paper's preprocessing-time figures correspond to the single-threaded
//! path.

use crate::tree::{IpoNode, IpoTree};
use skyline_core::algo::{bnl, sfs};
use skyline_core::mdc::{compute_mdcs_with_dominators, MdcIndex};
use skyline_core::score::ScoreFn;
use skyline_core::{
    Dataset, DominanceContext, ImplicitPreference, PartialOrder, PointId, Preference, Result,
    SkylineError, Template, ValueId,
};
use std::time::Instant;

/// How the per-node disqualified sets are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildStrategy {
    /// Mine minimal disqualifying conditions once, then evaluate each node by subset tests
    /// (the implementation Section 3.1 describes). Usually the faster option.
    #[default]
    Mdc,
    /// Recompute, for every node, which template-skyline points become dominated under the
    /// node's first-order combination. No MDC index, more dominance tests; kept as an ablation
    /// baseline for the design choice.
    Direct,
}

/// Statistics recorded while building a tree (reported by the benchmark harness).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BuildStats {
    /// `|SKY(∅)|`: size of the base skyline used as the dominator pool.
    pub base_skyline_size: usize,
    /// `|SKY(R)|`: size of the template skyline stored at the root.
    pub template_skyline_size: usize,
    /// Number of tree nodes created.
    pub node_count: usize,
    /// Number of minimal disqualifying conditions mined (0 for the direct strategy).
    pub mdc_conditions: usize,
    /// Wall-clock seconds spent in construction.
    pub build_seconds: f64,
}

/// Configurable IPO-tree builder.
#[derive(Debug, Clone, Default)]
pub struct IpoTreeBuilder {
    strategy: BuildStrategy,
    top_k: Option<usize>,
    explicit: Option<Vec<Vec<ValueId>>>,
    parallel: bool,
}

impl IpoTreeBuilder {
    /// A builder with the default configuration: MDC strategy, all values materialized,
    /// single-threaded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the node-evaluation strategy.
    pub fn strategy(mut self, strategy: BuildStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Materializes only the `k` most frequent values of every nominal dimension
    /// (the paper's *IPO Tree-10* uses `k = 10`).
    pub fn top_k_values(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Materializes every value of every nominal dimension (the default).
    pub fn all_values(mut self) -> Self {
        self.top_k = None;
        self.explicit = None;
        self
    }

    /// Materializes exactly the given value sets (one per nominal dimension), overriding the
    /// frequency-based selection — the *recorded* truncation policy
    /// ([`IpoTreeBuilder::top_k_values`]) is unchanged, so a later rebuild still knows it is
    /// a top-`k` tree.
    ///
    /// This is the hook [`IpoTree::rebuilt_for`] uses for its hysteresis: a rebuilt
    /// truncated tree materializes the union of the fresh top-`k` with previously
    /// materialized values that have not yet fallen well out of the top `k`, so preferences
    /// served from the tree do not flap to the fallback path on every small frequency shift.
    pub fn materialize_values(mut self, sets: Vec<Vec<ValueId>>) -> Self {
        self.explicit = Some(sets);
        self
    }

    /// Enables multi-threaded node evaluation.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Builds the tree for `data` under `template` and returns it with build statistics.
    ///
    /// The template must have an implicit form (the experiments' templates always do); general
    /// partial-order templates are rejected because query evaluation relies on the
    /// prefix-refinement property of implicit preferences.
    pub fn build_with_stats(
        &self,
        data: &Dataset,
        template: &Template,
    ) -> Result<(IpoTree, BuildStats)> {
        let started = Instant::now();
        let schema = data.schema();
        if template.implicit().is_none() {
            return Err(SkylineError::InvalidArgument(
                "IPO-tree construction requires a template with an implicit form".into(),
            ));
        }
        if template.nominal_count() != schema.nominal_count() {
            return Err(SkylineError::InvalidArgument(format!(
                "template covers {} nominal dimensions but the schema has {}",
                template.nominal_count(),
                schema.nominal_count()
            )));
        }

        // 1. Base skyline SKY(∅): dominator pool for every node computation.
        let empty_orders: Vec<PartialOrder> = schema
            .nominal_cardinalities()
            .into_iter()
            .map(PartialOrder::empty)
            .collect();
        let base_ctx = DominanceContext::new(data, empty_orders)?;
        let base_score = ScoreFn::default_ranking(schema);
        let all_points: Vec<PointId> = data.point_ids().collect();
        let mut base_skyline = sfs::skyline_sorted(&base_ctx, &base_score, &all_points);
        base_skyline.sort_unstable();

        // 2. Template skyline SKY(R) ⊆ SKY(∅): what the root stores.
        let template_ctx = DominanceContext::for_template(data, template)?;
        let skyline = if template.is_empty() {
            base_skyline.clone()
        } else {
            bnl::skyline_of(&template_ctx, &base_skyline)
        };

        // 3. Values to materialize, per dimension (most frequent first).
        let materialized: Vec<Vec<ValueId>> = match &self.explicit {
            Some(sets) => {
                if sets.len() != schema.nominal_count() {
                    return Err(SkylineError::InvalidArgument(format!(
                        "explicit materialization covers {} nominal dimensions but the schema \
                         has {}",
                        sets.len(),
                        schema.nominal_count()
                    )));
                }
                for (j, set) in sets.iter().enumerate() {
                    let card = schema.nominal_domain(j).map_or(0, |d| d.cardinality());
                    if let Some(&v) = set.iter().find(|&&v| (v as usize) >= card) {
                        return Err(SkylineError::InvalidArgument(format!(
                            "value {v} is outside nominal dimension {j}'s domain of {card}"
                        )));
                    }
                }
                sets.clone()
            }
            None => (0..schema.nominal_count())
                .map(|j| {
                    let by_freq = data.values_by_frequency(j);
                    match self.top_k {
                        Some(k) => by_freq.into_iter().take(k).collect(),
                        None => by_freq,
                    }
                })
                .collect(),
        };

        // 4. Precompute MDCs if requested.
        let mdc_index: Option<MdcIndex> = match self.strategy {
            BuildStrategy::Mdc => Some(compute_mdcs_with_dominators(
                &base_ctx,
                &skyline,
                &base_skyline,
            )),
            BuildStrategy::Direct => None,
        };

        // 5. Enumerate nodes breadth-first and compute disqualified sets.
        let mut nodes = vec![IpoNode {
            dim: usize::MAX,
            label: None,
            disqualified: Vec::new(),
            children: Vec::new(),
        }];
        // Frontier entries: (node id, the first-order choices along its path).
        let mut frontier: Vec<(u32, Vec<Option<ValueId>>)> = vec![(0, Vec::new())];
        for (dim, dim_values) in materialized.iter().enumerate().take(schema.nominal_count()) {
            let mut next_frontier = Vec::with_capacity(frontier.len() * (dim_values.len() + 1));
            // Create children (φ first, then the materialized values) for every frontier node.
            let mut pending: Vec<(u32, Vec<Option<ValueId>>)> = Vec::new();
            for (parent, path) in &frontier {
                let mut labels: Vec<Option<ValueId>> = Vec::with_capacity(dim_values.len() + 1);
                labels.push(None);
                labels.extend(dim_values.iter().copied().map(Some));
                for label in labels {
                    let id = nodes.len() as u32;
                    nodes.push(IpoNode {
                        dim,
                        label,
                        disqualified: Vec::new(),
                        children: Vec::new(),
                    });
                    let mut child_path = path.clone();
                    child_path.push(label);
                    nodes[*parent as usize].children.push((label, id));
                    pending.push((id, child_path.clone()));
                    next_frontier.push((id, child_path));
                }
                nodes[*parent as usize].children.sort_by_key(|(l, _)| *l);
            }
            // Compute the disqualified sets of the freshly created labelled nodes.
            let labelled: Vec<(u32, Vec<Option<ValueId>>)> = pending
                .into_iter()
                .filter(|(id, _)| nodes[*id as usize].label.is_some())
                .collect();
            let sets = self.compute_disqualified_sets(
                data,
                &skyline,
                &base_skyline,
                mdc_index.as_ref(),
                &labelled,
            );
            for ((id, _), set) in labelled.into_iter().zip(sets) {
                nodes[id as usize].disqualified = set;
            }
            frontier = next_frontier;
        }

        let stats = BuildStats {
            base_skyline_size: base_skyline.len(),
            template_skyline_size: skyline.len(),
            node_count: nodes.len(),
            mdc_conditions: mdc_index.as_ref().map_or(0, MdcIndex::condition_count),
            build_seconds: started.elapsed().as_secs_f64(),
        };
        let tree = IpoTree {
            template: template.clone(),
            skyline,
            materialized,
            nodes,
            top_k: self.top_k,
        };
        Ok((tree, stats))
    }

    /// Convenience wrapper around [`IpoTreeBuilder::build_with_stats`].
    pub fn build(&self, data: &Dataset, template: &Template) -> Result<IpoTree> {
        self.build_with_stats(data, template).map(|(tree, _)| tree)
    }

    /// Computes the disqualified set of every `(node, path)` pair, optionally in parallel.
    fn compute_disqualified_sets(
        &self,
        data: &Dataset,
        skyline: &[PointId],
        base_skyline: &[PointId],
        mdc_index: Option<&MdcIndex>,
        work: &[(u32, Vec<Option<ValueId>>)],
    ) -> Vec<Vec<PointId>> {
        let eval = |path: &[Option<ValueId>]| -> Vec<PointId> {
            match (self.strategy, mdc_index) {
                (BuildStrategy::Mdc, Some(index)) => {
                    let bits = index.disqualified_by_first_order(path);
                    bits.iter().map(|i| index.skyline()[i]).collect()
                }
                _ => direct_disqualified(data, skyline, base_skyline, path),
            }
        };

        if !self.parallel || work.len() < 8 {
            return work.iter().map(|(_, path)| eval(path)).collect();
        }

        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(work.len());
        let chunk_size = work.len().div_ceil(threads);
        let eval = &eval;
        let mut results: Vec<Vec<Vec<PointId>>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = work
                .chunks(chunk_size)
                .map(|chunk| {
                    scope
                        .spawn(move || chunk.iter().map(|(_, path)| eval(path)).collect::<Vec<_>>())
                })
                .collect();
            for handle in handles {
                results.push(handle.join().expect("worker thread panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }
}

/// Direct recomputation of a node's disqualified set: a template-skyline point is disqualified
/// when some base-skyline point dominates it under the node's first-order combination.
fn direct_disqualified(
    data: &Dataset,
    skyline: &[PointId],
    base_skyline: &[PointId],
    path: &[Option<ValueId>],
) -> Vec<PointId> {
    let schema = data.schema();
    let orders: Vec<PartialOrder> = (0..schema.nominal_count())
        .map(|j| {
            let card = schema.nominal_domain(j).map_or(0, |d| d.cardinality());
            match path.get(j).copied().flatten() {
                Some(v) => ImplicitPreference::first_order(v)
                    .to_partial_order(card)
                    .expect("materialized value is inside the domain"),
                None => PartialOrder::empty(card),
            }
        })
        .collect();
    let ctx = DominanceContext::new(data, orders).expect("orders match the schema");
    skyline
        .iter()
        .copied()
        .filter(|&p| base_skyline.iter().any(|&q| ctx.dominates(q, p)))
        .collect()
}

/// Builds the preference profile corresponding to one combination of first-order choices
/// (useful in tests and the benchmark harness).
pub fn first_order_preference(nominal_count: usize, path: &[Option<ValueId>]) -> Preference {
    let mut pref = Preference::none(nominal_count);
    for (j, choice) in path.iter().enumerate().take(nominal_count) {
        if let Some(v) = choice {
            pref.set_dim(j, ImplicitPreference::first_order(*v));
        }
    }
    pref
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::{DatasetBuilder, Dimension, RowValue, Schema};

    /// Table 3 of the paper: two nominal attributes (Hotel-group and Airline).
    fn table3_data() -> Dataset {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
            Dimension::nominal_with_labels("airline", ["G", "R", "W"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group, airline) in [
            (1600.0, 4.0, "T", "G"), // a = 0
            (2400.0, 1.0, "T", "G"), // b = 1
            (3000.0, 5.0, "H", "G"), // c = 2
            (3600.0, 4.0, "H", "R"), // d = 3
            (2400.0, 2.0, "M", "R"), // e = 4
            (3000.0, 3.0, "M", "W"), // f = 5
        ] {
            b.push_row([
                RowValue::Num(price),
                RowValue::Num(-class),
                group.into(),
                airline.into(),
            ])
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn figure2_tree_shape_and_sets() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let (tree, stats) = IpoTreeBuilder::new()
            .build_with_stats(&data, &template)
            .unwrap();

        // Root skyline S = {a, c, d, e, f} (Figure 2).
        assert_eq!(tree.skyline(), &[0, 2, 3, 4, 5]);
        // 1 root + 4 children (φ, T, H, M) + 4·4 grandchildren = 21 nodes, as drawn.
        assert_eq!(tree.node_count(), 21);
        assert_eq!(stats.node_count, 21);
        assert_eq!(stats.template_skyline_size, 5);
        assert!(stats.build_seconds >= 0.0);
        assert!(stats.mdc_conditions > 0);

        // Node 6 in Figure 2 is "T ≺ ∗, G ≺ ∗" with A = {d, e, f}.
        let node = tree.node_for_choices(&[Some(0), Some(0)]).unwrap();
        assert_eq!(tree.node(node).disqualified(), &[3, 4, 5]);
        // "H ≺ ∗, G ≺ ∗" disqualifies {d, f}; "M ≺ ∗, G ≺ ∗" disqualifies {d};
        // "φ, G ≺ ∗" disqualifies {d}.
        let node = tree.node_for_choices(&[Some(1), Some(0)]).unwrap();
        assert_eq!(tree.node(node).disqualified(), &[3, 5]);
        let node = tree.node_for_choices(&[Some(2), Some(0)]).unwrap();
        assert_eq!(tree.node(node).disqualified(), &[3]);
        let node = tree.node_for_choices(&[None, Some(0)]).unwrap();
        assert_eq!(tree.node(node).disqualified(), &[3]);
        // First-level nodes alone disqualify nothing on this data (Figure 2 shows A = {}).
        for v in 0..3u16 {
            let node = tree.node_for_choices(&[Some(v)]).unwrap();
            assert!(tree.node(node).disqualified().is_empty(), "value {v}");
        }
    }

    #[test]
    fn direct_and_mdc_strategies_agree() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let mdc_tree = IpoTreeBuilder::new()
            .strategy(BuildStrategy::Mdc)
            .build(&data, &template)
            .unwrap();
        let direct_tree = IpoTreeBuilder::new()
            .strategy(BuildStrategy::Direct)
            .build(&data, &template)
            .unwrap();
        assert_eq!(mdc_tree.node_count(), direct_tree.node_count());
        for ((_, a), (_, b)) in mdc_tree.iter_nodes().zip(direct_tree.iter_nodes()) {
            assert_eq!(a.disqualified(), b.disqualified());
            assert_eq!(a.label(), b.label());
        }
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let seq = IpoTreeBuilder::new().build(&data, &template).unwrap();
        let par = IpoTreeBuilder::new()
            .parallel(true)
            .build(&data, &template)
            .unwrap();
        assert_eq!(seq.node_count(), par.node_count());
        for ((_, a), (_, b)) in seq.iter_nodes().zip(par.iter_nodes()) {
            assert_eq!(a.disqualified(), b.disqualified());
        }
    }

    #[test]
    fn top_k_limits_materialized_values() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let (tree, stats) = IpoTreeBuilder::new()
            .top_k_values(1)
            .build_with_stats(&data, &template)
            .unwrap();
        // Only the most frequent value per dimension: hotel-group T or H (both appear twice,
        // frequency ties broken by id → T), airline G (3 rows).
        assert_eq!(tree.materialized_values(0).len(), 1);
        assert_eq!(tree.materialized_values(1), &[0]);
        // 1 root + 2 children (φ + 1 value) + 2·2 grandchildren = 7 nodes.
        assert_eq!(stats.node_count, 7);
        assert!(tree.node_for_choices(&[Some(2), None]).is_none());
        // Back to the full tree with `all_values`.
        let full = IpoTreeBuilder::new()
            .top_k_values(1)
            .all_values()
            .build(&data, &template)
            .unwrap();
        assert_eq!(full.node_count(), 21);
    }

    #[test]
    fn rebuilt_for_preserves_the_truncation_policy() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let truncated = IpoTreeBuilder::new()
            .top_k_values(1)
            .build(&data, &template)
            .unwrap();
        assert_eq!(truncated.top_k(), Some(1));
        assert_eq!(truncated.materialized_values(0), &[0]); // hotel-group T
                                                            // Rebuild over data with one more (M, W) row: M overtakes T on hotel-group, but the
                                                            // previously materialized T is still rank 2 (within 2k), so hysteresis keeps it.
        let mut grown = data.clone();
        grown.push_row_ids(&[100.0, -9.0], &[2, 2]).unwrap();
        let rebuilt = truncated.rebuilt_for(&grown, &template).unwrap();
        assert_eq!(rebuilt.top_k(), Some(1), "the recorded policy is preserved");
        assert_eq!(
            rebuilt.materialized_values(0),
            &[2, 0],
            "fresh top-1 (M) plus the retained old value (T), most frequent first"
        );
        // Airline: G stays the most frequent value, so nothing extra is retained.
        assert_eq!(rebuilt.materialized_values(1), &[0]);
        assert_eq!(
            rebuilt.skyline(),
            IpoTreeBuilder::new()
                .top_k_values(1)
                .build(&grown, &template)
                .unwrap()
                .skyline()
        );
        // A full tree rebuilds full.
        let full = IpoTreeBuilder::new().build(&data, &template).unwrap();
        assert_eq!(full.top_k(), None);
        let rebuilt_full = full.rebuilt_for(&grown, &template).unwrap();
        assert!(rebuilt_full.node_count() > truncated.node_count());
    }

    /// The drift regression: before hysteresis, the rebuild above would materialize only the
    /// new top-1 and every preference on the old value silently fell back; and the retention
    /// must *release* once a value falls well out of the top k.
    #[test]
    fn hysteresis_retains_then_releases_displaced_values() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let tree = IpoTreeBuilder::new()
            .top_k_values(1)
            .build(&data, &template)
            .unwrap();
        assert!(tree.is_materialized(0, 0)); // hotel-group T is the top value

        // Churn: M gains rows until T sits at rank 2 — retained by hysteresis.
        let mut churned = data.clone();
        churned.push_row_ids(&[100.0, -9.0], &[2, 2]).unwrap();
        let rebuilt = tree.rebuilt_for(&churned, &template).unwrap();
        assert!(rebuilt.is_materialized(0, 2), "fresh top value");
        assert!(rebuilt.is_materialized(0, 0), "displaced value retained");
        let pref = Preference::from_dims(vec![
            ImplicitPreference::first_order(0),
            ImplicitPreference::none(),
        ]);
        assert!(rebuilt.materializes(&pref), "old preference keeps serving");

        // More churn: H also overtakes T (rank 3, outside 2k = 2) — now T is demoted, and a
        // fresh build from the *rebuilt* tree confirms retention does not compound.
        for _ in 0..2 {
            churned.push_row_ids(&[100.0, -9.0], &[1, 2]).unwrap();
        }
        let demoted = rebuilt.rebuilt_for(&churned, &template).unwrap();
        assert!(demoted.is_materialized(0, 2));
        assert!(
            !demoted.is_materialized(0, 0),
            "a value well out of the top k is released"
        );
        assert!(!demoted.materializes(&pref));
    }

    #[test]
    fn explicit_materialization_is_validated() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        // Wrong dimension count.
        assert!(matches!(
            IpoTreeBuilder::new()
                .materialize_values(vec![vec![0]])
                .build(&data, &template),
            Err(SkylineError::InvalidArgument(_))
        ));
        // Out-of-domain value.
        assert!(matches!(
            IpoTreeBuilder::new()
                .materialize_values(vec![vec![0], vec![9]])
                .build(&data, &template),
            Err(SkylineError::InvalidArgument(_))
        ));
        // A valid explicit set is honored verbatim.
        let tree = IpoTreeBuilder::new()
            .top_k_values(1)
            .materialize_values(vec![vec![2, 0], vec![0]])
            .build(&data, &template)
            .unwrap();
        assert_eq!(tree.materialized_values(0), &[2, 0]);
        assert_eq!(tree.top_k(), Some(1));
    }

    #[test]
    fn template_skyline_shrinks_with_template() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::from_preference(
            &schema,
            Preference::parse(&schema, [("hotel-group", "T < *")]).unwrap(),
        )
        .unwrap();
        let (tree, stats) = IpoTreeBuilder::new()
            .build_with_stats(&data, &template)
            .unwrap();
        // Under T ≺ ∗ the skyline of the whole dataset is {a, c, d} minus what T-preference
        // removes: a dominates e and f (airline G vs R/W incomparable? no: e,f have R/W).
        // Recompute expectations directly for safety.
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        let expected = bnl::skyline(&ctx);
        assert_eq!(tree.skyline(), expected.as_slice());
        assert!(stats.template_skyline_size <= stats.base_skyline_size);
    }

    #[test]
    fn general_template_is_rejected() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::from_partial_orders(
            &schema,
            vec![
                PartialOrder::from_pairs(3, [(0, 1)]).unwrap(),
                PartialOrder::empty(3),
            ],
        )
        .unwrap();
        assert!(matches!(
            IpoTreeBuilder::new().build(&data, &template),
            Err(SkylineError::InvalidArgument(_))
        ));
    }

    #[test]
    fn first_order_preference_helper() {
        let pref = first_order_preference(3, &[Some(2), None, Some(0)]);
        assert_eq!(pref.dim(0).choices(), &[2]);
        assert!(pref.dim(1).is_none());
        assert_eq!(pref.dim(2).choices(), &[0]);
        assert_eq!(pref.order(), 1);
    }
}
