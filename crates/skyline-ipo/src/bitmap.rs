//! Bitmap-based IPO-tree representation and query evaluation.
//!
//! Section 3.2, *Implementation*: "Another efficient implementation is to store the skyline for
//! each node in the IPO-tree by means of a bitmap (replacing A) and to create an inverted list
//! for each nominal attribute … Efficient bitwise operations can then be used for the set
//! operations."
//!
//! [`BitmapIpoTree`] mirrors the topology of a set-based [`IpoTree`], but each node keeps a
//! bitmap over the *positions* of the template skyline, and the whole of Algorithm 1/2 runs on
//! bitmaps; the answer is materialized into point ids only at the very end.

use crate::inverted::InvertedIndex;
use crate::query::QueryStats;
use crate::tree::IpoTree;
use skyline_core::{BitSet, Dataset, PointId, Preference, Result, SkylineError, Template, ValueId};

/// One node of the bitmap tree: the same label/children layout as the set-based node, with the
/// disqualified set stored as a bitmap over skyline positions.
#[derive(Debug, Clone)]
struct BitmapNode {
    disqualified: BitSet,
    children: Vec<(Option<ValueId>, u32)>,
}

/// Bitmap variant of the IPO-tree (plus the inverted lists needed by the merge step).
#[derive(Debug, Clone)]
pub struct BitmapIpoTree {
    template: Template,
    skyline: Vec<PointId>,
    materialized: Vec<Vec<ValueId>>,
    nodes: Vec<BitmapNode>,
    inverted: InvertedIndex,
}

impl BitmapIpoTree {
    /// Converts a set-based tree into its bitmap representation.
    pub fn from_tree(tree: &IpoTree, data: &Dataset) -> Self {
        let skyline = tree.skyline().to_vec();
        let position_of = |p: PointId| skyline.binary_search(&p).expect("disqualified ⊆ skyline");
        let nodes = tree
            .iter_nodes()
            .map(|(_, node)| BitmapNode {
                disqualified: BitSet::from_indexes(
                    skyline.len(),
                    node.disqualified().iter().map(|&p| position_of(p)),
                ),
                children: node.children.clone(),
            })
            .collect();
        let inverted = InvertedIndex::build(data, &skyline);
        Self {
            template: tree.template().clone(),
            skyline,
            materialized: (0..tree.nominal_count())
                .map(|j| tree.materialized_values(j).to_vec())
                .collect(),
            nodes,
            inverted,
        }
    }

    /// The template skyline (sorted point ids).
    pub fn skyline(&self) -> &[PointId] {
        &self.skyline
    }

    /// The template the tree was built for.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// Number of nominal dimensions.
    pub fn nominal_count(&self) -> usize {
        self.materialized.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The inverted lists used by the merge step.
    pub fn inverted(&self) -> &InvertedIndex {
        &self.inverted
    }

    /// True when value `v` of dimension `j` is materialized.
    pub fn is_materialized(&self, nominal_index: usize, v: ValueId) -> bool {
        self.materialized[nominal_index].contains(&v)
    }

    /// The first `(nominal dimension, value)` listed by `pref` that is **not** materialized,
    /// or `None` when this tree can answer the preference (same predicate as
    /// [`IpoTree::first_unmaterialized`]).
    pub fn first_unmaterialized(&self, pref: &Preference) -> Option<(usize, ValueId)> {
        (0..self.nominal_count().min(pref.nominal_count())).find_map(|j| {
            pref.dim(j)
                .choices()
                .iter()
                .find(|&&v| !self.is_materialized(j, v))
                .map(|&v| (j, v))
        })
    }

    /// Errors with [`SkylineError::NotMaterialized`] when the tree cannot answer `pref`;
    /// mirrors [`IpoTree::require_materialized`] so the two representations reject
    /// identically.
    pub fn require_materialized(
        &self,
        schema: &skyline_core::Schema,
        pref: &Preference,
    ) -> Result<()> {
        let Some((j, v)) = self.first_unmaterialized(pref) else {
            return Ok(());
        };
        Err(SkylineError::NotMaterialized {
            dimension: schema.nominal_dimension_name(j),
            value: v as u32,
        })
    }

    fn child_of(&self, node: u32, label: Option<ValueId>) -> Option<u32> {
        let children = &self.nodes[node as usize].children;
        children
            .binary_search_by_key(&label, |(l, _)| *l)
            .ok()
            .map(|i| children[i].1)
    }

    /// Evaluates an implicit-preference query; same contract as [`IpoTree::query`].
    pub fn query(&self, data: &Dataset, pref: &Preference) -> Result<Vec<PointId>> {
        self.query_with_stats(data, pref).map(|(r, _)| r)
    }

    /// Evaluates a query and reports work counters.
    pub fn query_with_stats(
        &self,
        data: &Dataset,
        pref: &Preference,
    ) -> Result<(Vec<PointId>, QueryStats)> {
        let schema = data.schema();
        pref.validate(schema)?;
        self.template.check_refinement(schema, pref)?;
        self.require_materialized(schema, pref)?;
        let mut stats = QueryStats::default();
        let all = BitSet::full(self.skyline.len());
        let bits = self.query_rec(pref, 0, 0, all, &mut stats);
        let result = bits.iter().map(|pos| self.skyline[pos]).collect();
        Ok((result, stats))
    }

    fn query_rec(
        &self,
        pref: &Preference,
        dim: usize,
        node: u32,
        s: BitSet,
        stats: &mut QueryStats,
    ) -> BitSet {
        stats.nodes_visited += 1;
        if dim == self.nominal_count() {
            stats.leaf_results += 1;
            return s;
        }
        let dim_pref = pref.dim(dim);
        if dim_pref.is_none() {
            let child = self.child_of(node, None).expect("φ child exists");
            return self.query_rec(pref, dim + 1, child, s, stats);
        }
        let mut partials = Vec::with_capacity(dim_pref.order());
        for &v in dim_pref.choices() {
            let child = self
                .child_of(node, Some(v))
                .expect("materialization checked");
            let mut reduced = s.clone();
            reduced.difference_with(&self.nodes[child as usize].disqualified);
            stats.set_operations += 1;
            partials.push(self.query_rec(pref, dim + 1, child, reduced, stats));
        }
        self.merge(dim, dim_pref.choices(), partials, stats)
    }

    /// Algorithm 2 on bitmaps: `X ← (X ∩ Y) ∪ (X ∩ positions(prefix values))`.
    fn merge(
        &self,
        dim: usize,
        choices: &[ValueId],
        partials: Vec<BitSet>,
        stats: &mut QueryStats,
    ) -> BitSet {
        let mut partials = partials.into_iter();
        let mut x = partials
            .next()
            .unwrap_or_else(|| BitSet::new(self.skyline.len()));
        for (i, y) in partials.enumerate() {
            let prefix = &choices[..=i];
            stats.set_operations += 3;
            let mut z = self.inverted.positions_of_any(dim, prefix);
            z.intersect_with(&x);
            x.intersect_with(&y);
            x.union_with(&z);
        }
        x
    }

    /// Reconstructs the set-based [`IpoTree`] this bitmap tree mirrors: position bitmaps
    /// are turned back into sorted point-id sets, and each node's dimension/label — which
    /// the bitmap representation does not store — is re-derived from the topology (a node's
    /// dimension is its depth minus one, its label the edge it hangs from).
    ///
    /// The snapshot writer uses this so both tree representations share one on-disk
    /// encoding; the loader converts back with [`BitmapIpoTree::from_tree`].
    pub fn to_ipo_tree(&self) -> IpoTree {
        use crate::tree::IpoNode;
        let mut nodes: Vec<IpoNode> = self
            .nodes
            .iter()
            .map(|n| IpoNode {
                dim: usize::MAX,
                label: None,
                disqualified: n.disqualified.iter().map(|pos| self.skyline[pos]).collect(),
                children: n.children.clone(),
            })
            .collect();
        let mut queue = std::collections::VecDeque::from([(0u32, 0usize)]);
        while let Some((id, depth)) = queue.pop_front() {
            for (label, child) in nodes[id as usize].children.clone() {
                nodes[child as usize].dim = depth;
                nodes[child as usize].label = label;
                queue.push_back((child, depth + 1));
            }
        }
        IpoTree {
            template: self.template.clone(),
            skyline: self.skyline.clone(),
            materialized: self.materialized.clone(),
            nodes,
            top_k: None,
        }
    }

    /// Approximate heap footprint of the bitmap tree in bytes.
    pub fn approximate_bytes(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| n.disqualified.approximate_bytes() + n.children.len() * 8 + 16)
            .sum();
        node_bytes
            + self.skyline.len() * std::mem::size_of::<PointId>()
            + self.inverted.approximate_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IpoTreeBuilder;
    use skyline_core::algo::bnl;
    use skyline_core::{
        DatasetBuilder, Dimension, DominanceContext, ImplicitPreference, RowValue, Schema,
    };

    fn table3_data() -> Dataset {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
            Dimension::nominal_with_labels("airline", ["G", "R", "W"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group, airline) in [
            (1600.0, 4.0, "T", "G"),
            (2400.0, 1.0, "T", "G"),
            (3000.0, 5.0, "H", "G"),
            (3600.0, 4.0, "H", "R"),
            (2400.0, 2.0, "M", "R"),
            (3000.0, 3.0, "M", "W"),
        ] {
            b.push_row([
                RowValue::Num(price),
                RowValue::Num(-class),
                group.into(),
                airline.into(),
            ])
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn bitmap_tree_matches_set_tree_on_all_small_queries() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let set_tree = IpoTreeBuilder::new().build(&data, &template).unwrap();
        let bitmap_tree = BitmapIpoTree::from_tree(&set_tree, &data);
        assert_eq!(bitmap_tree.node_count(), set_tree.node_count());
        assert_eq!(bitmap_tree.skyline(), set_tree.skyline());
        assert!(bitmap_tree.approximate_bytes() > 0);
        assert_eq!(bitmap_tree.template().nominal_count(), 2);
        assert_eq!(
            bitmap_tree.inverted().skyline_len(),
            set_tree.skyline().len()
        );

        let values: Vec<u16> = vec![0, 1, 2];
        let mut prefs = vec![ImplicitPreference::none()];
        for &a in &values {
            prefs.push(ImplicitPreference::new([a]).unwrap());
            for &b in &values {
                if a != b {
                    prefs.push(ImplicitPreference::new([a, b]).unwrap());
                }
            }
        }
        for hotel in &prefs {
            for airline in &prefs {
                let pref = Preference::from_dims(vec![hotel.clone(), airline.clone()]);
                let expected = set_tree.query(&data, &pref).unwrap();
                let got = bitmap_tree.query(&data, &pref).unwrap();
                assert_eq!(got, expected, "hotel {hotel:?} airline {airline:?}");
                let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
                assert_eq!(got, bnl::skyline(&ctx));
            }
        }
    }

    #[test]
    fn bitmap_tree_rejects_non_materialized_values() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let set_tree = IpoTreeBuilder::new()
            .top_k_values(1)
            .build(&data, &template)
            .unwrap();
        let bitmap_tree = BitmapIpoTree::from_tree(&set_tree, &data);
        let schema = data.schema().clone();
        let pref = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();
        assert!(matches!(
            bitmap_tree.query(&data, &pref),
            Err(SkylineError::NotMaterialized { .. })
        ));
    }

    #[test]
    fn bitmap_query_stats_match_set_based_shape() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let set_tree = IpoTreeBuilder::new().build(&data, &template).unwrap();
        let bitmap_tree = BitmapIpoTree::from_tree(&set_tree, &data);
        let schema = data.schema().clone();
        let pref = Preference::parse(
            &schema,
            [("hotel-group", "M < H < *"), ("airline", "G < R < *")],
        )
        .unwrap();
        let (_, set_stats) = set_tree.query_with_stats(&data, &pref).unwrap();
        let (_, bitmap_stats) = bitmap_tree.query_with_stats(&data, &pref).unwrap();
        assert_eq!(set_stats.leaf_results, bitmap_stats.leaf_results);
        assert_eq!(set_stats.nodes_visited, bitmap_stats.nodes_visited);
    }
}
