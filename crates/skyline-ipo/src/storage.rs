//! Storage accounting for the materialized structures.
//!
//! Figures 4(c)–8(c) of the paper compare the storage footprint of IPO Tree, IPO Tree-10,
//! SFS-A and SFS-D. This module turns the in-memory structures into byte counts so the
//! benchmark harness can print the same series.

use crate::bitmap::BitmapIpoTree;
use crate::tree::IpoTree;
use skyline_core::PointId;

/// Byte-level breakdown of a materialized IPO-tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageReport {
    /// Bytes for the template skyline id list stored at the root.
    pub skyline_bytes: usize,
    /// Bytes for the per-node disqualified sets (or bitmaps).
    pub node_set_bytes: usize,
    /// Bytes for the tree topology (labels + child tables).
    pub topology_bytes: usize,
    /// Bytes for auxiliary indexes (inverted lists for the bitmap variant).
    pub auxiliary_bytes: usize,
    /// Number of nodes.
    pub node_count: usize,
}

impl StorageReport {
    /// Total bytes.
    pub fn total_bytes(&self) -> usize {
        self.skyline_bytes + self.node_set_bytes + self.topology_bytes + self.auxiliary_bytes
    }

    /// Total megabytes (the unit used in the paper's plots).
    pub fn total_megabytes(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }
}

/// Storage report of a set-based [`IpoTree`].
pub fn ipo_tree_storage(tree: &IpoTree) -> StorageReport {
    let skyline_bytes = std::mem::size_of_val(tree.skyline());
    let node_set_bytes = tree
        .iter_nodes()
        .map(|(_, n)| std::mem::size_of_val(n.disqualified()))
        .sum();
    let topology_bytes = tree
        .iter_nodes()
        .map(|(_, n)| 16 + n.child_count() * 8)
        .sum();
    StorageReport {
        skyline_bytes,
        node_set_bytes,
        topology_bytes,
        auxiliary_bytes: 0,
        node_count: tree.node_count(),
    }
}

/// Storage report of a [`BitmapIpoTree`] (nodes + inverted lists).
pub fn bitmap_tree_storage(tree: &BitmapIpoTree) -> StorageReport {
    let skyline_bytes = std::mem::size_of_val(tree.skyline());
    let total = tree.approximate_bytes();
    let auxiliary_bytes = tree.inverted().approximate_bytes();
    StorageReport {
        skyline_bytes,
        node_set_bytes: total.saturating_sub(skyline_bytes + auxiliary_bytes),
        topology_bytes: 0,
        auxiliary_bytes,
        node_count: tree.node_count(),
    }
}

/// Storage of a plain sorted skyline list (what SFS-A materializes: `SKY(R̃)` plus its sorted
/// order and per-point scores).
pub fn sorted_list_storage(skyline_len: usize) -> usize {
    // point id + f64 score per entry, plus the sorted index.
    skyline_len
        * (std::mem::size_of::<PointId>() + std::mem::size_of::<f64>() + std::mem::size_of::<u32>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IpoTreeBuilder;
    use skyline_core::{DatasetBuilder, Dimension, RowValue, Schema, Template};

    fn tree() -> (IpoTree, skyline_core::Dataset) {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::nominal_with_labels("g", ["a", "b", "c"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (p, g) in [(1.0, "a"), (2.0, "b"), (3.0, "c"), (4.0, "a")] {
            b.push_row([RowValue::Num(p), g.into()]).unwrap();
        }
        let data = b.build().unwrap();
        let template = Template::empty(data.schema());
        let tree = IpoTreeBuilder::new().build(&data, &template).unwrap();
        (tree, data)
    }

    #[test]
    fn set_tree_storage_adds_up() {
        let (tree, _) = tree();
        let report = ipo_tree_storage(&tree);
        assert_eq!(report.node_count, tree.node_count());
        assert_eq!(
            report.total_bytes(),
            report.skyline_bytes
                + report.node_set_bytes
                + report.topology_bytes
                + report.auxiliary_bytes
        );
        assert!(report.total_bytes() > 0);
        assert!(report.total_megabytes() > 0.0);
    }

    #[test]
    fn bitmap_storage_includes_inverted_lists() {
        let (tree, data) = tree();
        let bitmap = BitmapIpoTree::from_tree(&tree, &data);
        let report = bitmap_tree_storage(&bitmap);
        assert!(report.auxiliary_bytes > 0);
        assert_eq!(report.node_count, tree.node_count());
        assert!(report.total_bytes() >= report.auxiliary_bytes);
    }

    #[test]
    fn truncated_tree_uses_less_storage() {
        let (full, data) = tree();
        let template = Template::empty(data.schema());
        let truncated = IpoTreeBuilder::new()
            .top_k_values(1)
            .build(&data, &template)
            .unwrap();
        assert!(ipo_tree_storage(&truncated).total_bytes() < ipo_tree_storage(&full).total_bytes());
    }

    #[test]
    fn sorted_list_storage_is_linear() {
        assert_eq!(sorted_list_storage(0), 0);
        assert_eq!(sorted_list_storage(10) * 10, sorted_list_storage(100));
    }
}
