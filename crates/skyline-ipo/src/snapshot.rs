//! IPO-tree snapshot codec: the [`skyline_core::snapshot::SECTION_IPO_TREE`] payload.
//!
//! The materialized sets are the bulk of a tree — `O(c^{m'})` nodes, each carrying a sorted
//! subset of the template skyline — so they are stored as **delta-encoded vbyte posting
//! lists** ([`ByteWriter::put_postings`]): sorted skyline subsets have small gaps, and the
//! gap encoding routinely shrinks them well below raw `u32` ids. Both tree representations
//! share this one encoding: a [`BitmapIpoTree`](crate::BitmapIpoTree) serializes through
//! [`BitmapIpoTree::to_ipo_tree`](crate::BitmapIpoTree::to_ipo_tree) and is reconstituted
//! with [`BitmapIpoTree::from_tree`](crate::BitmapIpoTree::from_tree) after decoding.
//!
//! Decoding trusts nothing. The container CRC already catches random corruption; this layer
//! re-establishes every *structural* invariant the query paths `expect()` on, so even a
//! checksum-colliding payload can only fail with a
//! [`SnapshotError`], never panic or serve out-of-range rows:
//!
//! * every disqualified set is a subset of the skyline — checked through the crate's
//!   size-adaptive galloping [`setops::intersection`], the same merge primitive queries use
//!   (this is what [`BitmapIpoTree::from_tree`](crate::BitmapIpoTree::from_tree)'s
//!   position lookup requires);
//! * the node graph is a tree rooted at node 0 whose children at depth `d` are exactly the
//!   φ child plus one child per materialized value of dimension `d` (what
//!   `child_of(..).expect(..)` requires after `require_materialized` passes);
//! * skyline ids stay below the row count (what `data.nominal(p, d)` in the merge step and
//!   the inverted-index build require).

use crate::setops;
use crate::tree::{IpoNode, IpoTree};
use skyline_core::snapshot::{ByteReader, ByteWriter, SnapshotError};
use skyline_core::{Template, ValueId};

/// Serializes `tree` into the `SECTION_IPO_TREE` payload.
///
/// Layout: truncation flag (+ vbyte `k`), skyline posting list, per-dimension materialized
/// value lists, then per node (arena order, root first) its disqualified posting list and
/// labelled child edges. Node dimensions/labels are *not* stored — they are implied by the
/// topology and re-derived (and cross-checked) during decode.
pub fn encode_tree(tree: &IpoTree) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match tree.top_k() {
        Some(k) => {
            w.put_u8(1);
            w.put_vbyte(k as u64);
        }
        None => w.put_u8(0),
    }
    w.put_postings(tree.skyline());
    w.put_u32(tree.nominal_count() as u32);
    for j in 0..tree.nominal_count() {
        let values = tree.materialized_values(j);
        w.put_u32(values.len() as u32);
        w.put_u16_slice(values);
    }
    w.put_u32(tree.node_count() as u32);
    for (_, node) in tree.iter_nodes() {
        w.put_postings(node.disqualified());
        w.put_u32(node.children.len() as u32);
        for &(label, child) in &node.children {
            match label {
                Some(v) => {
                    w.put_u8(1);
                    w.put_u16(v);
                }
                None => {
                    w.put_u8(0);
                    w.put_u16(0);
                }
            }
            w.put_u32(child);
        }
    }
    w.into_inner()
}

/// Decodes a tree written by [`encode_tree`] and re-validates every structural invariant
/// (see the module docs). `n_rows` is the row count of the dataset the tree serves —
/// skyline ids must stay below it.
pub fn decode_tree(
    template: Template,
    n_rows: usize,
    bytes: &[u8],
) -> Result<IpoTree, SnapshotError> {
    let mut r = ByteReader::new(bytes);
    let top_k = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_vbyte()? as usize),
        other => {
            return Err(SnapshotError::Corrupt(format!(
                "unknown tree truncation tag {other}"
            )))
        }
    };
    let skyline = r.get_postings(n_rows)?;
    if let Some(&last) = skyline.last() {
        if last as usize >= n_rows {
            return Err(SnapshotError::Corrupt(format!(
                "skyline id {last} is outside the dataset's {n_rows} rows"
            )));
        }
    }
    let m = r.get_u32()? as usize;
    if m != template.nominal_count() {
        return Err(SnapshotError::Corrupt(format!(
            "tree covers {m} nominal dimensions but the template has {}",
            template.nominal_count()
        )));
    }
    let mut materialized = Vec::with_capacity(m);
    for _ in 0..m {
        let count = r.get_u32()? as usize;
        if count > ValueId::MAX as usize + 1 {
            return Err(SnapshotError::Corrupt(format!(
                "{count} materialized values exceed the ValueId range"
            )));
        }
        materialized.push(r.get_u16_vec(count)?);
    }
    let node_count = r.get_u32()? as usize;
    // Each serialized node occupies at least five bytes, so a count beyond the payload
    // length is corrupt — reject before the arena allocation.
    if node_count == 0 || node_count > bytes.len() {
        return Err(SnapshotError::Corrupt(format!(
            "implausible node count {node_count} for a {}-byte payload",
            bytes.len()
        )));
    }
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let disqualified = r.get_postings(skyline.len())?;
        // Subset-of-skyline check via the size-adaptive galloping intersection (the
        // decoded list is usually ≪ the skyline, exactly the shape the gallop is for).
        if setops::intersection(&disqualified, &skyline).len() != disqualified.len() {
            return Err(SnapshotError::Corrupt(
                "disqualified set is not a subset of the template skyline".into(),
            ));
        }
        let child_count = r.get_u32()? as usize;
        if child_count > ValueId::MAX as usize + 2 {
            return Err(SnapshotError::Corrupt(format!(
                "node claims {child_count} children, beyond one per domain value plus φ"
            )));
        }
        let mut children = Vec::with_capacity(child_count);
        for _ in 0..child_count {
            let label = match r.get_u8()? {
                0 => {
                    r.get_u16()?;
                    None
                }
                1 => Some(r.get_u16()?),
                other => {
                    return Err(SnapshotError::Corrupt(format!(
                        "unknown child label tag {other}"
                    )))
                }
            };
            children.push((label, r.get_u32()?));
        }
        nodes.push(IpoNode {
            dim: usize::MAX,
            label: None,
            disqualified,
            children,
        });
    }
    r.expect_end()?;

    // Topology walk from the root: assigns each node's dimension (= depth) and label (= its
    // incoming edge), and verifies the invariants the query recursion relies on.
    let mut expected_labels: Vec<Vec<Option<ValueId>>> = Vec::with_capacity(m);
    for values in &materialized {
        let mut sorted = values.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(SnapshotError::Corrupt(
                "a dimension materializes the same value twice".into(),
            ));
        }
        expected_labels.push(
            std::iter::once(None)
                .chain(sorted.into_iter().map(Some))
                .collect(),
        );
    }
    let mut depth = vec![usize::MAX; node_count];
    depth[0] = 0;
    let mut queue = std::collections::VecDeque::from([0u32]);
    let mut visited = 1usize;
    while let Some(id) = queue.pop_front() {
        let d = depth[id as usize];
        let children = nodes[id as usize].children.clone();
        if d == m {
            if !children.is_empty() {
                return Err(SnapshotError::Corrupt(
                    "leaf-level tree node has children".into(),
                ));
            }
            continue;
        }
        let labels: Vec<Option<ValueId>> = children.iter().map(|&(label, _)| label).collect();
        if labels != expected_labels[d] {
            return Err(SnapshotError::Corrupt(format!(
                "children of a depth-{d} node do not match the φ child plus the \
                 materialized values of dimension {d}"
            )));
        }
        for (label, child) in children {
            let c = child as usize;
            if c >= node_count {
                return Err(SnapshotError::Corrupt(format!(
                    "child id {child} is outside the {node_count}-node arena"
                )));
            }
            if depth[c] != usize::MAX {
                return Err(SnapshotError::Corrupt(format!(
                    "node {child} is reachable along more than one path"
                )));
            }
            depth[c] = d + 1;
            nodes[c].dim = d;
            nodes[c].label = label;
            visited += 1;
            queue.push_back(child);
        }
    }
    if visited != node_count {
        return Err(SnapshotError::Corrupt(format!(
            "{} tree nodes are unreachable from the root",
            node_count - visited
        )));
    }
    // The root and every φ node carry no disqualified set (the query paths never consult
    // them; a non-empty set there means the payload was not produced by the builder).
    for node in &nodes {
        if node.label.is_none() && !node.disqualified.is_empty() {
            return Err(SnapshotError::Corrupt(
                "root/φ node carries a non-empty disqualified set".into(),
            ));
        }
    }
    Ok(IpoTree {
        template,
        skyline,
        materialized,
        nodes,
        top_k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::BitmapIpoTree;
    use crate::build::IpoTreeBuilder;
    use skyline_core::{
        Dataset, DatasetBuilder, Dimension, Preference, RowValue, Schema, Template,
    };

    fn table3_data() -> Dataset {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
            Dimension::nominal_with_labels("airline", ["G", "R", "W"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group, airline) in [
            (1600.0, 4.0, "T", "G"),
            (2400.0, 1.0, "T", "G"),
            (3000.0, 5.0, "H", "G"),
            (3600.0, 4.0, "H", "R"),
            (2400.0, 2.0, "M", "R"),
            (3000.0, 3.0, "M", "W"),
        ] {
            b.push_row([
                RowValue::Num(price),
                RowValue::Num(-class),
                group.into(),
                airline.into(),
            ])
            .unwrap();
        }
        b.build().unwrap()
    }

    fn all_small_preferences() -> Vec<Preference> {
        use skyline_core::ImplicitPreference;
        let values: Vec<u16> = vec![0, 1, 2];
        let mut dims = vec![ImplicitPreference::none()];
        for &a in &values {
            dims.push(ImplicitPreference::new([a]).unwrap());
            for &b in &values {
                if a != b {
                    dims.push(ImplicitPreference::new([a, b]).unwrap());
                }
            }
        }
        let mut prefs = Vec::new();
        for hotel in &dims {
            for airline in &dims {
                prefs.push(Preference::from_dims(vec![hotel.clone(), airline.clone()]));
            }
        }
        prefs
    }

    #[test]
    fn full_tree_round_trips_query_for_query() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let tree = IpoTreeBuilder::new().build(&data, &template).unwrap();
        let bytes = encode_tree(&tree);
        let decoded = decode_tree(template.clone(), data.len(), &bytes).unwrap();
        assert_eq!(decoded.skyline(), tree.skyline());
        assert_eq!(decoded.node_count(), tree.node_count());
        assert_eq!(decoded.top_k(), None);
        for pref in all_small_preferences() {
            assert_eq!(
                decoded.query(&data, &pref).unwrap(),
                tree.query(&data, &pref).unwrap()
            );
        }
    }

    #[test]
    fn truncated_tree_round_trips_with_policy() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let tree = IpoTreeBuilder::new()
            .top_k_values(1)
            .build(&data, &template)
            .unwrap();
        let bytes = encode_tree(&tree);
        let decoded = decode_tree(template, data.len(), &bytes).unwrap();
        assert_eq!(decoded.top_k(), Some(1));
        for j in 0..tree.nominal_count() {
            assert_eq!(decoded.materialized_values(j), tree.materialized_values(j));
        }
        for pref in all_small_preferences() {
            // Same servability *and* same answers where servable.
            assert_eq!(
                decoded.query(&data, &pref).ok(),
                tree.query(&data, &pref).ok()
            );
            assert_eq!(
                decoded.first_unmaterialized(&pref),
                tree.first_unmaterialized(&pref)
            );
        }
    }

    #[test]
    fn bitmap_tree_round_trips_through_the_set_encoding() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let set_tree = IpoTreeBuilder::new().build(&data, &template).unwrap();
        let bitmap = BitmapIpoTree::from_tree(&set_tree, &data);
        let bytes = encode_tree(&bitmap.to_ipo_tree());
        let decoded = decode_tree(template, data.len(), &bytes).unwrap();
        let rebuilt = BitmapIpoTree::from_tree(&decoded, &data);
        assert_eq!(rebuilt.node_count(), bitmap.node_count());
        assert_eq!(rebuilt.skyline(), bitmap.skyline());
        for pref in all_small_preferences() {
            assert_eq!(
                rebuilt.query(&data, &pref).unwrap(),
                bitmap.query(&data, &pref).unwrap()
            );
        }
    }

    #[test]
    fn decode_rejects_out_of_range_skyline_ids() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let tree = IpoTreeBuilder::new().build(&data, &template).unwrap();
        let bytes = encode_tree(&tree);
        // Claiming fewer rows than the skyline references must fail the range check.
        assert!(matches!(
            decode_tree(template, 1, &bytes),
            Err(SnapshotError::Corrupt(_) | SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn decode_rejects_wrong_template_arity() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let tree = IpoTreeBuilder::new().build(&data, &template).unwrap();
        let bytes = encode_tree(&tree);
        let narrow_schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::nominal_with_labels("g", ["a", "b"]),
        ])
        .unwrap();
        let narrow = Template::empty(&narrow_schema);
        assert!(matches!(
            decode_tree(narrow, data.len(), &bytes),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn decode_rejects_structural_corruption_without_panicking() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let tree = IpoTreeBuilder::new().build(&data, &template).unwrap();
        let bytes = encode_tree(&tree);
        // Truncations at every prefix length: an error, never a panic.
        for len in 0..bytes.len() {
            assert!(
                decode_tree(template.clone(), data.len(), &bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
        // Single-byte flips: either a decode error or a tree that still upholds the
        // validated invariants (a flip inside a posting gap can produce a different but
        // still-valid subset — the container CRC is what rules those out in practice).
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            let _ = decode_tree(template.clone(), data.len(), &corrupt);
        }
    }
}
