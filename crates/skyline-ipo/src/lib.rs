//! # skyline-ipo
//!
//! The **IPO-Tree** (Implicit Preference Order tree) of Section 3 of *"Efficient Skyline
//! Querying with Variable User Preferences on Nominal Attributes"*: a partial materialization
//! of the skylines of all combinations of *first-order* implicit preferences, from which the
//! skyline for an implicit preference of **any** order is assembled with a handful of set
//! operations using the merging property (Theorem 2).
//!
//! * [`tree::IpoTree`] — the materialized structure: one node per combination of at most one
//!   `v ≺ ∗` choice per nominal dimension, storing the set of template-skyline points that the
//!   combination disqualifies.
//! * [`build::IpoTreeBuilder`] — construction, either through minimal disqualifying conditions
//!   (the paper's approach, [`skyline_core::mdc`]) or by direct recomputation per node, with
//!   optional restriction to the `K` most frequent values per dimension (*IPO Tree-10*) and
//!   optional parallel node evaluation.
//! * [`query`] — Algorithms 1 and 2: recursive decomposition into first-order sub-queries and
//!   the merge step that applies Theorem 2 (set-based evaluation over sorted id lists).
//! * [`bitmap::BitmapIpoTree`] — the alternative implementation suggested in §3.2: per-node
//!   bitmaps over the template skyline plus per-dimension inverted lists, so the merge becomes
//!   bitwise AND/OR.
//! * [`storage`] — byte-level accounting used by the storage plots of Figures 4–8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod build;
pub mod inverted;
pub mod query;
pub mod setops;
pub mod snapshot;
pub mod storage;
pub mod tree;

pub use bitmap::BitmapIpoTree;
pub use build::{BuildStats, BuildStrategy, IpoTreeBuilder};
pub use snapshot::{decode_tree, encode_tree};
pub use tree::IpoTree;
