//! The IPO-tree structure (Section 3.1).
//!
//! The tree has `m' + 1` levels, where `m'` is the number of nominal dimensions. The root
//! stores the template skyline `SKY(R)`. The children of a level-`d` node correspond to the
//! first-order implicit preferences `v ≺ ∗` on nominal dimension `d` (0-based here), plus one
//! special child labelled φ meaning "no preference on this dimension". Every non-root,
//! non-φ node stores the disqualified set `A`: the points of `SKY(R)` that the combination of
//! first-order choices along its path removes from the skyline, so that `SKY(R) − A` is the
//! skyline for that combination.

use skyline_core::{PointId, Preference, Template, ValueId};

/// One node of the IPO-tree.
#[derive(Debug, Clone)]
pub struct IpoNode {
    /// Nominal dimension this node's label refers to (`usize::MAX` for the root).
    pub(crate) dim: usize,
    /// The first-order choice `v ≺ ∗` this node adds, or `None` for the root and φ nodes.
    pub(crate) label: Option<ValueId>,
    /// Points of `SKY(R)` disqualified by the path's combination of first-order choices.
    /// Sorted and duplicate-free. Empty for the root and for φ nodes (a φ node adds no
    /// constraint, so the query evaluation never consults its set).
    pub(crate) disqualified: Vec<PointId>,
    /// Children, keyed by their label (`None` = the φ child). Kept sorted by label so lookups
    /// are a small binary search.
    pub(crate) children: Vec<(Option<ValueId>, u32)>,
}

impl IpoNode {
    /// The nominal dimension this node constrains (`None` for the root).
    pub fn dimension(&self) -> Option<usize> {
        (self.dim != usize::MAX).then_some(self.dim)
    }

    /// The first-order choice of this node (`None` for the root and φ nodes).
    pub fn label(&self) -> Option<ValueId> {
        self.label
    }

    /// The disqualified set `A` of this node.
    pub fn disqualified(&self) -> &[PointId] {
        &self.disqualified
    }

    /// Number of children.
    pub fn child_count(&self) -> usize {
        self.children.len()
    }

    pub(crate) fn child(&self, label: Option<ValueId>) -> Option<u32> {
        self.children
            .binary_search_by_key(&label, |(l, _)| *l)
            .ok()
            .map(|i| self.children[i].1)
    }
}

/// The materialized IPO-tree: template skyline, per-dimension materialized values and the node
/// arena. Built with [`crate::build::IpoTreeBuilder`], queried with the methods in
/// [`crate::query`].
#[derive(Debug, Clone)]
pub struct IpoTree {
    pub(crate) template: Template,
    /// `SKY(R)`, sorted ascending.
    pub(crate) skyline: Vec<PointId>,
    /// Per nominal dimension, the value ids that have materialized children (in the order the
    /// children were created — most frequent first when the tree is truncated).
    pub(crate) materialized: Vec<Vec<ValueId>>,
    /// Node arena; index 0 is the root.
    pub(crate) nodes: Vec<IpoNode>,
    /// The truncation the tree was built with (`None` = every value materialized), recorded
    /// so [`IpoTree::rebuilt_for`] can re-materialize an equivalent tree over changed data.
    pub(crate) top_k: Option<usize>,
}

impl IpoTree {
    /// The template the tree was built for.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// The template skyline `SKY(R)` (sorted point ids).
    pub fn skyline(&self) -> &[PointId] {
        &self.skyline
    }

    /// Number of nominal dimensions covered (the tree depth minus one).
    pub fn nominal_count(&self) -> usize {
        self.materialized.len()
    }

    /// The value ids materialized for nominal dimension `j`.
    pub fn materialized_values(&self, nominal_index: usize) -> &[ValueId] {
        &self.materialized[nominal_index]
    }

    /// The per-dimension truncation the tree was built with (`None` = full materialization,
    /// the paper's *IPO Tree*; `Some(k)` = *IPO Tree-k*).
    pub fn top_k(&self) -> Option<usize> {
        self.top_k
    }

    /// Re-materializes an equivalent tree — same truncation policy — over (typically
    /// compacted or otherwise mutated) `data` under `template`.
    ///
    /// This is the rebuild entry point the background maintenance worker uses to bring a
    /// mutated hybrid engine's tree back in sync with its dataset: the worker does not need
    /// to remember how the original tree was configured, the tree itself does.
    ///
    /// # Materialization hysteresis
    ///
    /// A truncated (top-`k`) tree does **not** simply re-take the `k` most frequent values:
    /// churn would then flap values in and out of the tree on every small frequency shift,
    /// and a preference served from the tree before the rebuild could silently regress to
    /// the engine's fallback path afterwards. Instead the rebuilt tree materializes, per
    /// dimension, the union of the fresh top-`k` with every *previously materialized* value
    /// that is still within the top `2k` by frequency — a value must fall well out of the
    /// top `k` before it is demoted. The recorded policy ([`IpoTree::top_k`]) is preserved,
    /// so hysteresis does not compound across rebuilds: values a past rebuild retained are
    /// re-examined against the same `2k` window every time.
    pub fn rebuilt_for(
        &self,
        data: &skyline_core::Dataset,
        template: &Template,
    ) -> skyline_core::Result<IpoTree> {
        let mut builder = crate::build::IpoTreeBuilder::new();
        if let Some(k) = self.top_k {
            builder = builder
                .top_k_values(k)
                .materialize_values(self.hysteresis_values(data, k));
        }
        builder.build(data, template)
    }

    /// Per-dimension value sets for a top-`k` rebuild over `data`: the fresh top-`k` plus
    /// previously materialized values still within the top `2k`, most frequent first.
    fn hysteresis_values(&self, data: &skyline_core::Dataset, k: usize) -> Vec<Vec<ValueId>> {
        (0..self.nominal_count())
            .map(|j| {
                data.values_by_frequency(j)
                    .into_iter()
                    .enumerate()
                    .filter(|&(rank, v)| rank < k || (rank < 2 * k && self.is_materialized(j, v)))
                    .map(|(_, v)| v)
                    .collect()
            })
            .collect()
    }

    /// True when value `v` of dimension `j` has materialized nodes.
    pub fn is_materialized(&self, nominal_index: usize, v: ValueId) -> bool {
        self.materialized[nominal_index].contains(&v)
    }

    /// The first `(nominal dimension, value)` listed by `pref` that this tree has **not**
    /// materialized, or `None` when the tree can answer the preference.
    ///
    /// This is the single source of truth for "is this preference materialized?": query
    /// rejection ([`SkylineError::NotMaterialized`](skyline_core::SkylineError::NotMaterialized))
    /// and the hybrid engine's Adaptive-SFS fallback both consult it, so the two can never
    /// diverge. The preference's arity must match the tree (extra dimensions are ignored;
    /// missing ones count as "no preference").
    pub fn first_unmaterialized(&self, pref: &Preference) -> Option<(usize, ValueId)> {
        (0..self.nominal_count().min(pref.nominal_count())).find_map(|j| {
            pref.dim(j)
                .choices()
                .iter()
                .find(|&&v| !self.is_materialized(j, v))
                .map(|&v| (j, v))
        })
    }

    /// True when every value listed by `pref` is materialized in this tree, i.e. the tree can
    /// answer the query without falling back to another method (Section 5.3).
    pub fn materializes(&self, pref: &Preference) -> bool {
        self.first_unmaterialized(pref).is_none()
    }

    /// Errors with [`SkylineError::NotMaterialized`](skyline_core::SkylineError::NotMaterialized)
    /// — naming the offending dimension and value — when the tree cannot answer `pref`.
    ///
    /// The one place the rejection error is constructed; query evaluation and the serving
    /// layer both call it.
    pub fn require_materialized(
        &self,
        schema: &skyline_core::Schema,
        pref: &Preference,
    ) -> skyline_core::Result<()> {
        let Some((j, v)) = self.first_unmaterialized(pref) else {
            return Ok(());
        };
        Err(skyline_core::SkylineError::NotMaterialized {
            dimension: schema.nominal_dimension_name(j),
            value: v as u32,
        })
    }

    /// Total number of nodes (the paper's `O(c^{m'})` size measure).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Access a node by id.
    pub fn node(&self, id: u32) -> &IpoNode {
        &self.nodes[id as usize]
    }

    /// The root node.
    pub fn root(&self) -> &IpoNode {
        &self.nodes[0]
    }

    /// Child of `node` with the given label (`None` = φ child).
    pub fn child_of(&self, node: u32, label: Option<ValueId>) -> Option<u32> {
        self.nodes[node as usize].child(label)
    }

    /// Iterator over all nodes with their ids.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (u32, &IpoNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| (i as u32, n))
    }

    /// Sum of the sizes of all disqualified sets (a proxy for materialized result volume).
    pub fn total_disqualified_entries(&self) -> usize {
        self.nodes.iter().map(|n| n.disqualified.len()).sum()
    }

    /// Walks the path for one combination of first-order choices and returns the deepest node
    /// reached. `choices[j] = Some(v)` applies `v ≺ ∗` on dimension `j`; `None` follows the φ
    /// child. Returns `None` as soon as a requested child is not materialized.
    pub fn node_for_choices(&self, choices: &[Option<ValueId>]) -> Option<u32> {
        let mut node = 0u32;
        for &choice in choices.iter().take(self.nominal_count()) {
            node = self.child_of(node, choice)?;
        }
        Some(node)
    }

    /// The skyline for one combination of first-order choices, straight from the materialized
    /// sets: `SKY(R) − A(deepest node)`. Returns `None` if some choice is not materialized.
    pub fn first_order_skyline(&self, choices: &[Option<ValueId>]) -> Option<Vec<PointId>> {
        // The disqualified sets along a path grow monotonically, so the deepest *labelled*
        // node on the path carries the full combination's set; φ nodes contribute nothing.
        let mut node = 0u32;
        let mut disqualified: &[PointId] = &[];
        for (j, &choice) in choices.iter().take(self.nominal_count()).enumerate() {
            let _ = j;
            node = self.child_of(node, choice)?;
            if choice.is_some() {
                disqualified = &self.nodes[node as usize].disqualified;
            }
        }
        Some(crate::setops::difference(&self.skyline, disqualified))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::{Dimension, Schema, Template};

    fn tiny_tree() -> IpoTree {
        // Hand-built two-dimension tree over a fake skyline {10, 20, 30}.
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal_with_labels("g", ["a", "b"]),
            Dimension::nominal_with_labels("h", ["p", "q"]),
        ])
        .unwrap();
        let template = Template::empty(&schema);
        // Node layout:
        // 0 root (dim MAX)
        //   1: g=φ   2: g=a (A={30})  3: g=b (A={10})
        // each of those has children for dim 1: φ / p / q
        let mut nodes = vec![IpoNode {
            dim: usize::MAX,
            label: None,
            disqualified: vec![],
            children: vec![],
        }];
        let add = |dim: usize,
                   label: Option<ValueId>,
                   disq: Vec<PointId>,
                   nodes: &mut Vec<IpoNode>|
         -> u32 {
            let id = nodes.len() as u32;
            nodes.push(IpoNode {
                dim,
                label,
                disqualified: disq,
                children: vec![],
            });
            id
        };
        let g_phi = add(0, None, vec![], &mut nodes);
        let g_a = add(0, Some(0), vec![30], &mut nodes);
        let g_b = add(0, Some(1), vec![10], &mut nodes);
        nodes[0].children = vec![(None, g_phi), (Some(0), g_a), (Some(1), g_b)];
        for parent in [g_phi, g_a, g_b] {
            let base: Vec<PointId> = nodes[parent as usize].disqualified.clone();
            let h_phi = add(1, None, vec![], &mut nodes);
            let h_p = add(1, Some(0), crate::setops::union(&base, &[20]), &mut nodes);
            let h_q = add(1, Some(1), base.clone(), &mut nodes);
            nodes[parent as usize].children = vec![(None, h_phi), (Some(0), h_p), (Some(1), h_q)];
        }
        IpoTree {
            template,
            skyline: vec![10, 20, 30],
            materialized: vec![vec![0, 1], vec![0, 1]],
            nodes,
            top_k: None,
        }
    }

    #[test]
    fn navigation_and_accessors() {
        let tree = tiny_tree();
        assert_eq!(tree.node_count(), 13);
        assert_eq!(tree.nominal_count(), 2);
        assert_eq!(tree.skyline(), &[10, 20, 30]);
        assert!(tree.is_materialized(0, 1));
        assert!(!tree.is_materialized(0, 5));
        assert_eq!(tree.materialized_values(1), &[0, 1]);
        assert!(tree.root().dimension().is_none());
        assert_eq!(tree.root().child_count(), 3);
        let g_a = tree.child_of(0, Some(0)).unwrap();
        assert_eq!(tree.node(g_a).dimension(), Some(0));
        assert_eq!(tree.node(g_a).label(), Some(0));
        assert_eq!(tree.node(g_a).disqualified(), &[30]);
        assert!(tree.child_of(0, Some(9)).is_none());
        assert_eq!(tree.iter_nodes().count(), 13);
        assert!(tree.total_disqualified_entries() > 0);
    }

    #[test]
    fn materialization_predicate_reports_the_first_gap() {
        use skyline_core::{ImplicitPreference, Preference};
        let mut tree = tiny_tree();
        // Truncate: dimension 0 only materializes value 0, dimension 1 both values.
        tree.materialized = vec![vec![0], vec![0, 1]];

        let ok = Preference::from_dims(vec![
            ImplicitPreference::new([0]).unwrap(),
            ImplicitPreference::new([1, 0]).unwrap(),
        ]);
        assert!(tree.materializes(&ok));
        assert_eq!(tree.first_unmaterialized(&ok), None);

        let gap_dim0 = Preference::from_dims(vec![
            ImplicitPreference::new([0, 1]).unwrap(),
            ImplicitPreference::none(),
        ]);
        assert!(!tree.materializes(&gap_dim0));
        assert_eq!(tree.first_unmaterialized(&gap_dim0), Some((0, 1)));

        // The first gap in dimension order is reported, not a later one.
        let gaps_everywhere = Preference::from_dims(vec![
            ImplicitPreference::new([1]).unwrap(),
            ImplicitPreference::new([1]).unwrap(),
        ]);
        assert_eq!(tree.first_unmaterialized(&gaps_everywhere), Some((0, 1)));

        // An empty preference is always answerable.
        assert!(tree.materializes(&Preference::none(2)));
        // Extra dimensions beyond the tree's arity are ignored by the predicate
        // (arity errors are query validation's job).
        let extra = Preference::from_dims(vec![
            ImplicitPreference::new([0]).unwrap(),
            ImplicitPreference::none(),
            ImplicitPreference::new([1]).unwrap(),
        ]);
        assert!(tree.materializes(&extra));
    }

    #[test]
    fn node_for_choices_walks_paths() {
        let tree = tiny_tree();
        let node = tree.node_for_choices(&[Some(0), Some(1)]).unwrap();
        assert_eq!(tree.node(node).label(), Some(1));
        assert_eq!(tree.node(node).dimension(), Some(1));
        assert!(tree.node_for_choices(&[Some(7), None]).is_none());
        assert_eq!(tree.node_for_choices(&[]), Some(0));
    }

    #[test]
    fn first_order_skyline_subtracts_the_deepest_labelled_set() {
        let tree = tiny_tree();
        assert_eq!(
            tree.first_order_skyline(&[None, None]).unwrap(),
            vec![10, 20, 30]
        );
        assert_eq!(
            tree.first_order_skyline(&[Some(0), None]).unwrap(),
            vec![10, 20]
        );
        assert_eq!(
            tree.first_order_skyline(&[Some(1), Some(1)]).unwrap(),
            vec![20, 30]
        );
        assert_eq!(
            tree.first_order_skyline(&[None, Some(0)]).unwrap(),
            vec![10, 30]
        );
        assert!(tree.first_order_skyline(&[Some(9), None]).is_none());
    }
}
