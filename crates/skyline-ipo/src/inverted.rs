//! Per-dimension inverted lists over the template skyline.
//!
//! Section 3.2 suggests storing node results as bitmaps and keeping "an inverted list for each
//! nominal attribute for an easy lookup to determine a bitmap for `PSKY(R̃′)`". The inverted
//! index maps `(nominal dimension, value id)` to the bitmap of template-skyline *positions*
//! whose point carries that value, so the `Z` filter of the merge step becomes a bitwise AND.

use skyline_core::{BitSet, Dataset, PointId, ValueId};

/// Inverted lists for every nominal dimension, over the positions of a fixed skyline ordering.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    /// `lists[j][v]` = positions (within the skyline vector) of the points whose value on
    /// nominal dimension `j` is `v`.
    lists: Vec<Vec<BitSet>>,
    skyline_len: usize,
}

impl InvertedIndex {
    /// Builds the index for `skyline` (the position of each id in this slice is the bit index).
    pub fn build(data: &Dataset, skyline: &[PointId]) -> Self {
        let schema = data.schema();
        let mut lists = Vec::with_capacity(schema.nominal_count());
        for j in 0..schema.nominal_count() {
            let cardinality = schema.nominal_domain(j).map_or(0, |d| d.cardinality());
            let mut per_value = vec![BitSet::new(skyline.len()); cardinality];
            for (pos, &p) in skyline.iter().enumerate() {
                per_value[data.nominal(p, j) as usize].insert(pos);
            }
            lists.push(per_value);
        }
        Self {
            lists,
            skyline_len: skyline.len(),
        }
    }

    /// Number of skyline positions covered (capacity of every bitmap).
    pub fn skyline_len(&self) -> usize {
        self.skyline_len
    }

    /// Bitmap of skyline positions carrying value `v` on nominal dimension `j`.
    pub fn positions(&self, nominal_index: usize, v: ValueId) -> &BitSet {
        &self.lists[nominal_index][v as usize]
    }

    /// Bitmap of skyline positions carrying *any* of `values` on dimension `j`
    /// (the `PSKY` lookup of the merge step).
    pub fn positions_of_any(&self, nominal_index: usize, values: &[ValueId]) -> BitSet {
        let mut out = BitSet::new(self.skyline_len);
        for &v in values {
            out.union_with(&self.lists[nominal_index][v as usize]);
        }
        out
    }

    /// Approximate heap footprint in bytes (for the storage plots).
    pub fn approximate_bytes(&self) -> usize {
        self.lists
            .iter()
            .flat_map(|per_value| per_value.iter().map(BitSet::approximate_bytes))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::{Dataset, Dimension, Schema};

    fn data() -> Dataset {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal_with_labels("g", ["a", "b", "c"]),
            Dimension::nominal_with_labels("h", ["p", "q"]),
        ])
        .unwrap();
        Dataset::from_columns(
            schema,
            vec![vec![1.0, 2.0, 3.0, 4.0, 5.0]],
            vec![vec![0, 1, 2, 0, 1], vec![0, 1, 0, 1, 0]],
        )
        .unwrap()
    }

    #[test]
    fn positions_follow_skyline_order() {
        let data = data();
        let skyline = vec![0, 2, 4]; // positions 0, 1, 2
        let index = InvertedIndex::build(&data, &skyline);
        assert_eq!(index.skyline_len(), 3);
        assert_eq!(index.positions(0, 0).to_ids(), vec![0]); // point 0 has g = a
        assert_eq!(index.positions(0, 2).to_ids(), vec![1]); // point 2 has g = c
        assert_eq!(index.positions(0, 1).to_ids(), vec![2]); // point 4 has g = b
        assert_eq!(index.positions(1, 0).to_ids(), vec![0, 1, 2]); // h = p for all three
        assert!(index.positions(1, 1).is_empty());
    }

    #[test]
    fn union_lookup() {
        let data = data();
        let skyline = vec![0, 1, 2, 3, 4];
        let index = InvertedIndex::build(&data, &skyline);
        let any = index.positions_of_any(0, &[0, 1]);
        assert_eq!(any.to_ids(), vec![0, 1, 3, 4]);
        assert!(index.positions_of_any(0, &[]).is_empty());
        assert!(index.approximate_bytes() > 0);
    }
}
