//! Sharded scatter-gather scaling: the same mixed read/write Zipf workload drained through
//! `ShardedService` at 1, 2 and 4 shards.
//!
//! Each service partitions the identical dataset (hash on the first nominal dimension),
//! keeps the epoch-vector result cache on (writes invalidate it exactly as production
//! would), and scatters every cache miss across its shards on the worker pool before the
//! cross-shard dominance merge. The per-shard engines are Adaptive-SFS — the fallback whose
//! query cost is proportional to shard size, so scatter parallelism is what the shard count
//! buys.
//!
//! On a full local run (`SKYLINE_BENCH_SAMPLES` unset) the workload holds n = 100 000 rows
//! and the summary hard-asserts ≥ 1.5× query throughput at 4 shards vs 1 shard — but only
//! when the host actually has ≥ 4 cores: the scatter of a 4-shard service on a single-core
//! box is correctly serialized and the assertion would only measure the merge overhead. The
//! CI smoke job (`SKYLINE_BENCH_SAMPLES` set) runs a scaled-down n on shared runners and
//! never hard-asserts.

use criterion::{criterion_group, criterion_main, Criterion};
use skyline::prelude::*;
use skyline_service::{GlobalRowId, ShardPartition, ShardedConfig, ShardedService};
use std::hint::black_box;
use std::sync::Mutex;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

struct Arm {
    shards: usize,
    service: ShardedService,
    /// Logical row → current global id (None once deleted); the stream's delete targets
    /// address rows by logical insertion order.
    rows: Mutex<Vec<Option<GlobalRowId>>>,
}

struct Setup {
    arms: Vec<Arm>,
    stream: Vec<WorkloadOp>,
    queries_in_stream: usize,
    tuples: usize,
}

fn setup() -> Setup {
    let smoke = std::env::var("SKYLINE_BENCH_SAMPLES").is_ok();
    let (tuples, ops) = if smoke { (4_000, 120) } else { (100_000, 400) };
    let config = ExperimentConfig {
        n: tuples,
        ..ExperimentConfig::paper_default()
    };
    let data = config.generate_dataset();
    let template = config.template(&data);
    let mut generator = config.query_generator();
    let stream = generator.mixed_workload(
        data.schema(),
        &template,
        config.pref_order,
        32,
        ops,
        config.theta,
        0.1,
        data.len(),
    );
    let queries_in_stream = stream
        .iter()
        .filter(|op| matches!(op, WorkloadOp::Query(_)))
        .count();

    let partition = ShardPartition::HashNominal { dim: 0 };
    let arms = SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let service = ShardedService::build(
                &data,
                template.clone(),
                EngineConfig::AdaptiveSfs,
                ShardedConfig {
                    shards,
                    partition: partition.clone(),
                    ..ShardedConfig::default()
                },
            )
            .expect("sharded service builds");
            let rows = ShardedService::partition_rows(&partition, shards, &data)
                .into_iter()
                .map(Some)
                .collect();
            Arm {
                shards,
                service,
                rows: Mutex::new(rows),
            }
        })
        .collect();
    Setup {
        arms,
        stream,
        queries_in_stream,
        tuples,
    }
}

/// Drains the whole mixed stream through one arm; returns total skyline rows served.
///
/// Deletes of rows a previous pass already removed are the service's documented no-op, and
/// the few inserts per pass (~10% of ops, half of the write share) grow the dataset by well
/// under 0.1% per pass — every pass measures essentially the same workload.
fn drain_stream(arm: &Arm, stream: &[WorkloadOp]) -> usize {
    let mut total = 0usize;
    for op in stream {
        match op {
            WorkloadOp::Query(pref) => {
                total += arm
                    .service
                    .serve(pref)
                    .expect("serve")
                    .outcome
                    .skyline
                    .len();
            }
            WorkloadOp::Insert { numeric, nominal } => {
                let id = arm.service.insert_row(numeric, nominal).expect("insert");
                arm.rows.lock().unwrap().push(Some(id));
            }
            WorkloadOp::Delete { row } => {
                let target = arm.rows.lock().unwrap()[*row as usize].take();
                if let Some(id) = target {
                    arm.service.delete_row(id).expect("delete");
                }
            }
        }
    }
    total
}

fn bench_shards(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("sharded_scatter_gather");
    group.sample_size(5);
    for arm in &s.arms {
        group.bench_function(format!("mixed_stream/shards_{}", arm.shards), |b| {
            b.iter(|| black_box(drain_stream(arm, &s.stream)))
        });
    }
    group.finish();

    // Summary passes: best-of-3 interleaved drains per arm, throughput = queries/second.
    let mut best: Vec<std::time::Duration> = vec![std::time::Duration::MAX; s.arms.len()];
    for _ in 0..3 {
        for (i, arm) in s.arms.iter().enumerate() {
            let started = std::time::Instant::now();
            black_box(drain_stream(arm, &s.stream));
            best[i] = best[i].min(started.elapsed());
        }
    }
    for (arm, elapsed) in s.arms.iter().zip(&best) {
        println!(
            "  summary: shards={} — {} queries (of {} mixed ops) at n={} in {:.2}ms \
             ({:.0} q/s)",
            arm.shards,
            s.queries_in_stream,
            s.stream.len(),
            s.tuples,
            elapsed.as_secs_f64() * 1e3,
            s.queries_in_stream as f64 / elapsed.as_secs_f64(),
        );
    }
    let speedup = best[0].as_secs_f64() / best[SHARD_COUNTS.len() - 1].as_secs_f64();
    println!("  summary: 4-shard vs 1-shard query throughput: {speedup:.2}x");
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    // Hard-assert only on full local runs on hosts with enough cores for the scatter to
    // actually run 4-wide; the CI smoke job and small boxes get a warning instead.
    if std::env::var("SKYLINE_BENCH_SAMPLES").is_err() && cores >= 4 {
        assert!(
            speedup >= 1.5,
            "4-shard scatter-gather must reach 1.5x the 1-shard throughput on a \
             {cores}-core host, got {speedup:.2}x"
        );
    } else if speedup < 1.5 {
        println!(
            "::warning title=shards bench::4-shard speedup only {speedup:.2}x \
             (cores={cores}, smoke={})",
            std::env::var("SKYLINE_BENCH_SAMPLES").is_ok()
        );
    }
}

criterion_group!(benches, bench_shards);
criterion_main!(benches);
