//! Dynamic-dataset maintenance: incremental insert+query vs full rebuild+query, plus the
//! end-to-end service serving a mixed read/write stream.
//!
//! Three benchmarks on the n=2000 hybrid workload (anti-correlated numerics, Zipf(θ=1)
//! nominals — the same shape as `bench_throughput`):
//!
//! * `incremental_insert_query` — clone the pre-built hybrid engine, absorb a batch of
//!   inserts via `SkylineEngine::insert_row` (incremental maintenance) and answer the query
//!   mix. The first insert of each iteration pays the documented copy-once of the shared
//!   dataset; everything after is in place.
//! * `rebuild_insert_query` — the frozen-dataset alternative: append the same batch to a
//!   dataset copy, rebuild the whole engine from scratch, answer the same queries.
//! * `service_mixed_stream` — `SkylineService` over a `SharedEngine` draining a 10%-write
//!   mixed stream with the epoch-tagged result cache on.

use criterion::{criterion_group, criterion_main, Criterion};
use skyline::prelude::*;
use skyline_service::{ServiceConfig, SkylineService};
use std::hint::black_box;
use std::sync::Arc;

const TUPLES: usize = 2_000;
const BATCH: usize = 32;
const QUERIES: usize = 20;
const STREAM: usize = 300;

struct Setup {
    data: Arc<Dataset>,
    template: Template,
    engine: SkylineEngine,
    inserts: Vec<(Vec<f64>, Vec<ValueId>)>,
    queries: Vec<Preference>,
    mixed: Vec<WorkloadOp>,
}

fn setup() -> Setup {
    let config = ExperimentConfig {
        n: TUPLES,
        ..ExperimentConfig::paper_default()
    };
    let data = Arc::new(config.generate_dataset());
    let template = config.template(&data);
    let engine = SkylineEngine::build(
        data.clone(),
        template.clone(),
        EngineConfig::Hybrid { top_k: 10 },
    )
    .expect("hybrid engine builds");
    let mut generator = config.query_generator();
    let queries =
        generator.random_preferences(data.schema(), &template, config.pref_order, QUERIES, None);
    let inserts: Vec<(Vec<f64>, Vec<ValueId>)> = generator
        .mixed_workload(
            data.schema(),
            &template,
            config.pref_order,
            1,
            BATCH * 3,
            config.theta,
            1.0,
            0,
        )
        .into_iter()
        .filter_map(|op| match op {
            WorkloadOp::Insert { numeric, nominal } => Some((numeric, nominal)),
            _ => None,
        })
        .take(BATCH)
        .collect();
    assert_eq!(inserts.len(), BATCH);
    let mixed = generator.mixed_workload(
        data.schema(),
        &template,
        config.pref_order,
        48,
        STREAM,
        config.theta,
        0.1,
        data.len(),
    );
    Setup {
        data,
        template,
        engine,
        inserts,
        queries,
        mixed,
    }
}

/// The incremental arm: absorb the batch in place, then answer the query mix.
fn run_incremental(s: &Setup) -> usize {
    let mut engine = s.engine.clone();
    for (numeric, nominal) in &s.inserts {
        engine.insert_row(numeric, nominal).expect("insert");
    }
    let mut total = 0usize;
    for q in &s.queries {
        total += engine.query(q).expect("query").skyline.len();
    }
    total
}

/// The rebuild arm: append the same batch to a dataset copy, rebuild, answer the same mix.
fn run_rebuild(s: &Setup) -> usize {
    let mut data = (*s.data).clone();
    for (numeric, nominal) in &s.inserts {
        data.push_row_ids(numeric, nominal).expect("push");
    }
    let engine = SkylineEngine::build(data, s.template.clone(), EngineConfig::Hybrid { top_k: 10 })
        .expect("rebuild");
    let mut total = 0usize;
    for q in &s.queries {
        total += engine.query(q).expect("query").skyline.len();
    }
    total
}

fn bench_updates(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("updates_dynamic");
    group.sample_size(5);

    group.bench_function("incremental_insert_query", |b| {
        b.iter(|| black_box(run_incremental(&s)))
    });
    group.bench_function("rebuild_insert_query", |b| {
        b.iter(|| black_box(run_rebuild(&s)))
    });
    group.bench_function("service_mixed_stream", |b| {
        b.iter(|| {
            let service = SkylineService::with_config(
                SharedEngine::new(s.engine.clone()),
                ServiceConfig::default(),
            );
            for op in &s.mixed {
                match op {
                    WorkloadOp::Query(pref) => {
                        black_box(service.serve(pref).expect("serve"));
                    }
                    WorkloadOp::Insert { numeric, nominal } => {
                        service.insert_row(numeric, nominal).expect("insert");
                    }
                    WorkloadOp::Delete { row } => {
                        service.delete_row(*row).expect("delete");
                    }
                }
            }
            black_box(service.stats().served())
        })
    });
    group.finish();

    // Extra measured passes reporting the acceptance numbers alongside the timings: three
    // interleaved rounds per arm, best-of taken, so a single noisy pass cannot skew the
    // printed (and locally asserted) speedup. Both arms must agree on every answer.
    let mut incremental = std::time::Duration::MAX;
    let mut rebuild = std::time::Duration::MAX;
    for _ in 0..3 {
        let started = std::time::Instant::now();
        let a = run_incremental(&s);
        incremental = incremental.min(started.elapsed());
        let started = std::time::Instant::now();
        let b = run_rebuild(&s);
        rebuild = rebuild.min(started.elapsed());
        assert_eq!(
            a, b,
            "incremental maintenance and full rebuild must produce identical skylines"
        );
    }
    let speedup = rebuild.as_secs_f64() / incremental.as_secs_f64();
    println!(
        "  summary: {BATCH} inserts + {QUERIES} queries at n={TUPLES}; \
         incremental {:.2}ms vs rebuild {:.2}ms — {speedup:.1}x",
        incremental.as_secs_f64() * 1e3,
        rebuild.as_secs_f64() * 1e3,
    );
    // Hard-assert only on full local runs; the CI smoke job (SKYLINE_BENCH_SAMPLES set) runs
    // on noisy shared runners where a hard perf gate would flake.
    if std::env::var("SKYLINE_BENCH_SAMPLES").is_err() {
        assert!(
            speedup > 1.0,
            "incremental insert+query must beat full rebuild+query, got {speedup:.2}x"
        );
    } else if speedup < 1.0 {
        println!(
            "::warning title=updates bench::incremental path slower than rebuild \
             ({speedup:.2}x) in this smoke run"
        );
    }
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
