//! Dynamic-dataset maintenance: incremental insert+query vs full rebuild+query, the
//! end-to-end service serving a mixed read/write stream, and the payoff of the generational
//! lifecycle (background compaction + IPO re-materialization).
//!
//! Benchmarks on the n=2000 hybrid workload (anti-correlated numerics, Zipf(θ=1)
//! nominals — the same shape as `bench_throughput`):
//!
//! * `incremental_insert_query` — clone the pre-built hybrid engine, absorb a batch of
//!   inserts via `SkylineEngine::insert_row` (incremental maintenance) and answer the query
//!   mix. The first insert of each iteration pays the documented copy-once of the shared
//!   dataset; everything after is in place.
//! * `rebuild_insert_query` — the frozen-dataset alternative: append the same batch to a
//!   dataset copy, rebuild the whole engine from scratch, answer the same queries.
//! * `service_mixed_stream` — `SkylineService` over a `SharedEngine` draining a 10%-write
//!   mixed stream with the epoch-tagged result cache on.
//! * `fallback_query_mutated_hybrid` vs `tree_query_rebuilt_hybrid` — what a generation
//!   rebuild buys at query time: the same tree-materialized queries answered by a mutated
//!   hybrid (stale tree → Adaptive-SFS fallback on every query) and by the same engine after
//!   one `SharedEngine::rebuild_now` swap (compacted block, re-materialized tree).

use criterion::{criterion_group, criterion_main, Criterion};
use skyline::prelude::*;
use skyline_service::{ServiceConfig, SkylineService};
use std::hint::black_box;
use std::sync::Arc;

const TUPLES: usize = 2_000;
const BATCH: usize = 32;
const QUERIES: usize = 20;
const STREAM: usize = 300;

struct Setup {
    data: Arc<Dataset>,
    template: Template,
    engine: SkylineEngine,
    inserts: Vec<(Vec<f64>, Vec<ValueId>)>,
    queries: Vec<Preference>,
    mixed: Vec<WorkloadOp>,
    /// A hybrid whose tree is stale (mutations applied): every query fallback-served.
    mutated: SkylineEngine,
    /// The same engine after one generation rebuild: compacted, tree-served again.
    rebuilt: SkylineEngine,
    /// Queries the rebuilt tree fully materializes (tree-served post-rebuild).
    tree_queries: Vec<Preference>,
}

fn setup() -> Setup {
    let config = ExperimentConfig {
        n: TUPLES,
        ..ExperimentConfig::paper_default()
    };
    let data = Arc::new(config.generate_dataset());
    let template = config.template(&data);
    let engine = SkylineEngine::build(
        data.clone(),
        template.clone(),
        EngineConfig::Hybrid { top_k: 10 },
    )
    .expect("hybrid engine builds");
    let mut generator = config.query_generator();
    let queries =
        generator.random_preferences(data.schema(), &template, config.pref_order, QUERIES, None);
    let inserts: Vec<(Vec<f64>, Vec<ValueId>)> = generator
        .mixed_workload(
            data.schema(),
            &template,
            config.pref_order,
            1,
            BATCH * 3,
            config.theta,
            1.0,
            0,
        )
        .into_iter()
        .filter_map(|op| match op {
            WorkloadOp::Insert { numeric, nominal } => Some((numeric, nominal)),
            _ => None,
        })
        .take(BATCH)
        .collect();
    assert_eq!(inserts.len(), BATCH);
    let mixed = generator.mixed_workload(
        data.schema(),
        &template,
        config.pref_order,
        48,
        STREAM,
        config.theta,
        0.1,
        data.len(),
    );

    // The compaction-vs-fallback pair: mutate a hybrid (stale tree, tombstones), then swap
    // in a rebuilt generation. Both engines hold the same live rows.
    let mut mutated = engine.clone();
    let (numeric, nominal) = &inserts[0];
    mutated.insert_row(numeric, nominal).expect("insert");
    for p in 0..32u32 {
        mutated.delete_row(p).expect("delete");
    }
    let shared = SharedEngine::new(mutated.clone());
    shared.rebuild_now().expect("generation rebuild");
    let rebuilt = shared.read().clone();
    // Preferences over the rebuilt tree's materialized (popular) values only — the queries a
    // production hybrid serves from the tree, and exactly the ones a stale tree sends to the
    // fallback instead.
    let allowed: Vec<Vec<ValueId>> = (0..data.schema().nominal_count())
        .map(|j| {
            rebuilt
                .ipo_tree()
                .expect("hybrid engines carry a tree")
                .materialized_values(j)
                .to_vec()
        })
        .collect();
    let tree_queries: Vec<Preference> = generator
        .random_preferences(
            data.schema(),
            &template,
            config.pref_order,
            QUERIES * 4,
            Some(&allowed),
        )
        .into_iter()
        .filter(|q| rebuilt.serves_from_tree(q))
        .take(QUERIES)
        .collect();
    assert_eq!(tree_queries.len(), QUERIES, "enough materialized queries");
    for q in &tree_queries {
        assert_eq!(
            mutated.query(q).expect("query").method,
            MethodUsed::AdaptiveSfs,
            "the mutated hybrid must be fallback-served"
        );
        assert_eq!(
            rebuilt.query(q).expect("query").method,
            MethodUsed::IpoTree,
            "the rebuilt hybrid must be tree-served"
        );
    }

    Setup {
        data,
        template,
        engine,
        inserts,
        queries,
        mixed,
        mutated,
        rebuilt,
        tree_queries,
    }
}

/// Answer the tree-materialized query mix on one engine; returns total result size.
fn run_tree_queries(engine: &SkylineEngine, queries: &[Preference]) -> usize {
    let mut total = 0usize;
    for q in queries {
        total += engine.query(q).expect("query").skyline.len();
    }
    total
}

/// The incremental arm: absorb the batch in place, then answer the query mix.
fn run_incremental(s: &Setup) -> usize {
    let mut engine = s.engine.clone();
    for (numeric, nominal) in &s.inserts {
        engine.insert_row(numeric, nominal).expect("insert");
    }
    let mut total = 0usize;
    for q in &s.queries {
        total += engine.query(q).expect("query").skyline.len();
    }
    total
}

/// The rebuild arm: append the same batch to a dataset copy, rebuild, answer the same mix.
fn run_rebuild(s: &Setup) -> usize {
    let mut data = (*s.data).clone();
    for (numeric, nominal) in &s.inserts {
        data.push_row_ids(numeric, nominal).expect("push");
    }
    let engine = SkylineEngine::build(data, s.template.clone(), EngineConfig::Hybrid { top_k: 10 })
        .expect("rebuild");
    let mut total = 0usize;
    for q in &s.queries {
        total += engine.query(q).expect("query").skyline.len();
    }
    total
}

fn bench_updates(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("updates_dynamic");
    group.sample_size(5);

    group.bench_function("incremental_insert_query", |b| {
        b.iter(|| black_box(run_incremental(&s)))
    });
    group.bench_function("rebuild_insert_query", |b| {
        b.iter(|| black_box(run_rebuild(&s)))
    });
    group.bench_function("fallback_query_mutated_hybrid", |b| {
        b.iter(|| black_box(run_tree_queries(&s.mutated, &s.tree_queries)))
    });
    group.bench_function("tree_query_rebuilt_hybrid", |b| {
        b.iter(|| black_box(run_tree_queries(&s.rebuilt, &s.tree_queries)))
    });
    group.bench_function("service_mixed_stream", |b| {
        b.iter(|| {
            let service = SkylineService::with_config(
                SharedEngine::new(s.engine.clone()),
                ServiceConfig::default(),
            );
            for op in &s.mixed {
                match op {
                    WorkloadOp::Query(pref) => {
                        black_box(service.serve(pref).expect("serve"));
                    }
                    WorkloadOp::Insert { numeric, nominal } => {
                        service.insert_row(numeric, nominal).expect("insert");
                    }
                    WorkloadOp::Delete { row } => {
                        service.delete_row(*row).expect("delete");
                    }
                }
            }
            black_box(service.stats().served())
        })
    });
    group.finish();

    // Extra measured passes reporting the acceptance numbers alongside the timings: three
    // interleaved rounds per arm, best-of taken, so a single noisy pass cannot skew the
    // printed (and locally asserted) speedup. Both arms must agree on every answer.
    let mut incremental = std::time::Duration::MAX;
    let mut rebuild = std::time::Duration::MAX;
    for _ in 0..3 {
        let started = std::time::Instant::now();
        let a = run_incremental(&s);
        incremental = incremental.min(started.elapsed());
        let started = std::time::Instant::now();
        let b = run_rebuild(&s);
        rebuild = rebuild.min(started.elapsed());
        assert_eq!(
            a, b,
            "incremental maintenance and full rebuild must produce identical skylines"
        );
    }
    let speedup = rebuild.as_secs_f64() / incremental.as_secs_f64();
    println!(
        "  summary: {BATCH} inserts + {QUERIES} queries at n={TUPLES}; \
         incremental {:.2}ms vs rebuild {:.2}ms — {speedup:.1}x",
        incremental.as_secs_f64() * 1e3,
        rebuild.as_secs_f64() * 1e3,
    );
    // Hard-assert only on full local runs; the CI smoke job (SKYLINE_BENCH_SAMPLES set) runs
    // on noisy shared runners where a hard perf gate would flake.
    if std::env::var("SKYLINE_BENCH_SAMPLES").is_err() {
        assert!(
            speedup > 1.0,
            "incremental insert+query must beat full rebuild+query, got {speedup:.2}x"
        );
    } else if speedup < 1.0 {
        println!(
            "::warning title=updates bench::incremental path slower than rebuild \
             ({speedup:.2}x) in this smoke run"
        );
    }

    // Compaction vs fallback: the same materialized queries on the mutated hybrid (every
    // query through the Adaptive-SFS fallback) vs after one generation rebuild (tree-served).
    // Best-of-3 interleaved passes; both engines must agree on every answer size (ids differ
    // — the rebuild renumbered the rows).
    let mut fallback = std::time::Duration::MAX;
    let mut tree = std::time::Duration::MAX;
    for _ in 0..3 {
        let started = std::time::Instant::now();
        let a = run_tree_queries(&s.mutated, &s.tree_queries);
        fallback = fallback.min(started.elapsed());
        let started = std::time::Instant::now();
        let b = run_tree_queries(&s.rebuilt, &s.tree_queries);
        tree = tree.min(started.elapsed());
        assert_eq!(
            a, b,
            "fallback and rebuilt-tree serving must produce identically sized skylines"
        );
    }
    let tree_speedup = fallback.as_secs_f64() / tree.as_secs_f64();
    println!(
        "  summary: {QUERIES} tree-materialized queries at n={TUPLES}; mutated-hybrid \
         fallback {:.2}ms vs post-rebuild tree {:.2}ms — {tree_speedup:.1}x",
        fallback.as_secs_f64() * 1e3,
        tree.as_secs_f64() * 1e3,
    );
    if std::env::var("SKYLINE_BENCH_SAMPLES").is_err() {
        assert!(
            tree_speedup > 1.0,
            "rebuild-served queries must beat the fallback path, got {tree_speedup:.2}x"
        );
    } else if tree_speedup < 1.0 {
        println!(
            "::warning title=updates bench::post-rebuild tree slower than fallback \
             ({tree_speedup:.2}x) in this smoke run"
        );
    }
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
