//! Figure 8(b) as a Criterion benchmark: query time on the UCI Nursery data set (regenerated
//! exactly) for implicit preferences of order 0..3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline::datagen::{nursery, QueryGenerator};
use skyline::prelude::*;
use skyline_adaptive::AdaptiveSfs;
use skyline_ipo::IpoTreeBuilder;
use std::hint::black_box;

const QUERIES: usize = 10;

fn bench_nursery_query_time(c: &mut Criterion) {
    let data = std::sync::Arc::new(nursery::generate());
    // Empty template: every Nursery value is equally frequent, so there is no meaningful
    // "most frequent value" preference (see `run_nursery_cell`).
    let template = Template::empty(data.schema());
    let tree = IpoTreeBuilder::new()
        .build(&data, &template)
        .expect("tree builds");
    let asfs = AdaptiveSfs::build(data.clone(), &template).expect("adaptive builds");
    let sfsd = SkylineEngine::build(data.clone(), template.clone(), EngineConfig::SfsD)
        .expect("baseline builds");

    let mut group = c.benchmark_group("fig8_nursery_query_time");
    group.sample_size(10);
    for order in 0..=3usize {
        let mut generator = QueryGenerator::new(1_000 + order as u64);
        let queries = generator.random_preferences(data.schema(), &template, order, QUERIES, None);
        group.bench_with_input(BenchmarkId::new("ipo_tree", order), &order, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(tree.query(&data, q).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("sfs_a", order), &order, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(asfs.query(q).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("sfs_d", order), &order, |b, _| {
            b.iter(|| black_box(sfsd.query(&queries[0]).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nursery_query_time);
criterion_main!(benches);
