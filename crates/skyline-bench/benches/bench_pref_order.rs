//! Figure 7(b) as a Criterion benchmark: query time as the order of the implicit preference
//! grows (x = 1..4). The IPO-tree cost grows with `x^{m'}` set operations while the SFS-based
//! methods get slightly cheaper (smaller skylines), which is the paper's observed shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline::datagen::ExperimentConfig;
use skyline::prelude::*;
use skyline_adaptive::AdaptiveSfs;
use skyline_ipo::IpoTreeBuilder;
use std::hint::black_box;

const N: usize = 2_000;
const QUERIES: usize = 10;

fn bench_query_time_vs_order(c: &mut Criterion) {
    let config = ExperimentConfig {
        n: N,
        ..ExperimentConfig::paper_default()
    };
    let data = std::sync::Arc::new(config.generate_dataset());
    let template = config.template(&data);
    let tree = IpoTreeBuilder::new()
        .build(&data, &template)
        .expect("tree builds");
    let asfs = AdaptiveSfs::build(data.clone(), &template).expect("adaptive builds");
    let sfsd = SkylineEngine::build(data.clone(), template.clone(), EngineConfig::SfsD)
        .expect("baseline builds");

    let mut group = c.benchmark_group("fig7_query_time_vs_pref_order");
    group.sample_size(10);
    for order in 1..=4usize {
        let mut generator = config.query_generator();
        let queries = generator.random_preferences(data.schema(), &template, order, QUERIES, None);
        group.bench_with_input(BenchmarkId::new("ipo_tree", order), &order, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(tree.query(&data, q).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("sfs_a", order), &order, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(asfs.query(q).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("sfs_d", order), &order, |b, _| {
            b.iter(|| black_box(sfsd.query(&queries[0]).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_time_vs_order);
criterion_main!(benches);
