//! Progressive serving: time-to-first-row vs whole-skyline completion on a sharded service.
//!
//! The point of the streaming result path is that a caller gets the first confirmed skyline
//! member long before the scatter finishes — the per-shard SFS scans emit in ascending
//! query-score order and the cross-shard merger publishes a row as soon as every live shard
//! has advanced past its score. The criterion arms measure the two cold-path endpoints on a
//! 4-shard service (a fresh preference every iteration, so nothing is served from cache):
//! `first_row` is construction + one confirmed row, `whole_skyline` drains the stream.
//!
//! The summary pass replays an open-loop Zipf workload (Poisson arrivals, each request on
//! its own thread at its scheduled offset — a late answer does not delay the next arrival)
//! and reports p50/p99 time-to-first-row against p50/p99 completion. On a full local run
//! (`SKYLINE_BENCH_SAMPLES` unset, n=100k) it hard-asserts that p99 time-to-first-row is at
//! least 3x lower than p99 whole-skyline completion — the progressive path must actually
//! buy latency, not just restructure the API. The CI smoke job runs a scaled-down dataset
//! and never hard-asserts.

use criterion::{criterion_group, criterion_main, Criterion};
use skyline::prelude::*;
use skyline_service::{ShardedConfig, ShardedService};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Setup {
    service: Arc<ShardedService>,
    generator: QueryGenerator,
    template: Template,
    pref_order: usize,
    theta: f64,
    tuples: usize,
}

fn setup() -> Setup {
    let smoke = std::env::var("SKYLINE_BENCH_SAMPLES").is_ok();
    let tuples = if smoke { 8_000 } else { 100_000 };
    let config = ExperimentConfig {
        n: tuples,
        ..ExperimentConfig::paper_default()
    };
    let data = config.generate_dataset();
    let template = config.template(&data);
    let service = ShardedService::build(
        &data,
        template.clone(),
        EngineConfig::AdaptiveSfs,
        ShardedConfig {
            shards: 4,
            workers: 4,
            ..ShardedConfig::default()
        },
    )
    .expect("sharded service builds");
    Setup {
        service: Arc::new(service),
        generator: config.query_generator(),
        template,
        pref_order: config.pref_order,
        theta: config.theta,
        tuples,
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One open-loop request: sleep until the scheduled offset, stream the answer, and return
/// `(time to first row, time to completion)` — or `None` if the admission gate shed it.
fn open_loop_request(
    service: &ShardedService,
    start: Instant,
    at: Duration,
    pref: &Preference,
) -> Option<(Duration, Duration)> {
    let now = start.elapsed();
    if at > now {
        std::thread::sleep(at - now);
    }
    let issued = Instant::now();
    match service.serve_streaming(pref) {
        Ok(mut stream) => {
            let first = stream.next_row().expect("stream pulls");
            let ttfr = issued.elapsed();
            if first.is_some() {
                black_box(stream.collect_rows().expect("stream drains").len());
            }
            Some((ttfr, issued.elapsed()))
        }
        Err(SkylineError::Overloaded) => None,
        Err(other) => panic!("unexpected error on the streaming path: {other}"),
    }
}

fn bench_streaming(c: &mut Criterion) {
    let mut s = setup();
    let schema = s.service.schema().clone();
    let mut group = c.benchmark_group("streaming_ttfr");
    group.sample_size(5);
    group.bench_function("first_row", |b| {
        b.iter(|| {
            let pref = s
                .generator
                .random_preference(&schema, &s.template, s.pref_order, None);
            let mut stream = s.service.serve_streaming(&pref).expect("stream starts");
            black_box(stream.next_row().expect("first row"))
        })
    });
    group.bench_function("whole_skyline", |b| {
        b.iter(|| {
            let pref = s
                .generator
                .random_preference(&schema, &s.template, s.pref_order, None);
            let stream = s.service.serve_streaming(&pref).expect("stream starts");
            black_box(stream.collect_rows().expect("stream drains").len())
        })
    });
    group.finish();

    // Summary pass: an open-loop Zipf stream of preferences — a hot head that coalesces on
    // the cache plus a cold tail that pays a real scatter, arriving on a Poisson schedule
    // that does not wait for earlier answers. Every request measures its own first-row and
    // completion latency from the moment it was issued.
    let smoke = std::env::var("SKYLINE_BENCH_SAMPLES").is_ok();
    let count = if smoke { 16 } else { 64 };
    let mean = Duration::from_millis(if smoke { 1 } else { 10 });
    let schedule = s.generator.open_loop_zipf_workload(
        &schema,
        &s.template,
        s.pref_order,
        count / 2,
        count,
        s.theta,
        mean,
    );
    let start = Instant::now();
    let handles: Vec<_> = schedule
        .into_iter()
        .map(|(at, pref)| {
            let service = Arc::clone(&s.service);
            std::thread::spawn(move || open_loop_request(&service, start, at, &pref))
        })
        .collect();
    let mut ttfrs = Vec::with_capacity(count);
    let mut totals = Vec::with_capacity(count);
    let mut shed = 0usize;
    for handle in handles {
        match handle.join().expect("request thread") {
            Some((ttfr, total)) => {
                ttfrs.push(ttfr);
                totals.push(total);
            }
            None => shed += 1,
        }
    }
    assert_eq!(ttfrs.len() + shed, count, "every request resolved or shed");
    ttfrs.sort();
    totals.sort();
    let (ttfr_p50, ttfr_p99) = (percentile(&ttfrs, 0.50), percentile(&ttfrs, 0.99));
    let (total_p50, total_p99) = (percentile(&totals, 0.50), percentile(&totals, 0.99));
    println!(
        "  summary: {} open-loop Zipf requests at n={} over 4 shards ({} shed) — \
         first row p50 {:.2}ms p99 {:.2}ms, whole skyline p50 {:.2}ms p99 {:.2}ms",
        ttfrs.len(),
        s.tuples,
        shed,
        ttfr_p50.as_secs_f64() * 1e3,
        ttfr_p99.as_secs_f64() * 1e3,
        total_p50.as_secs_f64() * 1e3,
        total_p99.as_secs_f64() * 1e3,
    );
    if !smoke {
        assert!(!ttfrs.is_empty(), "the open-loop pass must serve requests");
        assert!(
            ttfr_p99 * 3 <= total_p99,
            "progressive serving must deliver the first row at least 3x earlier than the \
             whole answer: p99 ttfr {ttfr_p99:?} vs p99 completion {total_p99:?}"
        );
    }
    assert_eq!(
        s.service.stats().queue_depth,
        0,
        "all admission permits released after the open-loop pass"
    );
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
