//! Overload behavior of the sharded service: p99 latency and shed rate when the offered
//! load is 10× the admission queue's depth.
//!
//! A fixed client fleet hammers a 4-shard `ShardedService` whose admission queue holds
//! `DEPTH` requests; the `at_capacity` arm offers exactly `DEPTH` concurrent clients (no
//! request should ever shed), the `ten_x` arm offers `10 × DEPTH`. Shed requests fail in
//! O(1) at the admission gate — the point of load shedding is that the p99 of the requests
//! the service *does* accept stays flat while the excess is rejected immediately instead of
//! queueing without bound.
//!
//! The summary pass reports accepted-request p50/p99 and the shed rate at both load levels.
//! On a full local run (`SKYLINE_BENCH_SAMPLES` unset) it hard-asserts that the 10× storm
//! sheds at least one request and that every request resolved (served, degraded or shed —
//! nothing hung). The CI smoke job runs a scaled-down dataset and never hard-asserts.

use criterion::{criterion_group, criterion_main, Criterion};
use skyline::prelude::*;
use skyline_service::{ShardPartition, ShardedConfig, ShardedService};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const DEPTH: usize = 4;
const REQUESTS_PER_CLIENT: usize = 8;
const LOAD_FACTORS: [usize; 2] = [1, 10];

struct Setup {
    service: Arc<ShardedService>,
    prefs: Vec<Preference>,
    generator: QueryGenerator,
    template: Template,
    pref_order: usize,
    tuples: usize,
}

fn setup() -> Setup {
    let smoke = std::env::var("SKYLINE_BENCH_SAMPLES").is_ok();
    let tuples = if smoke { 4_000 } else { 40_000 };
    let config = ExperimentConfig {
        n: tuples,
        ..ExperimentConfig::paper_default()
    };
    let data = config.generate_dataset();
    let template = config.template(&data);
    let service = ShardedService::build(
        &data,
        template.clone(),
        EngineConfig::AdaptiveSfs,
        ShardedConfig {
            shards: 4,
            partition: ShardPartition::HashNominal { dim: 0 },
            admission_depth: DEPTH,
            ..ShardedConfig::default()
        },
    )
    .expect("sharded service builds");
    let mut generator = config.query_generator();
    let prefs = (0..12)
        .map(|_| generator.random_preference(data.schema(), &template, config.pref_order, None))
        .collect();
    Setup {
        service: Arc::new(service),
        prefs,
        generator,
        template,
        pref_order: config.pref_order,
        tuples,
    }
}

struct StormOutcome {
    served: usize,
    shed: usize,
    /// Wall-clock latency of every request the admission queue accepted, unsorted.
    accepted_latencies: Vec<Duration>,
}

/// Runs `clients` concurrent closed-loop clients for `REQUESTS_PER_CLIENT` requests each.
fn storm(service: &Arc<ShardedService>, prefs: &[Preference], clients: usize) -> StormOutcome {
    let barrier = Arc::new(Barrier::new(clients));
    let shed = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let service = Arc::clone(service);
            let prefs = prefs.to_vec();
            let barrier = Arc::clone(&barrier);
            let shed = Arc::clone(&shed);
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
                barrier.wait();
                for r in 0..REQUESTS_PER_CLIENT {
                    let started = Instant::now();
                    match service.serve(&prefs[(c * REQUESTS_PER_CLIENT + r) % prefs.len()]) {
                        Ok(served) => {
                            latencies.push(started.elapsed());
                            black_box(served.outcome.skyline.len());
                        }
                        Err(SkylineError::Overloaded) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected error under overload: {other}"),
                    }
                }
                latencies
            })
        })
        .collect();
    let mut accepted_latencies = Vec::new();
    for handle in handles {
        accepted_latencies.extend(handle.join().expect("client thread"));
    }
    StormOutcome {
        served: accepted_latencies.len(),
        shed: shed.load(Ordering::Relaxed),
        accepted_latencies,
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn bench_overload(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("overload_admission");
    group.sample_size(5);
    for factor in LOAD_FACTORS {
        let clients = DEPTH * factor;
        let label = if factor == 1 { "at_capacity" } else { "ten_x" };
        group.bench_function(format!("storm/{label}"), |b| {
            b.iter(|| black_box(storm(&s.service, &s.prefs, clients).served))
        });
    }
    group.finish();

    // Summary pass: one measured storm per load level, each request carrying a *fresh*
    // preference. The criterion arms above warmed the cache for the 12 hot preferences;
    // unique preferences force every summary request through a real scatter, so the
    // clients genuinely overlap in the admission queue instead of draining µs cache hits.
    let smoke = std::env::var("SKYLINE_BENCH_SAMPLES").is_ok();
    let mut s = s;
    for factor in LOAD_FACTORS {
        let clients = DEPTH * factor;
        let schema = s.service.schema().clone();
        let fresh: Vec<Preference> = (0..clients * REQUESTS_PER_CLIENT)
            .map(|_| {
                s.generator
                    .random_preference(&schema, &s.template, s.pref_order, None)
            })
            .collect();
        let outcome = storm(&s.service, &fresh, clients);
        let total = clients * REQUESTS_PER_CLIENT;
        assert_eq!(
            outcome.served + outcome.shed,
            total,
            "every request must resolve: served, degraded or shed"
        );
        let mut sorted = outcome.accepted_latencies.clone();
        sorted.sort();
        let p50 = percentile(&sorted, 0.50);
        let p99 = percentile(&sorted, 0.99);
        println!(
            "  summary: clients={clients} (depth {DEPTH}, {factor}x) at n={} — \
             {}/{total} served, shed rate {:.1}%, accepted p50 {:.2}ms p99 {:.2}ms",
            s.tuples,
            outcome.served,
            outcome.shed as f64 / total as f64 * 100.0,
            p50.as_secs_f64() * 1e3,
            p99.as_secs_f64() * 1e3,
        );
        if factor == 10 && !smoke && outcome.shed == 0 {
            panic!("a 10x storm over a depth-{DEPTH} admission queue must shed requests");
        }
    }
    assert_eq!(
        s.service.stats().queue_depth,
        0,
        "all admission permits released after the storms"
    );
}

criterion_group!(benches, bench_overload);
criterion_main!(benches);
