//! Compiled dominance kernel vs. the reference `DominanceContext`, and serial vs. parallel
//! template-skyline preprocessing, on the n=2000 hybrid-engine workload of `bench_throughput`.
//!
//! Both query arms run the *same* algorithm — score-sort the dataset under the query ranking,
//! then the SFS elimination scan — and differ only in the pairwise dominance implementation:
//!
//! * `legacy_context_scan` — [`DominanceContext`]: strided columnar lookups plus a
//!   [`skyline_core::PartialOrder`] closure probe per nominal dimension;
//! * `compiled_kernel_scan` — [`CompiledRelation`]: a shared row-major [`PointBlock`] plus
//!   per-query closure bitmasks, compiled once per query.
//!
//! The build arms compare `AdaptiveSfs::build_with_workers(…, 1)` against the chunked
//! divide-and-conquer scan on all available cores (identical output, asserted by the
//! `kernel_equivalence` property suite; the win scales with core count, so expect parity on a
//! single-core CI box).

use criterion::{criterion_group, criterion_main, Criterion};
use skyline::prelude::*;
use skyline_core::algo::sfs;
use std::hint::black_box;
use std::num::NonZeroUsize;
use std::sync::Arc;

const TUPLES: usize = 2_000;
const POOL: usize = 48;
const QUERIES: usize = 60;

struct Workload {
    data: Arc<Dataset>,
    template: Template,
    block: Arc<PointBlock>,
    queries: Vec<Preference>,
}

fn setup() -> Workload {
    let config = ExperimentConfig {
        n: TUPLES,
        ..ExperimentConfig::paper_default()
    };
    let data = Arc::new(config.generate_dataset());
    let template = config.template(&data);
    // The hybrid engine owns the shared point block in production; reuse it here so the
    // compiled arm measures exactly what the engine executes.
    let engine = Arc::new(
        SkylineEngine::build(
            data.clone(),
            template.clone(),
            EngineConfig::Hybrid { top_k: 10 },
        )
        .expect("hybrid engine builds"),
    );
    let block = engine
        .point_block()
        .expect("hybrid engines carry a point block")
        .clone();
    let mut generator = config.query_generator();
    let queries = generator.zipf_workload(
        data.schema(),
        &template,
        config.pref_order,
        POOL,
        QUERIES,
        config.theta,
    );
    Workload {
        data,
        template,
        block,
        queries,
    }
}

/// One full-dataset elimination pass per query on the given dominance implementation; returns
/// the summed skyline sizes as the black-boxed payload.
fn scan_all<D: Dominance>(
    w: &Workload,
    make: impl Fn(&Preference) -> D,
    sorted: &[Vec<PointId>],
) -> usize {
    w.queries
        .iter()
        .zip(sorted)
        .map(|(pref, order)| {
            let dom = make(pref);
            sfs::scan_presorted(&dom, order).len()
        })
        .sum()
}

fn bench_kernel(c: &mut Criterion) {
    let w = setup();
    // The score-sort is identical in both arms; precompute it so the timing isolates the
    // dominance kernel (the sort is the same O(N log N) constant either way).
    let all: Vec<PointId> = w.data.point_ids().collect();
    let sorted: Vec<Vec<PointId>> = w
        .queries
        .iter()
        .map(|pref| {
            let score = skyline_core::score::ScoreFn::for_preference(w.data.schema(), pref)
                .expect("workload preferences are valid");
            score.sort_by_score(&w.data, &all)
        })
        .collect();

    let mut group = c.benchmark_group("kernel_n2000_hybrid");
    group.sample_size(5);

    group.bench_function("legacy_context_scan", |b| {
        b.iter(|| {
            black_box(scan_all(
                &w,
                |pref| {
                    DominanceContext::for_query(&w.data, &w.template, pref)
                        .expect("workload preferences are valid")
                },
                &sorted,
            ))
        })
    });

    group.bench_function("compiled_kernel_scan", |b| {
        b.iter(|| {
            black_box(scan_all(
                &w,
                |pref| {
                    CompiledRelation::for_query(w.block.clone(), w.data.schema(), &w.template, pref)
                        .expect("workload preferences are valid")
                },
                &sorted,
            ))
        })
    });

    group.bench_function("asfs_build_serial", |b| {
        b.iter(|| {
            black_box(
                AdaptiveSfs::build_with_workers(w.data.clone(), &w.template, 1)
                    .expect("build succeeds"),
            )
        })
    });

    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    group.bench_function("asfs_build_parallel", |b| {
        b.iter(|| {
            black_box(
                AdaptiveSfs::build_with_workers(w.data.clone(), &w.template, cores)
                    .expect("build succeeds"),
            )
        })
    });
    group.finish();

    // Extra measured passes reporting the acceptance numbers alongside the timings: three
    // interleaved rounds per arm, best-of taken, so a single noisy pass cannot skew the
    // printed (and locally asserted) speedup.
    let mut legacy = std::time::Duration::MAX;
    let mut compiled = std::time::Duration::MAX;
    for _ in 0..3 {
        let started = std::time::Instant::now();
        let legacy_total = scan_all(
            &w,
            |pref| DominanceContext::for_query(&w.data, &w.template, pref).unwrap(),
            &sorted,
        );
        legacy = legacy.min(started.elapsed());
        let started = std::time::Instant::now();
        let compiled_total = scan_all(
            &w,
            |pref| {
                CompiledRelation::for_query(w.block.clone(), w.data.schema(), &w.template, pref)
                    .unwrap()
            },
            &sorted,
        );
        compiled = compiled.min(started.elapsed());
        assert_eq!(
            legacy_total, compiled_total,
            "kernel and reference must produce identical skylines"
        );
    }
    let speedup = legacy.as_secs_f64() / compiled.as_secs_f64();
    println!(
        "  summary: {QUERIES} queries at n={TUPLES} ({cores} cores); \
         compiled kernel speedup {speedup:.1}x over DominanceContext \
         (legacy {:.1}ms, compiled {:.1}ms)",
        legacy.as_secs_f64() * 1e3,
        compiled.as_secs_f64() * 1e3,
    );
    // Hard-assert only on full local runs; the CI smoke job (SKYLINE_BENCH_SAMPLES set) runs
    // on noisy shared runners where a hard perf gate would flake.
    if std::env::var("SKYLINE_BENCH_SAMPLES").is_err() {
        assert!(
            speedup > 1.5,
            "compiled kernel must clearly beat the reference path, got {speedup:.2}x"
        );
    } else if speedup < 1.0 {
        println!("::warning title=kernel bench::compiled kernel slower than reference ({speedup:.2}x) in this smoke run");
    }
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
