//! Compiled dominance kernel vs. the reference `DominanceContext`, the bit-parallel packed
//! kernel vs. the scalar compiled walk, and serial vs. parallel template-skyline
//! preprocessing, on the n=2000 hybrid-engine workload of `bench_throughput`.
//!
//! The query arms run the *same* algorithm — score-sort the dataset under the query ranking,
//! then the SFS elimination scan — and differ only in the pairwise dominance implementation:
//!
//! * `legacy_context_scan` — [`DominanceContext`]: strided columnar lookups plus a
//!   [`skyline_core::PartialOrder`] closure probe per nominal dimension;
//! * `compiled_kernel_scan` — [`CompiledRelation`] under [`KernelMode::Scalar`]: a shared
//!   row-major [`PointBlock`] plus per-query closure bitmasks, one window row at a time
//!   (the PR 3 path, now the runtime fallback);
//! * `packed_kernel_scan` — the same relation under [`KernelMode::Packed`]: 64-row lane
//!   blocks tested with `u64` mask algebra.
//!
//! `merge_skylines_{packed,scalar}` measure the cross-fragment merge operator the sharded
//! service gathers with, on 8-way fragment skylines of the same workload.
//!
//! The build arms compare `AdaptiveSfs::build_with_workers(…, 1)` against the chunked
//! divide-and-conquer scan on all available cores (identical output, asserted by the
//! `kernel_equivalence` property suite; the win scales with core count, so expect parity on a
//! single-core CI box).

use criterion::{criterion_group, criterion_main, Criterion};
use skyline::prelude::*;
use skyline_core::algo::sfs;
use skyline_core::{merge_skylines, with_kernel_mode, KernelMode};
use std::hint::black_box;
use std::num::NonZeroUsize;
use std::sync::Arc;

const TUPLES: usize = 2_000;
const POOL: usize = 48;
const QUERIES: usize = 60;

struct Workload {
    data: Arc<Dataset>,
    template: Template,
    block: Arc<PointBlock>,
    queries: Vec<Preference>,
}

fn setup() -> Workload {
    let config = ExperimentConfig {
        n: TUPLES,
        ..ExperimentConfig::paper_default()
    };
    let data = Arc::new(config.generate_dataset());
    let template = config.template(&data);
    // The hybrid engine owns the shared point block in production; reuse it here so the
    // compiled arm measures exactly what the engine executes.
    let engine = Arc::new(
        SkylineEngine::build(
            data.clone(),
            template.clone(),
            EngineConfig::Hybrid { top_k: 10 },
        )
        .expect("hybrid engine builds"),
    );
    let block = engine
        .point_block()
        .expect("hybrid engines carry a point block")
        .clone();
    let mut generator = config.query_generator();
    let queries = generator.zipf_workload(
        data.schema(),
        &template,
        config.pref_order,
        POOL,
        QUERIES,
        config.theta,
    );
    Workload {
        data,
        template,
        block,
        queries,
    }
}

/// One full-dataset elimination pass per query on the given dominance implementation; returns
/// the summed skyline sizes as the black-boxed payload.
fn scan_all<D: Dominance>(
    w: &Workload,
    make: impl Fn(&Preference) -> D,
    sorted: &[Vec<PointId>],
) -> usize {
    w.queries
        .iter()
        .zip(sorted)
        .map(|(pref, order)| {
            let dom = make(pref);
            sfs::scan_presorted(&dom, order).len()
        })
        .sum()
}

fn bench_kernel(c: &mut Criterion) {
    let w = setup();
    // The score-sort is identical in both arms; precompute it so the timing isolates the
    // dominance kernel (the sort is the same O(N log N) constant either way).
    let all: Vec<PointId> = w.data.point_ids().collect();
    let sorted: Vec<Vec<PointId>> = w
        .queries
        .iter()
        .map(|pref| {
            let score = skyline_core::score::ScoreFn::for_preference(w.data.schema(), pref)
                .expect("workload preferences are valid");
            score.sort_by_score(&w.data, &all)
        })
        .collect();

    let mut group = c.benchmark_group("kernel_n2000_hybrid");
    group.sample_size(5);

    group.bench_function("legacy_context_scan", |b| {
        b.iter(|| {
            black_box(scan_all(
                &w,
                |pref| {
                    DominanceContext::for_query(&w.data, &w.template, pref)
                        .expect("workload preferences are valid")
                },
                &sorted,
            ))
        })
    });

    let kernel_scan = |w: &Workload, sorted: &[Vec<PointId>]| {
        scan_all(
            w,
            |pref| {
                CompiledRelation::for_query(w.block.clone(), w.data.schema(), &w.template, pref)
                    .expect("workload preferences are valid")
            },
            sorted,
        )
    };

    group.bench_function("compiled_kernel_scan", |b| {
        b.iter(|| with_kernel_mode(KernelMode::Scalar, || black_box(kernel_scan(&w, &sorted))))
    });

    group.bench_function("packed_kernel_scan", |b| {
        b.iter(|| with_kernel_mode(KernelMode::Packed, || black_box(kernel_scan(&w, &sorted))))
    });

    // The cross-fragment merge operator on 8-way splits: per query, the fragments'
    // skylines are precomputed (that part belongs to the shards), so the arm isolates the
    // gather-side elimination the sharded service runs on every scatter-gather.
    let merge_inputs: Vec<(CompiledRelation, Vec<Vec<PointId>>)> = w
        .queries
        .iter()
        .take(12)
        .map(|pref| {
            let rel =
                CompiledRelation::for_query(w.block.clone(), w.data.schema(), &w.template, pref)
                    .expect("workload preferences are valid");
            let fragments: Vec<Vec<PointId>> = (0..8)
                .map(|s| {
                    let rows: Vec<PointId> =
                        (0..TUPLES as PointId).filter(|p| p % 8 == s).collect();
                    skyline_core::algo::bnl::skyline_of(&rel, &rows)
                })
                .collect();
            (rel, fragments)
        })
        .collect();
    let merge_all = |inputs: &[(CompiledRelation, Vec<Vec<PointId>>)]| -> usize {
        inputs
            .iter()
            .map(|(rel, fragments)| {
                let views: Vec<&[PointId]> = fragments.iter().map(Vec::as_slice).collect();
                merge_skylines(rel, &views).len()
            })
            .sum()
    };

    group.bench_function("merge_skylines_packed", |b| {
        b.iter(|| with_kernel_mode(KernelMode::Packed, || black_box(merge_all(&merge_inputs))))
    });

    group.bench_function("merge_skylines_scalar", |b| {
        b.iter(|| with_kernel_mode(KernelMode::Scalar, || black_box(merge_all(&merge_inputs))))
    });

    group.bench_function("asfs_build_serial", |b| {
        b.iter(|| {
            black_box(
                AdaptiveSfs::build_with_workers(w.data.clone(), &w.template, 1)
                    .expect("build succeeds"),
            )
        })
    });

    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    group.bench_function("asfs_build_parallel", |b| {
        b.iter(|| {
            black_box(
                AdaptiveSfs::build_with_workers(w.data.clone(), &w.template, cores)
                    .expect("build succeeds"),
            )
        })
    });
    group.finish();

    // Extra measured passes reporting the acceptance numbers alongside the timings: three
    // interleaved rounds per arm, best-of taken, so a single noisy pass cannot skew the
    // printed (and locally asserted) speedups.
    let mut legacy = std::time::Duration::MAX;
    let mut compiled = std::time::Duration::MAX;
    let mut packed = std::time::Duration::MAX;
    for _ in 0..3 {
        let started = std::time::Instant::now();
        let legacy_total = scan_all(
            &w,
            |pref| DominanceContext::for_query(&w.data, &w.template, pref).unwrap(),
            &sorted,
        );
        legacy = legacy.min(started.elapsed());
        let started = std::time::Instant::now();
        let compiled_total = with_kernel_mode(KernelMode::Scalar, || kernel_scan(&w, &sorted));
        compiled = compiled.min(started.elapsed());
        let started = std::time::Instant::now();
        let packed_total = with_kernel_mode(KernelMode::Packed, || kernel_scan(&w, &sorted));
        packed = packed.min(started.elapsed());
        assert_eq!(
            legacy_total, compiled_total,
            "kernel and reference must produce identical skylines"
        );
        assert_eq!(
            compiled_total, packed_total,
            "packed and scalar kernels must produce identical skylines"
        );
    }
    let speedup = legacy.as_secs_f64() / compiled.as_secs_f64();
    let packed_speedup = compiled.as_secs_f64() / packed.as_secs_f64();
    println!(
        "  summary: {QUERIES} queries at n={TUPLES} ({cores} cores); \
         compiled kernel speedup {speedup:.1}x over DominanceContext \
         (legacy {:.1}ms, compiled {:.1}ms); \
         packed kernel speedup {packed_speedup:.2}x over the scalar walk \
         (packed {:.1}ms)",
        legacy.as_secs_f64() * 1e3,
        compiled.as_secs_f64() * 1e3,
        packed.as_secs_f64() * 1e3,
    );
    // Hard-assert only on full local runs; the CI smoke job (SKYLINE_BENCH_SAMPLES set) runs
    // on noisy shared runners where a hard perf gate would flake.
    if std::env::var("SKYLINE_BENCH_SAMPLES").is_err() {
        assert!(
            speedup > 1.5,
            "compiled kernel must clearly beat the reference path, got {speedup:.2}x"
        );
        assert!(
            packed_speedup >= 1.3,
            "packed kernel must beat the scalar compiled walk by 1.3x, got {packed_speedup:.2}x"
        );
    } else {
        if speedup < 1.0 {
            println!("::warning title=kernel bench::compiled kernel slower than reference ({speedup:.2}x) in this smoke run");
        }
        if packed_speedup < 1.0 {
            println!("::warning title=kernel bench::packed kernel slower than the scalar walk ({packed_speedup:.2}x) in this smoke run");
        }
    }
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
