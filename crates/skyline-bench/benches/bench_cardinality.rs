//! Figure 6(a)/(b) as Criterion benchmarks: IPO-tree construction and query time as the
//! cardinality of the nominal attributes grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline::datagen::ExperimentConfig;
use skyline_adaptive::AdaptiveSfs;
use skyline_ipo::IpoTreeBuilder;
use std::hint::black_box;

const N: usize = 1_500;
const QUERIES: usize = 10;

fn bench_vs_cardinality(c: &mut Criterion) {
    let mut build_group = c.benchmark_group("fig6_build_time_vs_cardinality");
    build_group.sample_size(10);
    for cardinality in [10usize, 20, 30] {
        let config = ExperimentConfig {
            n: N,
            cardinality,
            ..ExperimentConfig::paper_default()
        };
        let data = std::sync::Arc::new(config.generate_dataset());
        let template = config.template(&data);
        build_group.bench_with_input(
            BenchmarkId::new("ipo_tree_build", cardinality),
            &cardinality,
            |b, _| b.iter(|| black_box(IpoTreeBuilder::new().build(&data, &template).unwrap())),
        );
        build_group.bench_with_input(
            BenchmarkId::new("ipo_tree10_build", cardinality),
            &cardinality,
            |b, _| {
                b.iter(|| {
                    black_box(
                        IpoTreeBuilder::new()
                            .top_k_values(10)
                            .build(&data, &template)
                            .unwrap(),
                    )
                })
            },
        );
    }
    build_group.finish();

    let mut query_group = c.benchmark_group("fig6_query_time_vs_cardinality");
    query_group.sample_size(10);
    for cardinality in [10usize, 20, 30] {
        let config = ExperimentConfig {
            n: N,
            cardinality,
            ..ExperimentConfig::paper_default()
        };
        let data = std::sync::Arc::new(config.generate_dataset());
        let template = config.template(&data);
        let mut generator = config.query_generator();
        let queries = generator.random_preferences(
            data.schema(),
            &template,
            config.pref_order,
            QUERIES,
            None,
        );
        let tree = IpoTreeBuilder::new().build(&data, &template).unwrap();
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();

        query_group.bench_with_input(
            BenchmarkId::new("ipo_tree", cardinality),
            &cardinality,
            |b, _| {
                b.iter(|| {
                    for q in &queries {
                        black_box(tree.query(&data, q).unwrap());
                    }
                })
            },
        );
        query_group.bench_with_input(
            BenchmarkId::new("sfs_a", cardinality),
            &cardinality,
            |b, _| {
                b.iter(|| {
                    for q in &queries {
                        black_box(asfs.query(q).unwrap());
                    }
                })
            },
        );
    }
    query_group.finish();
}

criterion_group!(benches, bench_vs_cardinality);
criterion_main!(benches);
