//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * IPO-tree construction via mined MDCs vs. direct per-node recomputation;
//! * set-based vs. bitmap node representation for query evaluation;
//! * Adaptive SFS with the affected-only elimination pass vs. a full SFS rescan.

use criterion::{criterion_group, criterion_main, Criterion};
use skyline::datagen::ExperimentConfig;
use skyline_adaptive::{AdaptiveSfs, ScanMode};
use skyline_ipo::{BitmapIpoTree, BuildStrategy, IpoTreeBuilder};
use std::hint::black_box;

const N: usize = 1_500;
const QUERIES: usize = 10;

fn bench_ablations(c: &mut Criterion) {
    let config = ExperimentConfig {
        n: N,
        cardinality: 12,
        ..ExperimentConfig::paper_default()
    };
    let data = std::sync::Arc::new(config.generate_dataset());
    let template = config.template(&data);
    let mut generator = config.query_generator();
    let queries =
        generator.random_preferences(data.schema(), &template, config.pref_order, QUERIES, None);

    // --- Build strategy ablation. ------------------------------------------------------------
    let mut build_group = c.benchmark_group("ablation_ipo_build_strategy");
    build_group.sample_size(10);
    build_group.bench_function("mdc", |b| {
        b.iter(|| {
            black_box(
                IpoTreeBuilder::new()
                    .strategy(BuildStrategy::Mdc)
                    .build(&data, &template)
                    .unwrap(),
            )
        })
    });
    build_group.bench_function("direct", |b| {
        b.iter(|| {
            black_box(
                IpoTreeBuilder::new()
                    .strategy(BuildStrategy::Direct)
                    .build(&data, &template)
                    .unwrap(),
            )
        })
    });
    build_group.bench_function("mdc_parallel", |b| {
        b.iter(|| {
            black_box(
                IpoTreeBuilder::new()
                    .parallel(true)
                    .build(&data, &template)
                    .unwrap(),
            )
        })
    });
    build_group.finish();

    // --- Node representation ablation. ---------------------------------------------------------
    let tree = IpoTreeBuilder::new().build(&data, &template).unwrap();
    let bitmap = BitmapIpoTree::from_tree(&tree, &data);
    let mut repr_group = c.benchmark_group("ablation_ipo_query_representation");
    repr_group.sample_size(20);
    repr_group.bench_function("sorted_sets", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(tree.query(&data, q).unwrap());
            }
        })
    });
    repr_group.bench_function("bitmaps", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(bitmap.query(&data, q).unwrap());
            }
        })
    });
    repr_group.finish();

    // --- Adaptive SFS scan mode ablation. -----------------------------------------------------
    let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
    let mut scan_group = c.benchmark_group("ablation_asfs_scan_mode");
    scan_group.sample_size(20);
    scan_group.bench_function("affected_only", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(asfs.query_with_stats(q, ScanMode::AffectedOnly).unwrap());
            }
        })
    });
    scan_group.bench_function("full_rescan", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(asfs.query_with_stats(q, ScanMode::FullRescan).unwrap());
            }
        })
    });
    scan_group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
