//! Figure 5(b) as a Criterion benchmark: query time as the number of nominal dimensions grows
//! (3 numeric dimensions fixed, 1..3 nominal dimensions at bench scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline::datagen::ExperimentConfig;
use skyline_adaptive::AdaptiveSfs;
use skyline_ipo::IpoTreeBuilder;
use std::hint::black_box;

const N: usize = 2_000;
const QUERIES: usize = 10;

fn bench_query_time_vs_dimensionality(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_query_time_vs_dimensionality");
    group.sample_size(10);
    for nominal_dims in 1..=3usize {
        let config = ExperimentConfig {
            n: N,
            nominal_dims,
            cardinality: 10,
            ..ExperimentConfig::paper_default()
        };
        let data = std::sync::Arc::new(config.generate_dataset());
        let template = config.template(&data);
        let mut generator = config.query_generator();
        let queries = generator.random_preferences(
            data.schema(),
            &template,
            config.pref_order,
            QUERIES,
            None,
        );
        let total_dims = config.total_dims();

        let tree = IpoTreeBuilder::new()
            .build(&data, &template)
            .expect("tree builds");
        let asfs = AdaptiveSfs::build(data.clone(), &template).expect("adaptive builds");

        group.bench_with_input(
            BenchmarkId::new("ipo_tree", total_dims),
            &total_dims,
            |b, _| {
                b.iter(|| {
                    for q in &queries {
                        black_box(tree.query(&data, q).unwrap());
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sfs_a", total_dims),
            &total_dims,
            |b, _| {
                b.iter(|| {
                    for q in &queries {
                        black_box(asfs.query(q).unwrap());
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query_time_vs_dimensionality);
criterion_main!(benches);
