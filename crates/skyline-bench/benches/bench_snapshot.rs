//! Snapshot cold start: rehydrating a service from its persistent binary snapshot vs
//! rebuilding it from raw rows.
//!
//! The snapshot format exists for exactly one reason — a restarted server should start
//! answering in the time it takes to read, checksum and index a few column blobs, not in
//! the time it takes to re-run preprocessing (template scoring, the Adaptive-SFS sort and
//! the IPO-tree construction). The criterion arms measure the two cold-start endpoints on
//! the paper-default hybrid configuration, sharded two ways:
//!
//! * `preprocess_build` — `ShardedService::build` from the raw dataset (partition, score,
//!   sort, build the IPO tree per shard);
//! * `snapshot_load` — `ShardedService::from_snapshots` over `shard-NNNN.snap` files
//!   written once in setup (parse, checksum, rehydrate without re-sorting).
//!
//! On a full local run (`SKYLINE_BENCH_SAMPLES` unset, n = 100 000) the summary
//! hard-asserts the snapshot load is **≥ 10×** faster than the rebuild — the format has to
//! actually buy near-zero deserialization, not just round-trip. The CI smoke job runs a
//! scaled-down dataset on shared runners and never hard-asserts. Both paths are also
//! answer-checked against each other on a handful of random preferences before any timing
//! is trusted.

use criterion::{criterion_group, criterion_main, Criterion};
use skyline::prelude::*;
use skyline_service::{ShardedConfig, ShardedService};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SHARDS: usize = 2;

struct Setup {
    data: Dataset,
    template: Template,
    sharded: ShardedConfig,
    snapshot_dir: PathBuf,
    generator: QueryGenerator,
    pref_order: usize,
    tuples: usize,
}

fn sharded_config() -> ShardedConfig {
    ShardedConfig {
        shards: SHARDS,
        workers: 2,
        ..ShardedConfig::default()
    }
}

fn setup() -> Setup {
    let smoke = std::env::var("SKYLINE_BENCH_SAMPLES").is_ok();
    let tuples = if smoke { 8_000 } else { 100_000 };
    let config = ExperimentConfig {
        n: tuples,
        ..ExperimentConfig::paper_default()
    };
    let data = config.generate_dataset();
    let template = config.template(&data);
    let snapshot_dir =
        std::env::temp_dir().join(format!("skyline-bench-snapshot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snapshot_dir);

    // Write the snapshot files the load arm reads, and answer-check the rehydrated service
    // against the built one before any timing is trusted.
    let built = ShardedService::build(
        &data,
        template.clone(),
        EngineConfig::Hybrid { top_k: 10 },
        sharded_config(),
    )
    .expect("sharded service builds");
    built
        .write_snapshots(&snapshot_dir)
        .expect("snapshots write");
    let loaded =
        ShardedService::from_snapshots(&snapshot_dir, sharded_config()).expect("snapshots load");
    let mut generator = config.query_generator();
    let schema = data.schema().clone();
    for _ in 0..8 {
        let pref = generator.random_preference(&schema, &template, config.pref_order, None);
        let a = built.serve(&pref).expect("built serves");
        let b = loaded.serve(&pref).expect("loaded serves");
        assert_eq!(
            a.outcome.skyline, b.outcome.skyline,
            "snapshot-loaded service must answer like the built one"
        );
    }

    Setup {
        data,
        template,
        sharded: sharded_config(),
        snapshot_dir,
        generator,
        pref_order: config.pref_order,
        tuples,
    }
}

fn build(s: &Setup) -> ShardedService {
    ShardedService::build(
        &s.data,
        s.template.clone(),
        EngineConfig::Hybrid { top_k: 10 },
        s.sharded.clone(),
    )
    .expect("sharded service builds")
}

fn load(s: &Setup) -> ShardedService {
    ShardedService::from_snapshots(&s.snapshot_dir, s.sharded.clone()).expect("snapshots load")
}

fn bench_snapshot(c: &mut Criterion) {
    let mut s = setup();
    let mut group = c.benchmark_group("snapshot_cold_start");
    group.sample_size(5);
    group.bench_function("preprocess_build", |b| b.iter(|| black_box(build(&s))));
    group.bench_function("snapshot_load", |b| b.iter(|| black_box(load(&s))));
    group.finish();

    // Summary pass: best-of-3 wall times for each cold-start path, plus one served query on
    // the freshly loaded service so the comparison ends at the same "ready to answer" line.
    let mut best_build = Duration::MAX;
    let mut best_load = Duration::MAX;
    for _ in 0..3 {
        let started = Instant::now();
        black_box(build(&s));
        best_build = best_build.min(started.elapsed());

        let started = Instant::now();
        let loaded = black_box(load(&s));
        best_load = best_load.min(started.elapsed());

        let schema = s.data.schema().clone();
        let pref = s
            .generator
            .random_preference(&schema, &s.template, s.pref_order, None);
        black_box(
            loaded
                .serve(&pref)
                .expect("loaded serves")
                .outcome
                .skyline
                .len(),
        );
    }
    let speedup = best_build.as_secs_f64() / best_load.as_secs_f64();
    println!(
        "  summary: cold start at n={} ({SHARDS} shards, hybrid top-10) — rebuild {:.2}ms \
         vs snapshot load {:.2}ms ({speedup:.1}x)",
        s.tuples,
        best_build.as_secs_f64() * 1e3,
        best_load.as_secs_f64() * 1e3,
    );
    let smoke = std::env::var("SKYLINE_BENCH_SAMPLES").is_ok();
    if !smoke {
        assert!(
            speedup >= 10.0,
            "snapshot cold start must be at least 10x faster than preprocessing at \
             n={}, got {speedup:.2}x (rebuild {best_build:?}, load {best_load:?})",
            s.tuples,
        );
    } else if speedup < 10.0 {
        println!("::warning title=snapshot bench::smoke-run speedup only {speedup:.2}x");
    }

    let _ = std::fs::remove_dir_all(&s.snapshot_dir);
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
