//! Figure 4(b) as a Criterion benchmark: query time of every method as the database size grows
//! (anti-correlated data, Table 4 defaults otherwise). Preprocessing is done outside the timing
//! loops; the `figures` binary reports preprocessing time and storage for the same sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline::datagen::ExperimentConfig;
use skyline::prelude::*;
use skyline_adaptive::AdaptiveSfs;
use skyline_ipo::IpoTreeBuilder;
use std::hint::black_box;

const SIZES: [usize; 3] = [1_000, 2_000, 4_000];
const QUERIES: usize = 10;

fn bench_query_time_vs_db_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_query_time_vs_db_size");
    group.sample_size(10);
    for &n in &SIZES {
        let config = ExperimentConfig {
            n,
            ..ExperimentConfig::paper_default()
        };
        let data = std::sync::Arc::new(config.generate_dataset());
        let template = config.template(&data);
        let mut generator = config.query_generator();
        let queries = generator.random_preferences(
            data.schema(),
            &template,
            config.pref_order,
            QUERIES,
            None,
        );

        let tree = IpoTreeBuilder::new()
            .build(&data, &template)
            .expect("tree builds");
        let asfs = AdaptiveSfs::build(data.clone(), &template).expect("adaptive builds");
        let sfsd = SkylineEngine::build(data.clone(), template.clone(), EngineConfig::SfsD)
            .expect("baseline builds");

        group.bench_with_input(BenchmarkId::new("ipo_tree", n), &n, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(tree.query(&data, q).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("sfs_a", n), &n, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(asfs.query(q).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("sfs_d", n), &n, |b, _| {
            b.iter(|| {
                // The baseline is far slower; one representative query keeps the bench short.
                black_box(sfsd.query(&queries[0]).unwrap());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_time_vs_db_size);
criterion_main!(benches);
