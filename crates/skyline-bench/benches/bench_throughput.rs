//! Multi-user serving throughput: a Zipf-skewed preference stream (many users, few popular
//! profiles) answered three ways on the same shared engine —
//!
//! * `serial_engine` — every query runs `SkylineEngine::query` from scratch, one thread;
//! * `service_no_cache` — the worker-pool batch executor, result cache disabled (isolates
//!   the thread-scaling contribution; on a single-core host this tracks serial);
//! * `service_cached` — the full service: worker pool + canonical-preference LRU cache.
//!
//! A fresh service is built inside every iteration so each sample pays the same cold-cache
//! miss load; the printed summary reports the steady cache hit rate of the workload.

use criterion::{criterion_group, criterion_main, Criterion};
use skyline::prelude::*;
use skyline_service::{ServiceConfig, SkylineService};
use std::hint::black_box;
use std::sync::Arc;

const TUPLES: usize = 2_000;
const POOL: usize = 48;
const QUERIES: usize = 300;

fn setup() -> (SharedEngine, Vec<Preference>) {
    let config = ExperimentConfig {
        n: TUPLES,
        ..ExperimentConfig::paper_default()
    };
    let data = Arc::new(config.generate_dataset());
    let template = config.template(&data);
    let engine = SharedEngine::new(
        SkylineEngine::build(
            data.clone(),
            template.clone(),
            EngineConfig::Hybrid { top_k: 10 },
        )
        .expect("hybrid engine builds"),
    );
    let mut generator = config.query_generator();
    let queries = generator.zipf_workload(
        data.schema(),
        &template,
        config.pref_order,
        POOL,
        QUERIES,
        config.theta,
    );
    (engine, queries)
}

fn bench_throughput(c: &mut Criterion) {
    let (engine, queries) = setup();
    let mut group = c.benchmark_group("throughput_zipf_multi_user");
    group.sample_size(5);

    group.bench_function("serial_engine", |b| {
        b.iter(|| {
            let engine = engine.read();
            for q in &queries {
                black_box(engine.query(q).expect("query succeeds"));
            }
        })
    });

    group.bench_function("service_no_cache", |b| {
        b.iter(|| {
            let service = SkylineService::with_config(
                engine.clone(),
                ServiceConfig {
                    cache_capacity: 0,
                    ..ServiceConfig::default()
                },
            );
            black_box(service.serve_batch(&queries));
        })
    });

    group.bench_function("service_cached", |b| {
        b.iter(|| {
            let service = SkylineService::with_config(engine.clone(), ServiceConfig::default());
            black_box(service.serve_batch(&queries));
        })
    });
    group.finish();

    // One extra measured pass to report the acceptance numbers alongside the timings.
    let service = SkylineService::with_config(engine.clone(), ServiceConfig::default());
    let started = std::time::Instant::now();
    {
        let engine = engine.read();
        for q in &queries {
            engine.query(q).expect("query succeeds");
        }
    }
    let serial = started.elapsed();
    let started = std::time::Instant::now();
    let answers = service.serve_batch(&queries);
    let batched = started.elapsed();
    assert!(answers.iter().all(|a| a.is_ok()), "every query serves");
    let stats = service.stats();
    println!(
        "  summary: {} queries over a pool of {POOL} ({} workers); \
         cache hit rate {:.1}%, speedup {:.1}x over serial",
        QUERIES,
        service.workers(),
        100.0 * stats.hit_rate(),
        serial.as_secs_f64() / batched.as_secs_f64()
    );
    assert!(
        stats.hit_rate() > 0.5,
        "Zipf workload must exceed a 50% hit rate, got {:.3}",
        stats.hit_rate()
    );
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
