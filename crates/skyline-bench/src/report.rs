//! Plain-text reporting of experiment cells in the layout of the paper's figures.

use crate::harness::CellResult;

/// Prints the figure banner: which figure of the paper the following series reproduce.
pub fn print_figure_header(figure: &str, x_axis: &str, description: &str) {
    println!();
    println!("==== {figure} — {description} ====");
    println!(
        "(x-axis: {x_axis}; times in seconds, storage in MB; series as in the paper's legend)"
    );
}

/// Prints the four panels — preprocessing time, query time, storage and ratios — for a sweep.
pub fn print_cells(x_axis: &str, cells: &[CellResult]) {
    let methods = ["IPO Tree", "IPO Tree-10", "SFS-A", "SFS-D"];

    println!();
    println!("(a) preprocessing time [s]");
    print!("{:<14}", x_axis);
    for m in &methods[..3] {
        print!("{m:>14}");
    }
    println!();
    for cell in cells {
        print!("{:<14}", cell.label);
        for m in &methods[..3] {
            print!(
                "{:>14.4}",
                cell.method(m).map_or(0.0, |x| x.preprocess_seconds)
            );
        }
        println!();
    }

    println!();
    println!("(b) query time [s]");
    print!("{:<14}", x_axis);
    for m in &methods {
        print!("{m:>14}");
    }
    println!();
    for cell in cells {
        print!("{:<14}", cell.label);
        for m in &methods {
            print!(
                "{:>14.6}",
                cell.method(m).map_or(0.0, |x| x.avg_query_seconds)
            );
        }
        println!();
    }

    println!();
    println!("(c) storage [MB]");
    print!("{:<14}", x_axis);
    for m in &methods {
        print!("{m:>14}");
    }
    println!();
    for cell in cells {
        print!("{:<14}", cell.label);
        for m in &methods {
            let mb = cell
                .method(m)
                .map_or(0.0, |x| x.storage_bytes as f64 / (1024.0 * 1024.0));
            print!("{mb:>14.3}");
        }
        println!();
    }

    println!();
    println!("(d) percentages [%]");
    println!(
        "{:<14}{:>18}{:>24}{:>22}",
        x_axis, "|SKY(R)|/|D|", "|AFFECT(R)|/|SKY(R)|", "|SKY(R')|/|SKY(R)|"
    );
    for cell in cells {
        println!(
            "{:<14}{:>18.2}{:>24.2}{:>22.2}",
            cell.label,
            cell.ratios.template_skyline_pct,
            cell.ratios.affected_pct,
            cell.ratios.query_skyline_pct
        );
    }
    println!();
}

/// Renders a sweep as machine-readable CSV (one row per cell and method).
pub fn to_csv(x_axis: &str, cells: &[CellResult]) -> String {
    let mut out = String::from(
        "x_axis,label,method,preprocess_s,avg_query_s,storage_bytes,queries,sky_pct,affect_pct,query_sky_pct\n",
    );
    for cell in cells {
        for m in &cell.methods {
            out.push_str(&format!(
                "{x_axis},{},{},{:.6},{:.6},{},{},{:.3},{:.3},{:.3}\n",
                cell.label,
                m.method,
                m.preprocess_seconds,
                m.avg_query_seconds,
                m.storage_bytes,
                m.queries_run,
                cell.ratios.template_skyline_pct,
                cell.ratios.affected_pct,
                cell.ratios.query_skyline_pct,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{MethodMetrics, RatioMetrics};

    fn fake_cell(label: &str) -> CellResult {
        CellResult {
            label: label.to_string(),
            methods: vec![
                MethodMetrics {
                    method: "IPO Tree",
                    preprocess_seconds: 1.5,
                    avg_query_seconds: 0.001,
                    queries_run: 10,
                    storage_bytes: 2 * 1024 * 1024,
                },
                MethodMetrics {
                    method: "SFS-D",
                    preprocess_seconds: 0.0,
                    avg_query_seconds: 0.25,
                    queries_run: 5,
                    storage_bytes: 1024,
                },
            ],
            ratios: RatioMetrics {
                template_skyline_pct: 12.5,
                affected_pct: 40.0,
                query_skyline_pct: 80.0,
            },
            dataset_size: 1000,
            template_skyline_size: 125,
        }
    }

    #[test]
    fn csv_contains_every_method_row() {
        let csv = to_csv("n", &[fake_cell("250"), fake_cell("500")]);
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.contains("n,250,IPO Tree,1.500000"));
        assert!(csv.contains("n,500,SFS-D,0.000000"));
        assert!(csv.lines().next().unwrap().starts_with("x_axis,"));
    }

    #[test]
    fn printing_does_not_panic() {
        print_figure_header(
            "Figure 4",
            "tuples (thousands)",
            "scalability with database size",
        );
        print_cells("n", &[fake_cell("250")]);
    }
}
