//! Parsing and comparison of the `BENCH_*.json` perf-trajectory artifacts.
//!
//! The vendored criterion shim appends one JSON line per finished benchmark
//! (`{"bench": …, "samples": …, "min_ns": …, "mean_ns": …}`) to the file named by
//! `SKYLINE_BENCH_JSON`. CI uploads one such report per commit and diffs it against the
//! checked-in `BENCH_baseline.json` with the `bench_diff` binary — **warning-only**: timing
//! noise on shared runners must never fail a build, but a >25 % mean regression should be
//! visible in the job log.
//!
//! No `serde` in this workspace (offline vendored dependencies only), so the single line
//! shape the shim emits is parsed by hand.

use std::collections::BTreeMap;

/// Mean-time ratio (current / baseline) above which a benchmark counts as regressed.
pub const REGRESSION_RATIO: f64 = 1.25;

/// One benchmark measurement from a perf report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Fully qualified benchmark label (`group/function`).
    pub bench: String,
    /// Number of timed samples.
    pub samples: u64,
    /// Fastest sample in nanoseconds.
    pub min_ns: u128,
    /// Mean sample in nanoseconds.
    pub mean_ns: u128,
}

/// Parses a JSON-lines perf report. Unparseable lines are skipped (the report is advisory);
/// when a benchmark appears more than once the last line wins.
pub fn parse_report(text: &str) -> Vec<BenchRecord> {
    let mut by_name: BTreeMap<String, BenchRecord> = BTreeMap::new();
    for line in text.lines() {
        if let Some(record) = parse_line(line.trim()) {
            by_name.insert(record.bench.clone(), record);
        }
    }
    by_name.into_values().collect()
}

/// Parses one `{"bench":"…","samples":N,"min_ns":N,"mean_ns":N}` line.
fn parse_line(line: &str) -> Option<BenchRecord> {
    if !line.starts_with('{') {
        return None;
    }
    let bench = string_field(line, "bench")?;
    Some(BenchRecord {
        bench,
        samples: number_field(line, "samples")? as u64,
        min_ns: number_field(line, "min_ns")?,
        mean_ns: number_field(line, "mean_ns")?,
    })
}

/// Extracts a JSON string field, handling the `{:?}`-style escapes the shim emits.
fn string_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
}

/// Extracts an unsigned JSON number field.
fn number_field(line: &str, key: &str) -> Option<u128> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// The verdict for one benchmark present in both reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Benchmark label.
    pub bench: String,
    /// Baseline mean in nanoseconds.
    pub baseline_mean_ns: u128,
    /// Current mean in nanoseconds.
    pub current_mean_ns: u128,
    /// `current / baseline` mean ratio (`> 1` is slower than baseline).
    pub ratio: f64,
}

impl Comparison {
    /// True when the current mean exceeds the baseline by more than [`REGRESSION_RATIO`].
    pub fn is_regression(&self) -> bool {
        self.ratio > REGRESSION_RATIO
    }
}

/// Result of diffing a current report against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diff {
    /// Benchmarks present in both reports, in name order.
    pub compared: Vec<Comparison>,
    /// Benchmarks only in the baseline (removed or not run).
    pub only_in_baseline: Vec<String>,
    /// Benchmarks only in the current report (newly added).
    pub only_in_current: Vec<String>,
}

impl Diff {
    /// The regressed subset of [`Diff::compared`].
    pub fn regressions(&self) -> Vec<&Comparison> {
        self.compared.iter().filter(|c| c.is_regression()).collect()
    }

    /// Renders the whole diff as the human-readable report `bench_diff` prints: the comparison
    /// table, then — explicitly, so a renamed or deleted benchmark can never silently vanish
    /// from the regression report — one line per benchmark that is new in the current run and
    /// one per benchmark present in the baseline but missing from it.
    pub fn format_report(&self, baseline_label: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf diff vs {baseline_label}: {} compared, {} new, {} missing (warn threshold: \
             >{:.0}% slower mean)",
            self.compared.len(),
            self.only_in_current.len(),
            self.only_in_baseline.len(),
            (REGRESSION_RATIO - 1.0) * 100.0
        );
        let _ = writeln!(
            out,
            "{:<55} {:>14} {:>14} {:>8}",
            "benchmark", "baseline mean", "current mean", "ratio"
        );
        for c in &self.compared {
            let flag = if c.is_regression() {
                "  <-- regression"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{:<55} {:>12}ns {:>12}ns {:>7.2}x{flag}",
                c.bench, c.baseline_mean_ns, c.current_mean_ns, c.ratio
            );
        }
        for name in &self.only_in_current {
            let _ = writeln!(out, "{name:<55} (new benchmark, no baseline)");
        }
        for name in &self.only_in_baseline {
            let _ = writeln!(out, "{name:<55} (in baseline but NOT in this run)");
        }
        out
    }

    /// GitHub Actions `::warning::` annotation lines for this diff: one per regression, plus
    /// a coverage warning naming every baseline benchmark the current run is missing.
    pub fn warning_annotations(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .regressions()
            .iter()
            .map(|c| {
                format!(
                    "::warning title=bench regression::{} mean {:.0}% over baseline \
                     ({}ns -> {}ns); noisy-runner variance is expected — investigate only if \
                     it persists",
                    c.bench,
                    (c.ratio - 1.0) * 100.0,
                    c.baseline_mean_ns,
                    c.current_mean_ns
                )
            })
            .collect();
        if !self.only_in_baseline.is_empty() {
            out.push(format!(
                "::warning title=bench coverage::{} baseline benchmark(s) missing from this \
                 run: {}",
                self.only_in_baseline.len(),
                self.only_in_baseline.join(", ")
            ));
        }
        out
    }
}

/// Diffs two parsed reports by benchmark name.
pub fn diff_reports(baseline: &[BenchRecord], current: &[BenchRecord]) -> Diff {
    let base: BTreeMap<&str, &BenchRecord> =
        baseline.iter().map(|r| (r.bench.as_str(), r)).collect();
    let cur: BTreeMap<&str, &BenchRecord> = current.iter().map(|r| (r.bench.as_str(), r)).collect();
    let mut diff = Diff::default();
    for (name, b) in &base {
        match cur.get(name) {
            Some(c) => diff.compared.push(Comparison {
                bench: (*name).to_string(),
                baseline_mean_ns: b.mean_ns,
                current_mean_ns: c.mean_ns,
                ratio: c.mean_ns as f64 / (b.mean_ns as f64).max(1.0),
            }),
            None => diff.only_in_baseline.push((*name).to_string()),
        }
    }
    for name in cur.keys() {
        if !base.contains_key(name) {
            diff.only_in_current.push((*name).to_string());
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{"bench":"group/fast","samples":2,"min_ns":100,"mean_ns":120}
{"bench":"group/slow","samples":2,"min_ns":2000,"mean_ns":2400}
not json at all
{"bench":"group/slow","samples":3,"min_ns":1900,"mean_ns":2000}
"#;

    #[test]
    fn parses_lines_last_wins_and_skips_garbage() {
        let records = parse_report(REPORT);
        assert_eq!(records.len(), 2);
        let slow = records.iter().find(|r| r.bench == "group/slow").unwrap();
        assert_eq!(slow.samples, 3);
        assert_eq!(slow.min_ns, 1900);
        assert_eq!(slow.mean_ns, 2000);
    }

    #[test]
    fn parses_escaped_names() {
        let line = r#"{"bench":"odd \"name\"","samples":1,"min_ns":5,"mean_ns":6}"#;
        let record = parse_line(line).unwrap();
        assert_eq!(record.bench, "odd \"name\"");
    }

    #[test]
    fn diff_classifies_regressions_additions_and_removals() {
        let baseline = parse_report(
            r#"{"bench":"a","samples":2,"min_ns":100,"mean_ns":100}
{"bench":"b","samples":2,"min_ns":100,"mean_ns":100}
{"bench":"gone","samples":2,"min_ns":1,"mean_ns":1}"#,
        );
        let current = parse_report(
            r#"{"bench":"a","samples":2,"min_ns":90,"mean_ns":110}
{"bench":"b","samples":2,"min_ns":100,"mean_ns":200}
{"bench":"new","samples":2,"min_ns":1,"mean_ns":1}"#,
        );
        let diff = diff_reports(&baseline, &current);
        assert_eq!(diff.compared.len(), 2);
        assert_eq!(diff.only_in_baseline, vec!["gone".to_string()]);
        assert_eq!(diff.only_in_current, vec!["new".to_string()]);
        // +10% is within the noise allowance, +100% is a regression.
        let regressions = diff.regressions();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].bench, "b");
        assert!((regressions[0].ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn report_names_missing_and_new_benchmarks_explicitly() {
        let baseline = parse_report(
            r#"{"bench":"kept","samples":2,"min_ns":100,"mean_ns":100}
{"bench":"renamed_away","samples":2,"min_ns":1,"mean_ns":1}"#,
        );
        let current = parse_report(
            r#"{"bench":"kept","samples":2,"min_ns":90,"mean_ns":300}
{"bench":"renamed_to","samples":2,"min_ns":1,"mean_ns":1}"#,
        );
        let diff = diff_reports(&baseline, &current);
        let report = diff.format_report("BENCH_baseline.json");
        // A renamed benchmark must show up on BOTH sides of the report, not vanish.
        assert!(
            report.contains("renamed_away"),
            "missing bench not named:\n{report}"
        );
        assert!(report.contains("(in baseline but NOT in this run)"));
        assert!(report.contains("renamed_to"));
        assert!(report.contains("(new benchmark, no baseline)"));
        assert!(report.contains("2 compared") || report.contains("1 compared"));
        assert!(report.contains("<-- regression"));

        let warnings = diff.warning_annotations();
        assert_eq!(warnings.len(), 2, "one regression + one coverage warning");
        assert!(warnings[0].contains("bench regression"));
        assert!(warnings[0].contains("kept"));
        assert!(warnings[1].contains("bench coverage"));
        assert!(warnings[1].contains("renamed_away"));

        // A complete run emits no coverage warning.
        let clean = diff_reports(&baseline, &baseline);
        assert!(clean.warning_annotations().is_empty());
        assert!(!clean.format_report("b").contains("NOT in this run"));
    }

    #[test]
    fn zero_baseline_mean_does_not_divide_by_zero() {
        let baseline = parse_report(r#"{"bench":"a","samples":1,"min_ns":0,"mean_ns":0}"#);
        let current = parse_report(r#"{"bench":"a","samples":1,"min_ns":5,"mean_ns":5}"#);
        let diff = diff_reports(&baseline, &current);
        assert!(diff.compared[0].ratio.is_finite());
    }
}
