//! Parsing and comparison of the `BENCH_*.json` perf-trajectory artifacts.
//!
//! The vendored criterion shim appends one JSON line per finished benchmark
//! (`{"bench": …, "samples": …, "min_ns": …, "mean_ns": …}`) to the file named by
//! `SKYLINE_BENCH_JSON`. CI uploads one such report per commit and diffs it against the
//! checked-in `BENCH_baseline.json` with the `bench_diff` binary running as a **hard gate**
//! (`--gate`): an un-allowlisted mean regression beyond the threshold fails the job. Three
//! escape hatches keep the gate honest instead of flaky:
//!
//! * a **duration floor** ([`Gate::floor_ns`]) — benchmarks whose *baseline* mean is under
//!   ~1 ms are warn-only, because at the smoke job's two-sample budget their variance is
//!   dominated by scheduler noise, not code;
//! * an **allowlist file** (`BENCH_allowlist.txt`, parsed by [`parse_allowlist`]) — a bare
//!   benchmark name waives it entirely (an intentional, explained regression), a name plus
//!   ratio sets a per-benchmark threshold that replaces the default for known-noisy entries;
//! * baseline benchmarks **missing** from the current run fail the gate too (unless
//!   allowlisted), so a regression cannot hide by renaming or deleting its benchmark.
//!
//! No `serde` in this workspace (offline vendored dependencies only), so the single line
//! shape the shim emits is parsed by hand.

use std::collections::BTreeMap;

/// Default mean-time ratio (current / baseline) above which a benchmark counts as regressed.
pub const REGRESSION_RATIO: f64 = 1.25;

/// Default [`Gate::floor_ns`]: baseline means under 1 ms gate warn-only.
pub const GATE_FLOOR_NS: u128 = 1_000_000;

/// One benchmark measurement from a perf report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Fully qualified benchmark label (`group/function`).
    pub bench: String,
    /// Number of timed samples.
    pub samples: u64,
    /// Fastest sample in nanoseconds.
    pub min_ns: u128,
    /// Mean sample in nanoseconds.
    pub mean_ns: u128,
}

/// Parses a JSON-lines perf report. Unparseable lines are skipped (the report is advisory);
/// when a benchmark appears more than once the last line wins.
pub fn parse_report(text: &str) -> Vec<BenchRecord> {
    let mut by_name: BTreeMap<String, BenchRecord> = BTreeMap::new();
    for line in text.lines() {
        if let Some(record) = parse_line(line.trim()) {
            by_name.insert(record.bench.clone(), record);
        }
    }
    by_name.into_values().collect()
}

/// Parses one `{"bench":"…","samples":N,"min_ns":N,"mean_ns":N}` line.
fn parse_line(line: &str) -> Option<BenchRecord> {
    if !line.starts_with('{') {
        return None;
    }
    let bench = string_field(line, "bench")?;
    Some(BenchRecord {
        bench,
        samples: number_field(line, "samples")? as u64,
        min_ns: number_field(line, "min_ns")?,
        mean_ns: number_field(line, "mean_ns")?,
    })
}

/// Extracts a JSON string field, handling the `{:?}`-style escapes the shim emits.
fn string_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
}

/// Extracts an unsigned JSON number field.
fn number_field(line: &str, key: &str) -> Option<u128> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// The verdict for one benchmark present in both reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Benchmark label.
    pub bench: String,
    /// Baseline mean in nanoseconds.
    pub baseline_mean_ns: u128,
    /// Current mean in nanoseconds.
    pub current_mean_ns: u128,
    /// `current / baseline` mean ratio (`> 1` is slower than baseline).
    pub ratio: f64,
}

impl Comparison {
    /// True when the current mean exceeds the baseline by more than [`REGRESSION_RATIO`].
    pub fn is_regression(&self) -> bool {
        self.ratio > REGRESSION_RATIO
    }
}

/// Result of diffing a current report against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diff {
    /// Benchmarks present in both reports, in name order.
    pub compared: Vec<Comparison>,
    /// Benchmarks only in the baseline (removed or not run).
    pub only_in_baseline: Vec<String>,
    /// Benchmarks only in the current report (newly added).
    pub only_in_current: Vec<String>,
}

impl Diff {
    /// The regressed subset of [`Diff::compared`].
    pub fn regressions(&self) -> Vec<&Comparison> {
        self.compared.iter().filter(|c| c.is_regression()).collect()
    }

    /// Renders the whole diff as the human-readable report `bench_diff` prints: the comparison
    /// table, then — explicitly, so a renamed or deleted benchmark can never silently vanish
    /// from the regression report — one line per benchmark that is new in the current run and
    /// one per benchmark present in the baseline but missing from it.
    pub fn format_report(&self, baseline_label: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf diff vs {baseline_label}: {} compared, {} new, {} missing (warn threshold: \
             >{:.0}% slower mean)",
            self.compared.len(),
            self.only_in_current.len(),
            self.only_in_baseline.len(),
            (REGRESSION_RATIO - 1.0) * 100.0
        );
        let _ = writeln!(
            out,
            "{:<55} {:>14} {:>14} {:>8}",
            "benchmark", "baseline mean", "current mean", "ratio"
        );
        for c in &self.compared {
            let flag = if c.is_regression() {
                "  <-- regression"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{:<55} {:>12}ns {:>12}ns {:>7.2}x{flag}",
                c.bench, c.baseline_mean_ns, c.current_mean_ns, c.ratio
            );
        }
        for name in &self.only_in_current {
            let _ = writeln!(out, "{name:<55} (new benchmark, no baseline)");
        }
        for name in &self.only_in_baseline {
            let _ = writeln!(out, "{name:<55} (in baseline but NOT in this run)");
        }
        out
    }

    /// GitHub Actions `::warning::` annotation lines for this diff: one per regression, plus
    /// a coverage warning naming every baseline benchmark the current run is missing.
    pub fn warning_annotations(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .regressions()
            .iter()
            .map(|c| {
                format!(
                    "::warning title=bench regression::{} mean {:.0}% over baseline \
                     ({}ns -> {}ns); noisy-runner variance is expected — investigate only if \
                     it persists",
                    c.bench,
                    (c.ratio - 1.0) * 100.0,
                    c.baseline_mean_ns,
                    c.current_mean_ns
                )
            })
            .collect();
        if !self.only_in_baseline.is_empty() {
            out.push(format!(
                "::warning title=bench coverage::{} baseline benchmark(s) missing from this \
                 run: {}",
                self.only_in_baseline.len(),
                self.only_in_baseline.join(", ")
            ));
        }
        out
    }
}

/// Allowlist for the hard gate, keyed by benchmark name. `None` waives the benchmark
/// outright (an intentional regression); `Some(ratio)` replaces the default threshold for
/// that benchmark only (a known-noisy entry that needs more headroom).
pub type Allowlist = BTreeMap<String, Option<f64>>;

/// Parses a `BENCH_allowlist.txt` file. One entry per line:
///
/// ```text
/// group/bench-name              # waived outright: any slowdown is accepted
/// group/noisy-bench  1.60       # per-bench threshold: fails only beyond 1.60x
/// ```
///
/// `#` starts a comment, blank lines are skipped. Unlike the advisory perf reports, a
/// malformed allowlist line is a hard error — a typo here would silently re-arm (or
/// silently waive) a gate, which is exactly what the file exists to make explicit.
pub fn parse_allowlist(text: &str) -> Result<Allowlist, String> {
    let mut out = Allowlist::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let bench = fields.next().expect("non-empty line has a first token");
        let ratio = match fields.next() {
            None => None,
            Some(token) => match token.parse::<f64>() {
                Ok(r) if r >= 1.0 => Some(r),
                Ok(r) => {
                    return Err(format!(
                        "allowlist line {}: ratio {r} for {bench} must be >= 1.0",
                        idx + 1
                    ))
                }
                Err(_) => {
                    return Err(format!(
                        "allowlist line {}: cannot parse ratio {token:?} for {bench}",
                        idx + 1
                    ))
                }
            },
        };
        if fields.next().is_some() {
            return Err(format!(
                "allowlist line {}: expected `<bench> [max-ratio]`, got extra fields in {line:?}",
                idx + 1
            ));
        }
        if out.insert(bench.to_string(), ratio).is_some() {
            return Err(format!(
                "allowlist line {}: duplicate entry for {bench}",
                idx + 1
            ));
        }
    }
    Ok(out)
}

/// Policy for the hard regression gate.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// Threshold for benchmarks without a per-bench allowlist ratio.
    pub default_ratio: f64,
    /// Baseline means below this floor gate warn-only: at the smoke job's two-sample
    /// budget, sub-millisecond benchmarks measure scheduler noise, not code. The floor
    /// applies even to benchmarks carrying a per-bench allowlist ratio.
    pub floor_ns: u128,
    /// Per-benchmark waivers and threshold overrides.
    pub allowlist: Allowlist,
}

impl Default for Gate {
    fn default() -> Self {
        Gate {
            default_ratio: REGRESSION_RATIO,
            floor_ns: GATE_FLOOR_NS,
            allowlist: Allowlist::new(),
        }
    }
}

/// One gate verdict worth surfacing. Only [`GateFinding::is_failure`] variants fail the
/// build; the rest become `::warning::` annotations so waived or floored slowdowns stay
/// visible in the job log.
#[derive(Debug, Clone, PartialEq)]
pub enum GateFinding {
    /// Hard failure: over the effective threshold, above the floor, not waived.
    Regression {
        /// Benchmark label.
        bench: String,
        /// `current / baseline` mean ratio.
        ratio: f64,
        /// The threshold it exceeded (default or per-bench).
        limit: f64,
        /// Baseline mean in nanoseconds.
        baseline_mean_ns: u128,
        /// Current mean in nanoseconds.
        current_mean_ns: u128,
    },
    /// Hard failure: in the baseline, absent from this run, not allowlisted. Without this a
    /// regression could pass the gate by renaming or deleting its benchmark.
    Missing {
        /// Benchmark label.
        bench: String,
    },
    /// Warn-only: over the threshold, but the baseline mean sits under [`Gate::floor_ns`].
    BelowFloor {
        /// Benchmark label.
        bench: String,
        /// `current / baseline` mean ratio.
        ratio: f64,
    },
    /// Warn-only: over the default threshold, but waived by a bare allowlist entry.
    Waived {
        /// Benchmark label.
        bench: String,
        /// `current / baseline` mean ratio.
        ratio: f64,
    },
}

impl GateFinding {
    /// True for the variants that fail the build.
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            GateFinding::Regression { .. } | GateFinding::Missing { .. }
        )
    }

    /// The GitHub Actions annotation line for this finding: `::error::` for failures,
    /// `::warning::` for waived or floored slowdowns.
    pub fn annotation(&self) -> String {
        match self {
            GateFinding::Regression {
                bench,
                ratio,
                limit,
                baseline_mean_ns,
                current_mean_ns,
            } => format!(
                "::error title=bench regression::{bench} mean {:.0}% over baseline \
                 ({baseline_mean_ns}ns -> {current_mean_ns}ns, limit {limit:.2}x); add to \
                 BENCH_allowlist.txt with a justification if intentional",
                (ratio - 1.0) * 100.0
            ),
            GateFinding::Missing { bench } => format!(
                "::error title=bench coverage::{bench} is in the baseline but missing from \
                 this run; update BENCH_baseline.json (or allowlist it) when renaming or \
                 removing a benchmark"
            ),
            GateFinding::BelowFloor { bench, ratio } => format!(
                "::warning title=bench regression (sub-floor)::{bench} mean {:.0}% over \
                 baseline, under the duration floor — smoke-sample variance, warn-only",
                (ratio - 1.0) * 100.0
            ),
            GateFinding::Waived { bench, ratio } => format!(
                "::warning title=bench regression (waived)::{bench} mean {:.0}% over \
                 baseline, waived by BENCH_allowlist.txt",
                (ratio - 1.0) * 100.0
            ),
        }
    }
}

impl Gate {
    /// Evaluates the gate over a diff. Returns every finding worth surfacing, failures
    /// first within name order of the underlying diff.
    pub fn evaluate(&self, diff: &Diff) -> Vec<GateFinding> {
        let mut findings = Vec::new();
        for c in &diff.compared {
            match self.allowlist.get(&c.bench) {
                Some(None) => {
                    // Bare entry: waived outright, but keep it visible while it regresses.
                    if c.ratio > self.default_ratio {
                        findings.push(GateFinding::Waived {
                            bench: c.bench.clone(),
                            ratio: c.ratio,
                        });
                    }
                }
                entry => {
                    let limit = entry.and_then(|r| *r).unwrap_or(self.default_ratio);
                    if c.ratio <= limit {
                        continue;
                    }
                    if c.baseline_mean_ns < self.floor_ns {
                        findings.push(GateFinding::BelowFloor {
                            bench: c.bench.clone(),
                            ratio: c.ratio,
                        });
                    } else {
                        findings.push(GateFinding::Regression {
                            bench: c.bench.clone(),
                            ratio: c.ratio,
                            limit,
                            baseline_mean_ns: c.baseline_mean_ns,
                            current_mean_ns: c.current_mean_ns,
                        });
                    }
                }
            }
        }
        for bench in &diff.only_in_baseline {
            if !self.allowlist.contains_key(bench) {
                findings.push(GateFinding::Missing {
                    bench: bench.clone(),
                });
            }
        }
        findings.sort_by_key(|f| !f.is_failure());
        findings
    }
}

/// Diffs two parsed reports by benchmark name.
pub fn diff_reports(baseline: &[BenchRecord], current: &[BenchRecord]) -> Diff {
    let base: BTreeMap<&str, &BenchRecord> =
        baseline.iter().map(|r| (r.bench.as_str(), r)).collect();
    let cur: BTreeMap<&str, &BenchRecord> = current.iter().map(|r| (r.bench.as_str(), r)).collect();
    let mut diff = Diff::default();
    for (name, b) in &base {
        match cur.get(name) {
            Some(c) => diff.compared.push(Comparison {
                bench: (*name).to_string(),
                baseline_mean_ns: b.mean_ns,
                current_mean_ns: c.mean_ns,
                ratio: c.mean_ns as f64 / (b.mean_ns as f64).max(1.0),
            }),
            None => diff.only_in_baseline.push((*name).to_string()),
        }
    }
    for name in cur.keys() {
        if !base.contains_key(name) {
            diff.only_in_current.push((*name).to_string());
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{"bench":"group/fast","samples":2,"min_ns":100,"mean_ns":120}
{"bench":"group/slow","samples":2,"min_ns":2000,"mean_ns":2400}
not json at all
{"bench":"group/slow","samples":3,"min_ns":1900,"mean_ns":2000}
"#;

    #[test]
    fn parses_lines_last_wins_and_skips_garbage() {
        let records = parse_report(REPORT);
        assert_eq!(records.len(), 2);
        let slow = records.iter().find(|r| r.bench == "group/slow").unwrap();
        assert_eq!(slow.samples, 3);
        assert_eq!(slow.min_ns, 1900);
        assert_eq!(slow.mean_ns, 2000);
    }

    #[test]
    fn parses_escaped_names() {
        let line = r#"{"bench":"odd \"name\"","samples":1,"min_ns":5,"mean_ns":6}"#;
        let record = parse_line(line).unwrap();
        assert_eq!(record.bench, "odd \"name\"");
    }

    #[test]
    fn diff_classifies_regressions_additions_and_removals() {
        let baseline = parse_report(
            r#"{"bench":"a","samples":2,"min_ns":100,"mean_ns":100}
{"bench":"b","samples":2,"min_ns":100,"mean_ns":100}
{"bench":"gone","samples":2,"min_ns":1,"mean_ns":1}"#,
        );
        let current = parse_report(
            r#"{"bench":"a","samples":2,"min_ns":90,"mean_ns":110}
{"bench":"b","samples":2,"min_ns":100,"mean_ns":200}
{"bench":"new","samples":2,"min_ns":1,"mean_ns":1}"#,
        );
        let diff = diff_reports(&baseline, &current);
        assert_eq!(diff.compared.len(), 2);
        assert_eq!(diff.only_in_baseline, vec!["gone".to_string()]);
        assert_eq!(diff.only_in_current, vec!["new".to_string()]);
        // +10% is within the noise allowance, +100% is a regression.
        let regressions = diff.regressions();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].bench, "b");
        assert!((regressions[0].ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn report_names_missing_and_new_benchmarks_explicitly() {
        let baseline = parse_report(
            r#"{"bench":"kept","samples":2,"min_ns":100,"mean_ns":100}
{"bench":"renamed_away","samples":2,"min_ns":1,"mean_ns":1}"#,
        );
        let current = parse_report(
            r#"{"bench":"kept","samples":2,"min_ns":90,"mean_ns":300}
{"bench":"renamed_to","samples":2,"min_ns":1,"mean_ns":1}"#,
        );
        let diff = diff_reports(&baseline, &current);
        let report = diff.format_report("BENCH_baseline.json");
        // A renamed benchmark must show up on BOTH sides of the report, not vanish.
        assert!(
            report.contains("renamed_away"),
            "missing bench not named:\n{report}"
        );
        assert!(report.contains("(in baseline but NOT in this run)"));
        assert!(report.contains("renamed_to"));
        assert!(report.contains("(new benchmark, no baseline)"));
        assert!(report.contains("2 compared") || report.contains("1 compared"));
        assert!(report.contains("<-- regression"));

        let warnings = diff.warning_annotations();
        assert_eq!(warnings.len(), 2, "one regression + one coverage warning");
        assert!(warnings[0].contains("bench regression"));
        assert!(warnings[0].contains("kept"));
        assert!(warnings[1].contains("bench coverage"));
        assert!(warnings[1].contains("renamed_away"));

        // A complete run emits no coverage warning.
        let clean = diff_reports(&baseline, &baseline);
        assert!(clean.warning_annotations().is_empty());
        assert!(!clean.format_report("b").contains("NOT in this run"));
    }

    #[test]
    fn allowlist_parses_waivers_thresholds_and_comments() {
        let allow = parse_allowlist(
            "# perf waivers\n\
             \n\
             group/waived                 # slower on purpose since the rework\n\
             group/noisy  1.60            # tiny kernel, needs headroom\n",
        )
        .unwrap();
        assert_eq!(allow.len(), 2);
        assert_eq!(allow["group/waived"], None);
        assert_eq!(allow["group/noisy"], Some(1.6));

        // Malformed lines are hard errors, not silently ignored entries.
        assert!(parse_allowlist("group/a not-a-number").is_err());
        assert!(parse_allowlist("group/a 0.5").is_err(), "ratio below 1.0");
        assert!(parse_allowlist("group/a 1.5 extra").is_err());
        assert!(
            parse_allowlist("group/a\ngroup/a 1.5").is_err(),
            "duplicate"
        );
        assert!(parse_allowlist("# only comments\n\n").unwrap().is_empty());
    }

    #[test]
    fn gate_fails_unallowlisted_regressions_and_missing_benches() {
        let baseline = parse_report(
            r#"{"bench":"big/regressed","samples":5,"min_ns":2000000,"mean_ns":2000000}
{"bench":"big/steady","samples":5,"min_ns":2000000,"mean_ns":2000000}
{"bench":"big/waived","samples":5,"min_ns":2000000,"mean_ns":2000000}
{"bench":"big/noisy","samples":5,"min_ns":2000000,"mean_ns":2000000}
{"bench":"tiny/jittery","samples":5,"min_ns":500,"mean_ns":500}
{"bench":"gone/deleted","samples":5,"min_ns":2000000,"mean_ns":2000000}
{"bench":"gone/renamed","samples":5,"min_ns":2000000,"mean_ns":2000000}"#,
        );
        let current = parse_report(
            r#"{"bench":"big/regressed","samples":5,"min_ns":3000000,"mean_ns":3000000}
{"bench":"big/steady","samples":5,"min_ns":2100000,"mean_ns":2100000}
{"bench":"big/waived","samples":5,"min_ns":9000000,"mean_ns":9000000}
{"bench":"big/noisy","samples":5,"min_ns":3000000,"mean_ns":3000000}
{"bench":"tiny/jittery","samples":5,"min_ns":2000,"mean_ns":2000}"#,
        );
        let gate = Gate {
            allowlist: parse_allowlist(
                "big/waived          # intentional: correctness fix\n\
                 big/noisy   1.60    # known-noisy, wider band\n\
                 gone/renamed        # renamed in this PR",
            )
            .unwrap(),
            ..Gate::default()
        };
        let findings = gate.evaluate(&diff_reports(&baseline, &current));

        let failures: Vec<&GateFinding> = findings.iter().filter(|f| f.is_failure()).collect();
        assert_eq!(failures.len(), 2, "findings: {findings:?}");
        // +50% un-allowlisted on a >1ms bench fails; the deleted bench fails coverage.
        assert!(matches!(
            failures[0],
            GateFinding::Regression { bench, ratio, .. }
                if bench == "big/regressed" && (*ratio - 1.5).abs() < 1e-9
        ));
        assert!(matches!(
            failures[1],
            GateFinding::Missing { bench } if bench == "gone/deleted"
        ));

        // +5% on a steady bench is inside the default band: no finding at all.
        assert!(findings
            .iter()
            .all(|f| !f.annotation().contains("big/steady")));
        // The waiver and the 4x sub-floor jitter surface as warnings, not failures.
        assert!(findings.iter().any(|f| matches!(
            f,
            GateFinding::Waived { bench, .. } if bench == "big/waived"
        )));
        assert!(findings.iter().any(|f| matches!(
            f,
            GateFinding::BelowFloor { bench, .. } if bench == "tiny/jittery"
        )));
        // +50% on the per-bench 1.60x band stays green entirely.
        assert!(findings
            .iter()
            .all(|f| !f.annotation().contains("big/noisy")));

        let annotations: Vec<String> = findings.iter().map(GateFinding::annotation).collect();
        assert!(annotations[0].starts_with("::error title=bench regression::"));
        assert!(annotations[1].starts_with("::error title=bench coverage::"));
        assert!(annotations[2..].iter().all(|a| a.starts_with("::warning")));
    }

    #[test]
    fn gate_passes_clean_and_respects_per_bench_limit() {
        let baseline =
            parse_report(r#"{"bench":"big/noisy","samples":5,"min_ns":2000000,"mean_ns":2000000}"#);
        let current =
            parse_report(r#"{"bench":"big/noisy","samples":5,"min_ns":3400000,"mean_ns":3400000}"#);
        let diff = diff_reports(&baseline, &current);
        // Identical runs: nothing to report at all.
        assert!(Gate::default()
            .evaluate(&diff_reports(&baseline, &baseline))
            .is_empty());
        // 1.7x trips the default gate but also the widened per-bench one.
        assert_eq!(
            Gate::default()
                .evaluate(&diff)
                .iter()
                .filter(|f| f.is_failure())
                .count(),
            1
        );
        let widened = Gate {
            allowlist: parse_allowlist("big/noisy 1.80").unwrap(),
            ..Gate::default()
        };
        assert!(widened.evaluate(&diff).is_empty());
    }

    #[test]
    fn zero_baseline_mean_does_not_divide_by_zero() {
        let baseline = parse_report(r#"{"bench":"a","samples":1,"min_ns":0,"mean_ns":0}"#);
        let current = parse_report(r#"{"bench":"a","samples":1,"min_ns":5,"mean_ns":5}"#);
        let diff = diff_reports(&baseline, &current);
        assert!(diff.compared[0].ratio.is_finite());
    }
}
