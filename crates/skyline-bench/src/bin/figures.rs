//! Regenerates the paper's evaluation figures (Section 5).
//!
//! ```text
//! cargo run -p skyline-bench --release --bin figures -- all
//! cargo run -p skyline-bench --release --bin figures -- fig4 fig7 --queries 50
//! cargo run -p skyline-bench --release --bin figures -- fig4 --paper-scale   # 250K–1M tuples
//! cargo run -p skyline-bench --release --bin figures -- fig6 --csv out.csv
//! ```
//!
//! By default every sweep runs at a laptop-friendly scale (the shapes — who wins, how the
//! curves grow — are what the reproduction tracks; see EXPERIMENTS.md). `--paper-scale`
//! switches to the exact Table 4 parameters (500 K tuples and the original sweep ranges),
//! which takes hours, exactly as the paper's own preprocessing-time plots indicate.

use skyline::datagen::ExperimentConfig;
use skyline_bench::{
    print_cells, print_figure_header, run_nursery_cell, run_synthetic_cell, CellResult,
};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Options {
    figures: Vec<String>,
    queries: usize,
    paper_scale: bool,
    csv_path: Option<String>,
}

fn parse_args() -> Options {
    let mut figures = Vec::new();
    let mut queries = 0usize;
    let mut paper_scale = false;
    let mut csv_path = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--queries" => {
                queries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--queries needs a number"));
            }
            "--paper-scale" => paper_scale = true,
            "--csv" => csv_path = Some(args.next().unwrap_or_else(|| usage("--csv needs a path"))),
            "--help" | "-h" => usage(""),
            name if name.starts_with("fig")
                || name == "all"
                || name == "hybrid"
                || name == "table4" =>
            {
                figures.push(name.to_string());
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    if figures.is_empty() || figures.iter().any(|f| f == "all") {
        figures = vec!["table4", "fig4", "fig5", "fig6", "fig7", "fig8", "hybrid"]
            .into_iter()
            .map(String::from)
            .collect();
    }
    if queries == 0 {
        queries = if paper_scale { 100 } else { 20 };
    }
    Options {
        figures,
        queries,
        paper_scale,
        csv_path,
    }
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: figures [table4|fig4|fig5|fig6|fig7|fig8|hybrid|all]... [--queries N] [--paper-scale] [--csv PATH]"
    );
    std::process::exit(if error.is_empty() { 0 } else { 2 });
}

fn base_config(paper_scale: bool) -> ExperimentConfig {
    if paper_scale {
        ExperimentConfig::paper_default()
    } else {
        // Scaled-down defaults: same shape as Table 4, laptop-sized N.
        ExperimentConfig {
            n: 8_000,
            ..ExperimentConfig::paper_default()
        }
    }
}

fn main() {
    let options = parse_args();
    let mut csv = String::new();
    for figure in &options.figures {
        let (x_axis, cells) = match figure.as_str() {
            "table4" => {
                print_table4(&base_config(options.paper_scale));
                continue;
            }
            "fig4" => run_fig4(&options),
            "fig5" => run_fig5(&options),
            "fig6" => run_fig6(&options),
            "fig7" => run_fig7(&options),
            "fig8" => run_fig8(&options),
            "hybrid" => {
                run_hybrid(&options);
                continue;
            }
            other => {
                eprintln!("skipping unknown figure `{other}`");
                continue;
            }
        };
        print_cells(&x_axis, &cells);
        csv.push_str(&skyline_bench::report::to_csv(&x_axis, &cells));
    }
    if let Some(path) = &options.csv_path {
        std::fs::write(path, csv).expect("write CSV output");
        println!("CSV written to {path}");
    }
}

fn print_table4(config: &ExperimentConfig) {
    println!("==== Table 4 — default experimental parameters ====");
    let rows: BTreeMap<&str, String> = BTreeMap::from([
        ("No. of tuples", config.n.to_string()),
        ("No. of numeric dimensions", config.numeric_dims.to_string()),
        ("No. of nominal dimensions", config.nominal_dims.to_string()),
        (
            "No. of values in a nominal dimension",
            config.cardinality.to_string(),
        ),
        ("Zipfian parameter theta", format!("{}", config.theta)),
        (
            "Order of implicit preference",
            config.pref_order.to_string(),
        ),
        ("Distribution", config.distribution.name().to_string()),
    ]);
    for (k, v) in rows {
        println!("  {k:<40} {v}");
    }
}

fn run_fig4(options: &Options) -> (String, Vec<CellResult>) {
    print_figure_header(
        "Figure 4",
        "No. of points (in thousands)",
        "scalability with respect to database size",
    );
    let base = base_config(options.paper_scale);
    let sizes: Vec<usize> = if options.paper_scale {
        vec![250_000, 500_000, 750_000, 1_000_000]
    } else {
        vec![base.n / 2, base.n, base.n * 3 / 2, base.n * 2]
    };
    let cells = sizes
        .into_iter()
        .map(|n| {
            let config = ExperimentConfig { n, ..base.clone() };
            run_synthetic_cell(&config, options.queries, format!("{}", n / 1000))
        })
        .collect();
    ("points(K)".to_string(), cells)
}

fn run_fig5(options: &Options) -> (String, Vec<CellResult>) {
    print_figure_header(
        "Figure 5",
        "No. of dimensions (3 numeric + 1..4 nominal)",
        "scalability with respect to dimensionality",
    );
    let base = base_config(options.paper_scale);
    // The full IPO tree has O(c^{m'}) nodes, so the 4-nominal-dimension cell is by far the
    // heaviest experiment of the paper (its Figure 5(a) tops out near 10^6 seconds). At the
    // scaled default we therefore also scale the cardinality and N down for this sweep;
    // `--paper-scale` keeps the original Table 4 values.
    let (n, cardinality) = if options.paper_scale {
        (base.n, base.cardinality)
    } else {
        (base.n / 2, 10)
    };
    let cells = (1..=4usize)
        .map(|nominal| {
            let config = ExperimentConfig {
                n,
                cardinality,
                nominal_dims: nominal,
                ..base.clone()
            };
            run_synthetic_cell(&config, options.queries, format!("{}", config.total_dims()))
        })
        .collect();
    ("dims".to_string(), cells)
}

fn run_fig6(options: &Options) -> (String, Vec<CellResult>) {
    print_figure_header(
        "Figure 6",
        "cardinality of nominal attribute",
        "effect of nominal cardinality",
    );
    let base = base_config(options.paper_scale);
    let cardinalities: Vec<usize> = if options.paper_scale {
        vec![10, 15, 20, 25, 30, 35, 40]
    } else {
        vec![10, 20, 30, 40]
    };
    let cells = cardinalities
        .into_iter()
        .map(|cardinality| {
            let config = ExperimentConfig {
                cardinality,
                ..base.clone()
            };
            run_synthetic_cell(&config, options.queries, cardinality.to_string())
        })
        .collect();
    ("cardinality".to_string(), cells)
}

fn run_fig7(options: &Options) -> (String, Vec<CellResult>) {
    print_figure_header(
        "Figure 7",
        "order of implicit preference",
        "effect of preference order",
    );
    let base = base_config(options.paper_scale);
    let cells = (1..=4usize)
        .map(|order| {
            let config = ExperimentConfig {
                pref_order: order,
                ..base.clone()
            };
            run_synthetic_cell(&config, options.queries, order.to_string())
        })
        .collect();
    ("order".to_string(), cells)
}

fn run_fig8(options: &Options) -> (String, Vec<CellResult>) {
    print_figure_header(
        "Figure 8",
        "order of implicit preference",
        "real data set (UCI Nursery)",
    );
    let cells = (0..=3usize)
        .map(|order| run_nursery_cell(order, options.queries))
        .collect();
    ("order".to_string(), cells)
}

/// The §5.3 observation: a hybrid of IPO Tree (popular values) and SFS-A (everything else).
fn run_hybrid(options: &Options) {
    use skyline::prelude::*;
    use std::time::Instant;

    print_figure_header(
        "Section 5.3",
        "strategy",
        "hybrid IPO-tree + Adaptive-SFS evaluation",
    );
    let config = ExperimentConfig {
        cardinality: 20,
        ..base_config(options.paper_scale)
    };
    let data = config.generate_dataset();
    let template = config.template(&data);
    let mut generator = config.query_generator();
    let queries = generator.random_preferences(
        data.schema(),
        &template,
        config.pref_order,
        options.queries.max(20),
        None,
    );
    // Wrap once outside the timed sections: each engine below clones the Arc, not the data.
    let data = std::sync::Arc::new(data);

    for (name, engine_config) in [
        (
            "Hybrid (IPO-10 + SFS-A)",
            EngineConfig::Hybrid { top_k: 10 },
        ),
        ("IPO Tree (full)", EngineConfig::IpoTree),
        ("SFS-A", EngineConfig::AdaptiveSfs),
    ] {
        let build_start = Instant::now();
        let engine = SkylineEngine::build(data.clone(), template.clone(), engine_config)
            .expect("engine builds");
        let build_s = build_start.elapsed().as_secs_f64();
        let mut tree_answers = 0usize;
        let query_start = Instant::now();
        for query in &queries {
            let outcome = engine.query(query).expect("query succeeds");
            if outcome.method == MethodUsed::IpoTree {
                tree_answers += 1;
            }
        }
        let per_query = query_start.elapsed().as_secs_f64() / queries.len() as f64;
        println!(
            "  {name:<26} preprocess {build_s:>9.3} s   avg query {per_query:>10.6} s   answered by tree: {tree_answers}/{}",
            queries.len()
        );
    }
    println!(
        "  (Distribution {} with theta={} — popular values cover most random preferences.)",
        config.distribution.name(),
        config.theta
    );
}
