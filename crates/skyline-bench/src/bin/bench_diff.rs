//! Diffs a freshly produced `BENCH_<sha>.json` perf report against the checked-in
//! `BENCH_baseline.json` and prints warnings — never failures — for regressions.
//!
//! ```text
//! cargo run -p skyline-bench --bin bench_diff -- BENCH_baseline.json BENCH_abc123.json
//! ```
//!
//! Exit code is non-zero only when a report file cannot be read or parsed at all; timing
//! regressions emit GitHub `::warning::` annotations (visible on the job summary) and exit 0,
//! because shared CI runners are far too noisy for hard perf gates.

use skyline_bench::perf::{diff_reports, parse_report, BenchRecord, REGRESSION_RATIO};
use std::process::ExitCode;

fn load(path: &str) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let records = parse_report(&text);
    if records.is_empty() {
        return Err(format!("{path} contains no parseable benchmark lines"));
    }
    Ok(records)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: bench_diff <baseline.json> <current.json>");
        return ExitCode::FAILURE;
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_diff: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let diff = diff_reports(&baseline, &current);
    println!(
        "perf diff vs {baseline_path}: {} compared, {} new, {} missing (warn threshold: \
         >{:.0}% slower mean)",
        diff.compared.len(),
        diff.only_in_current.len(),
        diff.only_in_baseline.len(),
        (REGRESSION_RATIO - 1.0) * 100.0
    );
    println!(
        "{:<55} {:>14} {:>14} {:>8}",
        "benchmark", "baseline mean", "current mean", "ratio"
    );
    for c in &diff.compared {
        let flag = if c.is_regression() {
            "  <-- regression"
        } else {
            ""
        };
        println!(
            "{:<55} {:>12}ns {:>12}ns {:>7.2}x{flag}",
            c.bench, c.baseline_mean_ns, c.current_mean_ns, c.ratio
        );
    }
    for name in &diff.only_in_current {
        println!("{name:<55} (new benchmark, no baseline)");
    }
    for name in &diff.only_in_baseline {
        println!("{name:<55} (in baseline but not in this run)");
    }

    for c in diff.regressions() {
        // GitHub Actions annotation; shows up on the workflow summary but does not fail it.
        println!(
            "::warning title=bench regression::{} mean {:.0}% over baseline ({}ns -> {}ns); \
             noisy-runner variance is expected — investigate only if it persists",
            c.bench,
            (c.ratio - 1.0) * 100.0,
            c.baseline_mean_ns,
            c.current_mean_ns
        );
    }
    if !diff.only_in_baseline.is_empty() {
        println!(
            "::warning title=bench coverage::{} baseline benchmark(s) missing from this run: {}",
            diff.only_in_baseline.len(),
            diff.only_in_baseline.join(", ")
        );
    }
    ExitCode::SUCCESS
}
