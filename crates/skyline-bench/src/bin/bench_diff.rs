//! Diffs a freshly produced `BENCH_<sha>.json` perf report against the checked-in
//! `BENCH_baseline.json`.
//!
//! ```text
//! # advisory mode: regressions become ::warning:: annotations, exit 0
//! cargo run -p skyline-bench --bin bench_diff -- BENCH_baseline.json BENCH_abc123.json
//!
//! # gate mode (what CI runs): un-allowlisted regressions become ::error:: and exit 1
//! cargo run -p skyline-bench --bin bench_diff -- \
//!     --gate --allowlist BENCH_allowlist.txt BENCH_baseline.json BENCH_abc123.json
//! ```
//!
//! Gate mode fails on a mean regression beyond the threshold (default
//! [`skyline_bench::perf::REGRESSION_RATIO`], overridable per bench in the allowlist), and
//! on baseline benchmarks missing from the run. Benchmarks whose baseline mean sits under
//! the ~1 ms duration floor stay warn-only — on the two-sample smoke budget their variance
//! is scheduler noise, and a hard gate there would only teach people to ignore red builds.
//! All policy lives in unit-tested code in [`skyline_bench::perf`]; this binary just wires
//! files to it.

use skyline_bench::perf::{diff_reports, parse_allowlist, parse_report, BenchRecord, Gate};
use std::process::ExitCode;

const USAGE: &str =
    "usage: bench_diff [--gate] [--allowlist <file>] <baseline.json> <current.json>";

fn load(path: &str) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let records = parse_report(&text);
    if records.is_empty() {
        return Err(format!("{path} contains no parseable benchmark lines"));
    }
    Ok(records)
}

struct Args {
    gate: bool,
    allowlist: Option<String>,
    baseline: String,
    current: String,
}

fn parse_args(argv: Vec<String>) -> Result<Args, String> {
    let mut gate = false;
    let mut allowlist = None;
    let mut positional = Vec::new();
    let mut it = argv.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--gate" => gate = true,
            "--allowlist" => {
                allowlist = Some(it.next().ok_or("--allowlist needs a file path")?);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            _ => positional.push(arg),
        }
    }
    let [baseline, current] = <[String; 2]>::try_from(positional)
        .map_err(|got| format!("expected 2 report paths, got {}", got.len()))?;
    Ok(Args {
        gate,
        allowlist,
        baseline,
        current,
    })
}

fn run() -> Result<bool, String> {
    let args =
        parse_args(std::env::args().skip(1).collect()).map_err(|e| format!("{e}\n{USAGE}"))?;
    let baseline = load(&args.baseline)?;
    let current = load(&args.current)?;
    let gate = Gate {
        allowlist: match &args.allowlist {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                parse_allowlist(&text)?
            }
            None => Default::default(),
        },
        ..Gate::default()
    };

    let diff = diff_reports(&baseline, &current);
    print!("{}", diff.format_report(&args.baseline));

    if !args.gate {
        // Advisory mode: annotations show up on the workflow summary but never fail it.
        for warning in diff.warning_annotations() {
            println!("{warning}");
        }
        return Ok(true);
    }

    let findings = gate.evaluate(&diff);
    for finding in &findings {
        println!("{}", finding.annotation());
    }
    let failures = findings.iter().filter(|f| f.is_failure()).count();
    if failures > 0 {
        eprintln!(
            "bench_diff: gate FAILED with {failures} finding(s); intentional regressions \
             belong in BENCH_allowlist.txt with a comment, refreshed baselines in \
             BENCH_baseline.json"
        );
    }
    Ok(failures == 0)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(err) => {
            eprintln!("bench_diff: {err}");
            ExitCode::FAILURE
        }
    }
}
