//! Diffs a freshly produced `BENCH_<sha>.json` perf report against the checked-in
//! `BENCH_baseline.json` and prints warnings — never failures — for regressions.
//!
//! ```text
//! cargo run -p skyline-bench --bin bench_diff -- BENCH_baseline.json BENCH_abc123.json
//! ```
//!
//! Exit code is non-zero only when a report file cannot be read or parsed at all; timing
//! regressions emit GitHub `::warning::` annotations (visible on the job summary) and exit 0,
//! because shared CI runners are far too noisy for hard perf gates.

use skyline_bench::perf::{diff_reports, parse_report, BenchRecord};
use std::process::ExitCode;

fn load(path: &str) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let records = parse_report(&text);
    if records.is_empty() {
        return Err(format!("{path} contains no parseable benchmark lines"));
    }
    Ok(records)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: bench_diff <baseline.json> <current.json>");
        return ExitCode::FAILURE;
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_diff: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let diff = diff_reports(&baseline, &current);
    // Both the table (with explicit "new"/"missing" lines) and the GitHub `::warning::`
    // annotations are rendered by unit-tested code in `skyline_bench::perf`; annotations show
    // up on the workflow summary but never fail it.
    print!("{}", diff.format_report(baseline_path));
    for warning in diff.warning_annotations() {
        println!("{warning}");
    }
    ExitCode::SUCCESS
}
