//! Experiment-cell runner shared by the `figures` binary and the Criterion benches.

use skyline::datagen::{nursery, workload::top_k_values, ExperimentConfig};
use skyline::prelude::*;
use skyline_adaptive::AdaptiveSfs;
use skyline_core::stats;
use skyline_ipo::storage;
use skyline_ipo::IpoTreeBuilder;
use std::time::Instant;

/// Measurements for one evaluated method in one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodMetrics {
    /// Method name as used in the paper's legends (`IPO Tree`, `IPO Tree-10`, `SFS-A`, `SFS-D`).
    pub method: &'static str,
    /// Preprocessing wall-clock seconds (0 for SFS-D, which needs none).
    pub preprocess_seconds: f64,
    /// Average query wall-clock seconds over the workload.
    pub avg_query_seconds: f64,
    /// Number of queries the average was taken over.
    pub queries_run: usize,
    /// Bytes of materialized storage (the raw dataset for SFS-D).
    pub storage_bytes: usize,
}

/// The ratio series of the "(d)" panels, averaged over the query workload.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RatioMetrics {
    /// `|SKY(R)| / |D|` in percent.
    pub template_skyline_pct: f64,
    /// `|AFFECT(R)| / |SKY(R)|` in percent.
    pub affected_pct: f64,
    /// `|SKY(R̃′)| / |SKY(R)|` in percent.
    pub query_skyline_pct: f64,
}

/// All measurements for one x-axis point of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Label of the x-axis point (e.g. `"500"` for 500 K tuples, `"5"` for 5 dimensions).
    pub label: String,
    /// Per-method measurements, in legend order.
    pub methods: Vec<MethodMetrics>,
    /// The ratio panel.
    pub ratios: RatioMetrics,
    /// Dataset size used for the cell.
    pub dataset_size: usize,
    /// Template skyline size.
    pub template_skyline_size: usize,
}

impl CellResult {
    /// Metrics of one method by its legend name.
    pub fn method(&self, name: &str) -> Option<&MethodMetrics> {
        self.methods.iter().find(|m| m.method == name)
    }
}

/// How many values the truncated tree materializes per dimension (the paper's IPO Tree-10).
pub const TOP_K: usize = 10;

/// Runs one synthetic experiment cell.
///
/// `num_queries` random implicit preferences (the paper uses 100) of order
/// `config.pref_order` are generated; all methods answer the same workload. The expensive
/// SFS-D baseline is run on at most `num_queries.min(5)` of them — its per-query cost does not
/// depend on the preference, so a handful of repetitions gives a stable average.
pub fn run_synthetic_cell(
    config: &ExperimentConfig,
    num_queries: usize,
    label: String,
) -> CellResult {
    let data = config.generate_dataset();
    let template = config.template(&data);
    let mut generator = config.query_generator();
    let queries = generator.random_preferences(
        data.schema(),
        &template,
        config.pref_order,
        num_queries,
        None,
    );
    // A second workload restricted to the materialized values, so the truncated tree can be
    // timed on queries it can actually answer (unpopular values go to the hybrid fallback in
    // practice, see Section 5.3).
    let allowed = top_k_values(&data, TOP_K);
    let popular_queries = generator.random_preferences(
        data.schema(),
        &template,
        config.pref_order,
        num_queries,
        Some(&allowed),
    );
    run_cell_on(data, template, queries, popular_queries, label)
}

/// Runs one cell of the real-data experiment (Figure 8): the Nursery data set with implicit
/// preferences of the given order.
///
/// Unlike the synthetic experiments, the template is empty: every Nursery attribute value is
/// exactly equally frequent (the data set is a full factorial), so a "most frequent value"
/// template would be an arbitrary choice that collapses the template skyline to a single
/// point and makes the whole figure degenerate.
pub fn run_nursery_cell(order: usize, num_queries: usize) -> CellResult {
    let data = nursery::generate();
    let template = Template::empty(data.schema());
    let mut generator = skyline::datagen::QueryGenerator::new(0x0F16_0008);
    let queries = generator.random_preferences(data.schema(), &template, order, num_queries, None);
    let popular = queries.clone(); // cardinality 4 ≤ TOP_K: every value is materialized anyway.
    run_cell_on(data, template, queries, popular, format!("{order}"))
}

fn run_cell_on(
    data: Dataset,
    template: Template,
    queries: Vec<Preference>,
    popular_queries: Vec<Preference>,
    label: String,
) -> CellResult {
    // Shared ownership: every engine below clones the `Arc`, not the data.
    let data = std::sync::Arc::new(data);
    // --- IPO Tree (full materialization). -------------------------------------------------
    let started = Instant::now();
    let ipo_full = IpoTreeBuilder::new()
        .build(&data, &template)
        .expect("full IPO tree builds");
    let ipo_full_build = started.elapsed().as_secs_f64();
    let ipo_full_storage = storage::ipo_tree_storage(&ipo_full).total_bytes();
    let ipo_full_query = time_queries(queries.len(), |i| {
        ipo_full
            .query(&data, &queries[i])
            .expect("materialized query succeeds");
    });

    // --- IPO Tree-10 (truncated to the most frequent values). ------------------------------
    let started = Instant::now();
    let ipo_10 = IpoTreeBuilder::new()
        .top_k_values(TOP_K)
        .build(&data, &template)
        .expect("truncated tree builds");
    let ipo_10_build = started.elapsed().as_secs_f64();
    let ipo_10_storage = storage::ipo_tree_storage(&ipo_10).total_bytes();
    let ipo_10_query = time_queries(popular_queries.len(), |i| {
        ipo_10
            .query(&data, &popular_queries[i])
            .expect("popular-value query succeeds");
    });

    // --- SFS-A (Adaptive SFS). --------------------------------------------------------------
    let started = Instant::now();
    let asfs = AdaptiveSfs::build(data.clone(), &template).expect("adaptive SFS builds");
    let asfs_build = started.elapsed().as_secs_f64();
    let asfs_storage = asfs.approximate_bytes();
    let asfs_query = time_queries(queries.len(), |i| {
        asfs.query(&queries[i]).expect("adaptive query succeeds");
    });

    // --- SFS-D (baseline, no preprocessing). ------------------------------------------------
    let sfsd_engine = SkylineEngine::build(data.clone(), template.clone(), EngineConfig::SfsD)
        .expect("baseline engine builds");
    // At most 5 timed runs (SFS-D is the slow baseline); 0 queries → 0 runs, not a panic.
    let sfsd_runs = queries.len().min(5);
    let sfsd_query = time_queries(sfsd_runs, |i| {
        sfsd_engine
            .query(&queries[i])
            .expect("baseline query succeeds");
    });

    // --- Ratio panel (averaged over the workload, using the IPO answers). --------------------
    let template_skyline = ipo_full.skyline().to_vec();
    let mut ratios = RatioMetrics::default();
    for query in &queries {
        let answer = asfs.query(query).expect("adaptive query succeeds");
        let s = stats::collect_stats(&data, &template_skyline, &answer, query);
        ratios.template_skyline_pct += s.template_skyline_pct();
        ratios.affected_pct += s.affected_pct();
        ratios.query_skyline_pct += s.query_skyline_pct();
    }
    let q = queries.len().max(1) as f64;
    ratios.template_skyline_pct /= q;
    ratios.affected_pct /= q;
    ratios.query_skyline_pct /= q;

    CellResult {
        label,
        methods: vec![
            MethodMetrics {
                method: "IPO Tree",
                preprocess_seconds: ipo_full_build,
                avg_query_seconds: ipo_full_query,
                queries_run: queries.len(),
                storage_bytes: ipo_full_storage,
            },
            MethodMetrics {
                method: "IPO Tree-10",
                preprocess_seconds: ipo_10_build,
                avg_query_seconds: ipo_10_query,
                queries_run: popular_queries.len(),
                storage_bytes: ipo_10_storage,
            },
            MethodMetrics {
                method: "SFS-A",
                preprocess_seconds: asfs_build,
                avg_query_seconds: asfs_query,
                queries_run: queries.len(),
                storage_bytes: asfs_storage,
            },
            MethodMetrics {
                method: "SFS-D",
                preprocess_seconds: 0.0,
                avg_query_seconds: sfsd_query,
                queries_run: sfsd_runs,
                storage_bytes: data.approximate_bytes(),
            },
        ],
        ratios,
        dataset_size: data.len(),
        template_skyline_size: template_skyline.len(),
    }
}

/// Times `runs` invocations of `f` and returns the average seconds per invocation.
fn time_queries(runs: usize, mut f: impl FnMut(usize)) -> f64 {
    if runs == 0 {
        return 0.0;
    }
    let started = Instant::now();
    for i in 0..runs {
        f(i);
    }
    started.elapsed().as_secs_f64() / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline::datagen::Distribution;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            n: 400,
            numeric_dims: 2,
            nominal_dims: 2,
            cardinality: 6,
            theta: 1.0,
            pref_order: 2,
            distribution: Distribution::AntiCorrelated,
            seed: 3,
        }
    }

    #[test]
    fn synthetic_cell_produces_all_four_methods() {
        let cell = run_synthetic_cell(&tiny_config(), 4, "tiny".into());
        assert_eq!(cell.label, "tiny");
        assert_eq!(cell.methods.len(), 4);
        for name in ["IPO Tree", "IPO Tree-10", "SFS-A", "SFS-D"] {
            let m = cell.method(name).unwrap();
            assert!(m.avg_query_seconds >= 0.0);
            assert!(m.storage_bytes > 0, "{name} storage");
        }
        assert!(cell.method("IPO Tree").unwrap().preprocess_seconds > 0.0);
        assert_eq!(cell.method("SFS-D").unwrap().preprocess_seconds, 0.0);
        assert!(cell.ratios.template_skyline_pct > 0.0);
        assert!(cell.ratios.template_skyline_pct <= 100.0);
        assert!(cell.ratios.query_skyline_pct <= 100.0 + 1e-9);
        assert_eq!(cell.dataset_size, 400);
        assert!(cell.template_skyline_size > 0);
        assert!(cell.method("does-not-exist").is_none());
    }

    #[test]
    fn truncated_tree_is_cheaper_than_the_full_tree() {
        let config = ExperimentConfig {
            cardinality: 15,
            ..tiny_config()
        };
        let cell = run_synthetic_cell(&config, 3, "c15".into());
        let full = cell.method("IPO Tree").unwrap();
        let truncated = cell.method("IPO Tree-10").unwrap();
        assert!(truncated.storage_bytes <= full.storage_bytes);
    }

    #[test]
    fn nursery_cell_runs() {
        let cell = run_nursery_cell(2, 3);
        assert_eq!(cell.dataset_size, 12_960);
        assert_eq!(cell.methods.len(), 4);
        assert_eq!(cell.label, "2");
    }
}
