//! # skyline-bench
//!
//! Benchmark harness that regenerates every table and figure of the paper's evaluation
//! (Section 5). The [`harness`] module runs one "experiment cell" (a point on a figure's
//! x-axis): it generates the configured dataset and query workload, builds every evaluated
//! method, and measures
//!
//! * preprocessing time (Figures 4a–8a),
//! * average query time (Figures 4b–8b),
//! * storage (Figures 4c–8c),
//! * and the three skyline ratios of the "(d)" panels.
//!
//! The [`report`] module prints the series in the same layout the paper plots. The `figures`
//! binary drives full sweeps (`cargo run -p skyline-bench --release --bin figures -- all`),
//! and the Criterion benches under `benches/` time the query paths of the same cells.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod perf;
pub mod report;

pub use harness::{run_nursery_cell, run_synthetic_cell, CellResult, MethodMetrics, RatioMetrics};
pub use perf::{diff_reports, parse_report, BenchRecord, Comparison, Diff};
pub use report::{print_cells, print_figure_header};
