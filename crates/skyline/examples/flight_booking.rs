//! Flight booking: the paper's second motivating application — "flight booking (where airline
//! and transition airport are examples of nominal attributes)".
//!
//! This example stresses the *variability* of preferences: a stream of travellers, each with a
//! randomly generated implicit preference on airline and transition airport, is answered
//! online. It also demonstrates incremental maintenance: new flights appear and sold-out
//! flights disappear between queries, and the Adaptive-SFS structure keeps serving correct
//! skylines without a rebuild.
//!
//! Run with: `cargo run -p skyline --example flight_booking --release`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skyline::prelude::*;

const AIRLINES: [&str; 5] = ["Gonna Air", "Redish", "Wings", "Polar Jet", "Meridian"];
const HUBS: [&str; 5] = ["FRA", "AMS", "IST", "DOH", "KEF"];

fn flights_schema() -> Result<Schema> {
    Schema::new(vec![
        Dimension::numeric("price-eur"),
        Dimension::numeric("duration-h"),
        Dimension::numeric("stops"),
        Dimension::nominal_with_labels("airline", AIRLINES),
        Dimension::nominal_with_labels("hub", HUBS),
    ])
}

fn random_flight(rng: &mut SmallRng) -> (Vec<f64>, Vec<ValueId>) {
    let stops = rng.gen_range(0..=2) as f64;
    let duration = 8.0 + stops * rng.gen_range(1.5..4.0) + rng.gen::<f64>() * 3.0;
    let price = 350.0 + rng.gen::<f64>() * 900.0 - stops * 120.0;
    let airline = rng.gen_range(0..AIRLINES.len()) as ValueId;
    let hub = rng.gen_range(0..HUBS.len()) as ValueId;
    (vec![price.max(120.0), duration, stops], vec![airline, hub])
}

fn main() -> Result<()> {
    let mut rng = SmallRng::seed_from_u64(7_47);
    let schema = flights_schema()?;

    // Initial inventory of 2 000 flights.
    let mut columns_numeric = vec![Vec::new(); 3];
    let mut columns_nominal = vec![Vec::new(); 2];
    for _ in 0..2_000 {
        let (num, nom) = random_flight(&mut rng);
        for (col, v) in columns_numeric.iter_mut().zip(&num) {
            col.push(*v);
        }
        for (col, v) in columns_nominal.iter_mut().zip(&nom) {
            col.push(*v);
        }
    }
    let data = Dataset::from_columns(schema, columns_numeric, columns_nominal)?;
    let template = Template::empty(data.schema());
    let mut inventory = AdaptiveSfs::build(data, &template)?;
    println!(
        "Initial inventory: {} flights, {} in the template skyline",
        inventory.live_rows(),
        inventory.skyline_size()
    );

    // A stream of travellers with random implicit preferences, interleaved with inventory
    // updates (new flights appear, the cheapest skyline flight sells out).
    let schema = inventory.dataset().schema().clone();
    let template_for_queries = inventory.template().clone();
    let mut generator = QueryGenerator::new(99);
    for round in 1..=5 {
        // Random traveller preference of order 2 on both nominal dimensions.
        let pref = generator.random_preference(&schema, &template_for_queries, 2, None);
        let skyline = inventory.query(&pref)?;
        println!(
            "\nRound {round}: traveller preference [{}]",
            pref.display(&schema)
        );
        println!(
            "  {} skyline flights out of {} live flights",
            skyline.len(),
            inventory.live_rows()
        );
        for &p in skyline.iter().take(3) {
            println!(
                "    flight #{p:<5} {:>6.0} EUR  {:>4.1} h  {} stops  {:10} via {}",
                inventory.dataset().numeric(p, 0),
                inventory.dataset().numeric(p, 1),
                inventory.dataset().numeric(p, 2),
                inventory.dataset().nominal_label(p, 0),
                inventory.dataset().nominal_label(p, 1),
            );
        }

        // Inventory churn: 50 new flights, and the first skyline flight sells out.
        for _ in 0..50 {
            let (num, nom) = random_flight(&mut rng);
            inventory.insert_row(&num, &nom)?;
        }
        if let Some(&sold_out) = skyline.first() {
            inventory.delete_row(sold_out)?;
            println!(
                "  flight #{sold_out} sold out; skyline size is now {}",
                inventory.skyline_size()
            );
        }
    }
    Ok(())
}
