//! The motivating example of the paper, end to end: Table 1's vacation packages and the six
//! customers of Table 2, each with a different implicit preference on the hotel group.
//!
//! The example also shows the progressive behaviour of Adaptive SFS: results stream out in
//! preference-score order, so an interactive application can show the best packages first.
//!
//! Run with: `cargo run -p skyline --example vacation_packages`

use skyline::prelude::*;

fn main() -> Result<()> {
    let schema = Schema::new(vec![
        Dimension::numeric("price"),
        Dimension::numeric("class-neg"),
        Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
    ])?;
    let mut builder = DatasetBuilder::new(schema);
    let rows = [
        ("a", 1600.0, 4, "T"),
        ("b", 2400.0, 1, "T"),
        ("c", 3000.0, 5, "H"),
        ("d", 3600.0, 4, "H"),
        ("e", 2400.0, 2, "M"),
        ("f", 3000.0, 3, "M"),
    ];
    for (_, price, class, group) in rows {
        builder.push_row([
            RowValue::Num(price),
            RowValue::Num(-(class as f64)),
            group.into(),
        ])?;
    }
    let data = std::sync::Arc::new(builder.build()?);
    let names: Vec<&str> = rows.iter().map(|r| r.0).collect();
    let template = Template::empty(data.schema());

    println!("Package  Price  Class  Hotel-group");
    for (i, (name, price, class, group)) in rows.iter().enumerate() {
        let _ = i;
        println!("{name:<8} {price:<6} {class:<6} {group}");
    }
    println!();

    // The six customers of Table 2.
    let customers = [
        ("Alice", "T < M < *"),
        ("Bob", "*"),
        ("Chris", "H < M < *"),
        ("David", "H < M < T"),
        ("Emily", "H < T < *"),
        ("Fred", "M < *"),
    ];

    let asfs = AdaptiveSfs::build(data.clone(), &template)?;
    println!(
        "Preprocessing: |SKY(template)| = {} of {} packages",
        asfs.preprocess_stats().template_skyline_size,
        data.len()
    );
    println!();
    println!(
        "{:<8} {:<16} {:<20} Progressive order",
        "Customer", "Preference", "Skyline"
    );
    for (customer, pref_text) in customers {
        let pref = Preference::parse(data.schema(), [("hotel-group", pref_text)])?;
        let skyline = asfs.query(&pref)?;
        let members: Vec<&str> = skyline.iter().map(|&p| names[p as usize]).collect();
        let streamed: Vec<&str> = asfs
            .query_progressive(&pref)?
            .map(|p| names[p as usize])
            .collect();
        println!(
            "{customer:<8} {pref_text:<16} {{{:<18}}} {}",
            members.join(", "),
            streamed.join(" -> ")
        );
    }

    Ok(())
}
