//! Realty search: one of the applications the paper's introduction motivates — "realties
//! (where type of realty, regions and style are examples of nominal attributes)".
//!
//! A synthetic portfolio of listings is generated with numeric attributes (price, commute
//! minutes) and nominal attributes (region, property type). Different buyers express different
//! implicit preferences on the nominal attributes, and the engine answers each of them online
//! from the same materialized structures. The example also contrasts the IPO-tree and the
//! Adaptive-SFS answers to show they agree.
//!
//! Run with: `cargo run -p skyline --example realty_search --release`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skyline::prelude::*;

const REGIONS: [&str; 6] = [
    "downtown",
    "harbor",
    "old-town",
    "suburb-north",
    "suburb-south",
    "riverside",
];
const TYPES: [&str; 4] = ["apartment", "townhouse", "detached", "loft"];

fn build_listings(n: usize, seed: u64) -> Result<Dataset> {
    let schema = Schema::new(vec![
        Dimension::numeric("price-keur"),
        Dimension::numeric("commute-min"),
        Dimension::nominal_with_labels("region", REGIONS),
        Dimension::nominal_with_labels("type", TYPES),
    ])?;
    let mut builder = DatasetBuilder::new(schema);
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..n {
        let region = REGIONS[rng.gen_range(0..REGIONS.len())];
        let ptype = TYPES[rng.gen_range(0..TYPES.len())];
        // Central regions are pricier but closer; detached houses cost more than apartments.
        let base_price = 250.0 + rng.gen::<f64>() * 400.0;
        let region_factor = match region {
            "downtown" | "harbor" => 1.4,
            "old-town" | "riverside" => 1.2,
            _ => 1.0,
        };
        let type_factor = match ptype {
            "detached" => 1.5,
            "townhouse" => 1.2,
            "loft" => 1.1,
            _ => 1.0,
        };
        let price = base_price * region_factor * type_factor;
        let commute = match region {
            "downtown" => rng.gen_range(5.0..20.0),
            "harbor" | "old-town" | "riverside" => rng.gen_range(10.0..35.0),
            _ => rng.gen_range(25.0..60.0),
        };
        builder.push_row([
            RowValue::Num(price),
            RowValue::Num(commute),
            region.into(),
            ptype.into(),
        ])?;
    }
    builder.build()
}

fn main() -> Result<()> {
    // One shared copy of the listings feeds both engines (Arc clone, not a data copy).
    let data = std::sync::Arc::new(build_listings(5_000, 20_08)?);
    let template = Template::empty(data.schema());

    let engine = SkylineEngine::build(
        data.clone(),
        template.clone(),
        EngineConfig::Hybrid { top_k: 4 },
    )?;
    let asfs = AdaptiveSfs::build(data.clone(), &template)?;
    println!(
        "{} listings, template skyline has {} entries",
        data.len(),
        asfs.preprocess_stats().template_skyline_size
    );
    println!();

    let buyers = [
        (
            "Young professional",
            vec![
                ("region", "downtown < harbor < *"),
                ("type", "loft < apartment < *"),
            ],
        ),
        (
            "Family with kids",
            vec![
                ("region", "suburb-north < suburb-south < *"),
                ("type", "detached < townhouse < *"),
            ],
        ),
        ("Retiree", vec![("region", "riverside < old-town < *")]),
        (
            "Investor (no area preference)",
            vec![("type", "apartment < *")],
        ),
    ];

    for (buyer, spec) in buyers {
        let pref = Preference::parse(data.schema(), spec.clone())?;
        let outcome = engine.query(&pref)?;
        let adaptive_answer = asfs.query(&pref)?;
        assert_eq!(outcome.skyline, adaptive_answer, "both methods must agree");
        println!(
            "{buyer:<30} preference [{}]",
            spec.iter()
                .map(|(d, p)| format!("{d}: {p}"))
                .collect::<Vec<_>>()
                .join("; ")
        );
        println!(
            "  -> {} skyline listings (answered by {:?}); best 5 by preference score:",
            outcome.skyline.len(),
            outcome.method
        );
        for p in asfs.query_progressive(&pref)?.take(5) {
            println!(
                "     #{p:<6} {:>7.0} kEUR  {:>4.0} min  {:12} {}",
                data.numeric(p, 0),
                data.numeric(p, 1),
                data.nominal_label(p, 0),
                data.nominal_label(p, 1),
            );
        }
        println!();
    }
    Ok(())
}
