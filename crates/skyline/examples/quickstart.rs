//! Quickstart: build a small dataset with nominal attributes, materialize an IPO-tree-backed
//! engine and answer a few implicit-preference skyline queries.
//!
//! This walks through the running example of the paper (Table 3 and Example 1): vacation
//! packages with two numeric attributes (price and hotel class) and two nominal attributes
//! (hotel group and airline).
//!
//! Run with: `cargo run -p skyline --example quickstart`

use skyline::prelude::*;
use std::sync::Arc;

fn main() -> Result<()> {
    // 1. Describe the data: numeric dimensions are "smaller is better", so hotel class is
    //    stored negated. Nominal dimensions carry no predefined order.
    let schema = Schema::new(vec![
        Dimension::numeric("price"),
        Dimension::numeric("class-neg"),
        Dimension::nominal_with_labels("hotel-group", ["Tulips", "Horizon", "Mozilla"]),
        Dimension::nominal_with_labels("airline", ["Gonna", "Redish", "Wings"]),
    ])?;

    // 2. Load the packages of Table 3.
    let mut builder = DatasetBuilder::new(schema);
    let rows = [
        ("a", 1600.0, 4.0, "Tulips", "Gonna"),
        ("b", 2400.0, 1.0, "Tulips", "Gonna"),
        ("c", 3000.0, 5.0, "Horizon", "Gonna"),
        ("d", 3600.0, 4.0, "Horizon", "Redish"),
        ("e", 2400.0, 2.0, "Mozilla", "Redish"),
        ("f", 3000.0, 3.0, "Mozilla", "Wings"),
    ];
    for (_, price, class, group, airline) in rows {
        builder.push_row([
            RowValue::Num(price),
            RowValue::Num(-class),
            group.into(),
            airline.into(),
        ])?;
    }
    let data = Arc::new(builder.build()?);
    let names: Vec<&str> = rows.iter().map(|r| r.0).collect();

    // 3. No universal preference on the nominal attributes: an empty template.
    let template = Template::empty(data.schema());

    // 4. Build the hybrid engine (IPO tree for popular values + Adaptive SFS fallback).
    //    The `Arc` is shared, not copied — clone it freely into as many engines or threads
    //    as you need.
    let engine = SkylineEngine::build(data.clone(), template, EngineConfig::Hybrid { top_k: 10 })?;
    println!("Loaded {} vacation packages.", data.len());

    // 5. Ask the four queries of Example 1 plus a couple of customer preferences from Table 2.
    let queries = [
        ("Q_A: Mozilla first", vec![("hotel-group", "Mozilla < *")]),
        (
            "Q_B: Mozilla first, Gonna first",
            vec![("hotel-group", "Mozilla < *"), ("airline", "Gonna < *")],
        ),
        (
            "Q_D: Mozilla then Horizon, Gonna then Redish",
            vec![
                ("hotel-group", "Mozilla < Horizon < *"),
                ("airline", "Gonna < Redish < *"),
            ],
        ),
        (
            "Alice: Tulips then Mozilla",
            vec![("hotel-group", "Tulips < Mozilla < *")],
        ),
        ("Bob: no special preference", vec![]),
    ];
    for (label, spec) in queries {
        let pref = Preference::parse(data.schema(), spec)?;
        let outcome = engine.query(&pref)?;
        let members: Vec<&str> = outcome.skyline.iter().map(|&p| names[p as usize]).collect();
        println!(
            "{label:<45} -> skyline {{{}}} (answered by {:?})",
            members.join(", "),
            outcome.method
        );
    }

    Ok(())
}
