//! The paper's real-data experiment (Section 5.2) as an example: the UCI Nursery data set,
//! regenerated exactly (it is the full Cartesian product of its attribute domains), with the
//! two nominal attributes *form of the family* and *number of children*.
//!
//! The example builds the full IPO tree and the Adaptive-SFS structure, runs implicit
//! preferences of order 0–3 (the x-axis of Figure 8) and prints skyline sizes plus the ratios
//! of Figure 8(d).
//!
//! Run with: `cargo run -p skyline --example nursery_real_data --release`

use skyline::datagen::nursery;
use skyline::datagen::workload::top_k_values;
use skyline::prelude::*;
use skyline_core::stats;

fn main() -> Result<()> {
    let data = nursery::generate();
    println!(
        "Nursery data set: {} rows, {} attributes",
        data.len(),
        data.schema().arity()
    );
    println!(
        "Nominal attributes: form (cardinality {}), children (cardinality {})",
        data.schema().nominal_domain(0).unwrap().cardinality(),
        data.schema().nominal_domain(1).unwrap().cardinality()
    );

    // Every Nursery value is exactly equally frequent (the data set is a full factorial), so a
    // "most frequent value" template would be arbitrary and collapse the skyline to one point;
    // the real-data experiment therefore uses an empty template.
    let template = Template::empty(data.schema());
    // One shared copy of the data feeds both engines.
    let data = std::sync::Arc::new(data);
    let engine_ipo = SkylineEngine::build(data.clone(), template.clone(), EngineConfig::IpoTree)?;
    let asfs = AdaptiveSfs::build(data.clone(), &template)?;
    let template_skyline = asfs.template_skyline();
    println!(
        "Template skyline: {} points ({:.1}% of the data set)\n",
        template_skyline.len(),
        100.0 * template_skyline.len() as f64 / data.len() as f64
    );

    println!(
        "{:<7} {:>10} {:>12} {:>14} {:>14}",
        "order", "|SKY(R')|", "|AFFECT|/|SKY|", "|SKY(R')|/|SKY|", "methods agree"
    );
    let mut generator = QueryGenerator::new(4_2);
    let allowed = top_k_values(&data, 4);
    for order in 0..=3usize {
        let mut agree = true;
        let mut sky_sizes = 0usize;
        let mut affected_pct = 0.0;
        let mut query_pct = 0.0;
        let runs = 20;
        for _ in 0..runs {
            let pref = generator.random_preference(data.schema(), &template, order, Some(&allowed));
            let ipo_answer = engine_ipo.query(&pref)?.skyline;
            let asfs_answer = asfs.query(&pref)?;
            agree &= ipo_answer == asfs_answer;
            let s = stats::collect_stats(&data, &template_skyline, &ipo_answer, &pref);
            sky_sizes += ipo_answer.len();
            affected_pct += s.affected_pct();
            query_pct += s.query_skyline_pct();
        }
        println!(
            "{:<7} {:>10.0} {:>13.1}% {:>13.1}% {:>14}",
            order,
            sky_sizes as f64 / runs as f64,
            affected_pct / runs as f64,
            query_pct / runs as f64,
            agree
        );
    }
    Ok(())
}
