//! The generational lifecycle: physical compaction with row-id remapping and background IPO
//! re-materialization.
//!
//! * Property: any interleaving of inserts, deletes and generation rebuilds produces
//!   skylines bit-for-bit equal to a from-scratch computation over the live rows, for every
//!   mutable configuration — and after every rebuild the block holds only live rows.
//! * Replay: mutations arriving between `begin_rebuild` and `install_generation` land in the
//!   installed generation, with the published remap covering them.
//! * Concurrency: queries issued while generation swaps race them never observe a torn or
//!   stale-epoch result.

use proptest::prelude::*;
use skyline::prelude::*;
use skyline_core::algo::bnl;
use std::sync::Arc;

const CARD: usize = 3;

#[derive(Debug, Clone)]
enum Update {
    Insert {
        numeric: Vec<f64>,
        nominal: Vec<ValueId>,
    },
    Delete {
        index: usize,
    },
    /// A full generation rebuild through the same snapshot → build → install cycle the
    /// background worker drives (run synchronously here for determinism).
    Rebuild,
}

fn update_strategy() -> impl Strategy<Value = Update> {
    prop_oneof![
        (
            proptest::collection::vec(0i32..6, 2),
            proptest::collection::vec(0..(CARD as ValueId), 1),
        )
            .prop_map(|(n, c)| Update::Insert {
                numeric: n.into_iter().map(f64::from).collect(),
                nominal: c,
            }),
        (0usize..64).prop_map(|index| Update::Delete { index }),
        Just(Update::Rebuild),
    ]
}

type Rows = Vec<(Vec<f64>, Vec<ValueId>)>;

fn rows_strategy() -> impl Strategy<Value = Rows> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0i32..6, 2)
                .prop_map(|v| v.into_iter().map(f64::from).collect::<Vec<f64>>()),
            proptest::collection::vec(0..(CARD as ValueId), 1),
        ),
        1..20,
    )
}

fn initial_dataset(rows: &[(Vec<f64>, Vec<ValueId>)]) -> Dataset {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::numeric("y"),
        Dimension::nominal("g", NominalDomain::anonymous(CARD)),
    ])
    .unwrap();
    let mut data = Dataset::empty(schema);
    for (numeric, nominal) in rows {
        data.push_row_ids(numeric, nominal).unwrap();
    }
    data
}

/// Brute-force skyline over the engine's live rows, in the engine's *current* id space.
fn live_oracle(engine: &SkylineEngine, pref: &Preference) -> Vec<PointId> {
    let ctx = DominanceContext::for_query(engine.dataset(), engine.template(), pref).unwrap();
    let live: Vec<PointId> = engine
        .dataset()
        .point_ids()
        .filter(|&p| engine.is_row_live(p))
        .collect();
    bnl::skyline_of(&ctx, &live)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Mutable configurations: after any interleaving of inserts, deletes and generation
    /// rebuilds, answers equal a from-scratch computation over the live rows, rebuilds leave
    /// only live rows in the block, and the published remap translates the pre-swap skyline
    /// onto the post-swap one.
    #[test]
    fn rebuilt_engines_match_from_scratch_for_every_mutable_config(
        initial in rows_strategy(),
        updates in proptest::collection::vec(update_strategy(), 0..25),
        query_choices in proptest::sample::subsequence((0..CARD as ValueId).collect::<Vec<_>>(), 0..=2).prop_shuffle(),
    ) {
        let data = Arc::new(initial_dataset(&initial));
        let template = Template::empty(data.schema());
        let pref = Preference::from_dims(vec![ImplicitPreference::new(query_choices).unwrap()]);

        for config in [
            EngineConfig::SfsD,
            EngineConfig::AdaptiveSfs,
            EngineConfig::Hybrid { top_k: 2 },
        ] {
            let shared = SharedEngine::new(
                SkylineEngine::build(data.clone(), template.clone(), config).unwrap(),
            );
            let mut rebuilds = 0u64;
            for update in &updates {
                match update {
                    Update::Insert { numeric, nominal } => {
                        shared.write().insert_row(numeric, nominal).unwrap();
                    }
                    Update::Delete { index } => {
                        let target = {
                            let engine = shared.read();
                            (index % engine.dataset().len()) as PointId
                        };
                        shared.write().delete_row(target).unwrap();
                    }
                    Update::Rebuild => {
                        let before = {
                            let engine = shared.read();
                            (engine.epoch(), engine.query(&pref).unwrap().skyline)
                        };
                        let published = shared.rebuild_now().unwrap();
                        rebuilds += 1;
                        let engine = shared.read();
                        // The swap's epochs bridge exactly the observed ones.
                        prop_assert_eq!(published.from, before.0);
                        prop_assert_eq!(published.to, engine.epoch());
                        prop_assert!(published.to > published.from);
                        // Acceptance criterion: only live rows remain, physically.
                        let block = engine.point_block().unwrap();
                        prop_assert_eq!(block.live_ids().count(), block.len());
                        prop_assert_eq!(block.live_count(), block.len());
                        prop_assert_eq!(engine.dataset().len(), block.len());
                        // The pre-swap answer translates onto the post-swap answer.
                        let translated = published.remap.translate_ids(&before.1).unwrap();
                        prop_assert_eq!(translated, engine.query(&pref).unwrap().skyline);
                        prop_assert_eq!(engine.generation().id(), rebuilds);
                        prop_assert_eq!(engine.last_remap().unwrap().to, published.to);
                    }
                }
            }
            let engine = shared.read();
            prop_assert_eq!(engine.maintenance_stats().rebuilds, rebuilds);
            let expected = live_oracle(&engine, &pref);
            prop_assert_eq!(
                engine.query(&pref).unwrap().skyline,
                expected,
                "config {:?}",
                config
            );
            // The maintained template skyline (when there is one) equals a rebuild.
            if let Some(asfs) = engine.adaptive() {
                let ctx =
                    DominanceContext::for_template(engine.dataset(), engine.template()).unwrap();
                let live: Vec<PointId> = engine
                    .dataset()
                    .point_ids()
                    .filter(|&p| engine.is_row_live(p))
                    .collect();
                prop_assert_eq!(asfs.template_skyline(), bnl::skyline_of(&ctx, &live));
            }
        }
    }

    /// Mutations that land between the snapshot and the install are replayed onto the new
    /// generation: the installed state is identical to having applied them directly.
    #[test]
    fn mid_build_mutations_are_replayed_before_the_swap(
        initial in rows_strategy(),
        mid in proptest::collection::vec(update_strategy(), 1..10),
    ) {
        let data = Arc::new(initial_dataset(&initial));
        let template = Template::empty(data.schema());
        let pref = Preference::from_dims(vec![ImplicitPreference::new([0]).unwrap()]);

        for config in [
            EngineConfig::SfsD,
            EngineConfig::AdaptiveSfs,
            EngineConfig::Hybrid { top_k: 2 },
        ] {
            let mut engine =
                SkylineEngine::build(data.clone(), template.clone(), config).unwrap();
            // Accumulate some dead rows so the compaction actually renumbers.
            engine.delete_row(0).unwrap();

            let snapshot = engine.begin_rebuild().unwrap();
            prop_assert!(engine.rebuild_in_flight());
            // Mutations arrive "mid-build" (the build below uses the snapshot, not these).
            for update in &mid {
                match update {
                    Update::Insert { numeric, nominal } => {
                        engine.insert_row(numeric, nominal).unwrap();
                    }
                    Update::Delete { index } => {
                        let target = (index % engine.dataset().len()) as PointId;
                        engine.delete_row(target).unwrap();
                    }
                    Update::Rebuild => {} // one rebuild is already in flight
                }
            }
            let pre_swap = engine.query(&pref).unwrap().skyline;
            let pending = snapshot.build_next().unwrap();
            let published = engine.install_generation(pending).unwrap();
            prop_assert!(!engine.rebuild_in_flight());

            // The replay preserved the answer (modulo renumbering) …
            let translated = published.remap.translate_ids(&pre_swap).unwrap();
            prop_assert_eq!(&translated, &engine.query(&pref).unwrap().skyline);
            // … and the final state equals the from-scratch oracle over the live rows.
            prop_assert_eq!(engine.query(&pref).unwrap().skyline, live_oracle(&engine, &pref));
            prop_assert!(engine.epoch() > published.from);
        }
    }
}

/// A mutated hybrid engine serves from its Adaptive-SFS fallback until a generation rebuild
/// re-materializes the tree — after which servable queries are tree-served again (asserted
/// via engine introspection, not timing).
#[test]
fn hybrid_recovers_tree_served_queries_after_a_rebuild() {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::nominal("g", NominalDomain::anonymous(3)),
    ])
    .unwrap();
    let mut data = Dataset::empty(schema.clone());
    for (x, g) in [(3.0, 0), (2.0, 1), (1.0, 2), (5.0, 0), (4.0, 1)] {
        data.push_row_ids(&[x], &[g]).unwrap();
    }
    let template = Template::empty(&schema);
    let shared = SharedEngine::new(
        SkylineEngine::build(Arc::new(data), template, EngineConfig::Hybrid { top_k: 3 }).unwrap(),
    );
    let pref = Preference::from_dims(vec![ImplicitPreference::new([0]).unwrap()]);

    // Fresh: tree-served.
    {
        let engine = shared.read();
        assert!(engine.serves_from_tree(&pref));
        assert_eq!(engine.query(&pref).unwrap().method, MethodUsed::IpoTree);
    }
    // Mutated: the stale tree must not answer; the fallback does.
    shared.write().insert_row(&[0.5], &[0]).unwrap();
    shared.write().delete_row(3).unwrap();
    {
        let engine = shared.read();
        assert!(!engine.serves_from_tree(&pref));
        let outcome = engine.query(&pref).unwrap();
        assert_eq!(outcome.method, MethodUsed::AdaptiveSfs);
        assert_eq!(outcome.skyline, live_oracle(&engine, &pref));
    }
    // Rebuilt: the re-materialized tree serves again, over the compacted id space.
    shared.rebuild_now().unwrap();
    {
        let engine = shared.read();
        assert!(engine.serves_from_tree(&pref), "tree must be current again");
        assert_eq!(engine.generation().tree_epoch(), engine.epoch());
        let outcome = engine.query(&pref).unwrap();
        assert_eq!(outcome.method, MethodUsed::IpoTree);
        assert_eq!(outcome.skyline, live_oracle(&engine, &pref));
        let block = engine.point_block().unwrap();
        assert_eq!(block.len(), block.live_count());
    }
    // The *next* mutation stales the new tree too — the lifecycle is repeatable.
    shared.write().insert_row(&[0.1], &[1]).unwrap();
    assert!(!shared.read().serves_from_tree(&pref));
    shared.rebuild_now().unwrap();
    assert!(shared.read().serves_from_tree(&pref));
    assert_eq!(shared.read().maintenance_stats().rebuilds, 2);
}

/// Frozen configurations have no lifecycle: `begin_rebuild` (and hence `rebuild_now`) fails.
#[test]
fn frozen_configs_reject_rebuilds() {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::nominal("g", NominalDomain::anonymous(2)),
    ])
    .unwrap();
    let data = Arc::new(
        Dataset::from_columns(schema.clone(), vec![vec![1.0, 2.0]], vec![vec![0, 1]]).unwrap(),
    );
    let template = Template::empty(&schema);
    for config in [
        EngineConfig::IpoTree,
        EngineConfig::IpoTreeTopK(2),
        EngineConfig::BitmapIpoTree,
    ] {
        let shared = SharedEngine::new(
            SkylineEngine::build(data.clone(), template.clone(), config).unwrap(),
        );
        assert!(shared.rebuild_now().is_err(), "config {config:?}");
        assert!(!shared.read().rebuild_in_flight());
    }
    // And a second concurrent rebuild on a mutable engine is rejected while one is in flight.
    let mut engine =
        SkylineEngine::build(data.clone(), template.clone(), EngineConfig::AdaptiveSfs).unwrap();
    let snapshot = engine.begin_rebuild().unwrap();
    assert!(engine.begin_rebuild().is_err());
    let pending = snapshot.build_next().unwrap();
    engine.install_generation(pending).unwrap();
    // Installing again without a new begin fails and leaves the engine serving.
    let snapshot = engine.begin_rebuild().unwrap();
    let pending = snapshot.build_next().unwrap();
    engine.abort_rebuild();
    assert!(engine.install_generation(pending).is_err());
    assert_eq!(engine.live_rows(), 2);
}

/// A pending generation built from an aborted (or otherwise superseded) snapshot must never
/// install: it would silently drop mutations and move the epoch backwards.
#[test]
fn stale_pending_generations_are_rejected_and_leave_the_armed_rebuild_intact() {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::nominal("g", NominalDomain::anonymous(2)),
    ])
    .unwrap();
    let mut data = Dataset::empty(schema.clone());
    for (x, g) in [(1.0, 0), (2.0, 1), (3.0, 0)] {
        data.push_row_ids(&[x], &[g]).unwrap();
    }
    let template = Template::empty(&schema);
    let mut engine =
        SkylineEngine::build(Arc::new(data), template, EngineConfig::AdaptiveSfs).unwrap();

    // Build a pending from snapshot #1, then abort and mutate (the pending goes stale).
    let snapshot = engine.begin_rebuild().unwrap();
    let stale_pending = snapshot.build_next().unwrap();
    engine.abort_rebuild();
    engine.insert_row(&[0.5], &[0]).unwrap();
    engine.insert_row(&[0.25], &[1]).unwrap();
    let epoch_before = engine.epoch();

    // Arm a *new* rebuild, then try to install the stale pending: rejected, and the armed
    // rebuild (including its mutation recording) survives the rejection.
    let fresh_snapshot = engine.begin_rebuild().unwrap();
    assert!(engine.install_generation(stale_pending).is_err());
    assert!(
        engine.rebuild_in_flight(),
        "rejection must not disarm the log"
    );
    assert_eq!(engine.epoch(), epoch_before, "nothing was swapped");
    assert_eq!(engine.generation().id(), 0);

    // The armed rebuild still completes, replaying the mutation recorded after arming.
    engine.insert_row(&[0.1], &[0]).unwrap();
    let pending = fresh_snapshot.build_next().unwrap();
    engine.install_generation(pending).unwrap();
    assert_eq!(engine.generation().id(), 1);
    assert_eq!(engine.live_rows(), 6, "no mutation was lost");
    let pref = Preference::none(1);
    assert_eq!(
        engine.query(&pref).unwrap().skyline,
        live_oracle(&engine, &pref)
    );
}

/// Mutations replayed at install time are not double-counted by `maintenance_stats`.
#[test]
fn replayed_mutations_are_counted_once_in_maintenance_stats() {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::nominal("g", NominalDomain::anonymous(2)),
    ])
    .unwrap();
    let mut data = Dataset::empty(schema.clone());
    for (x, g) in [(1.0, 0), (2.0, 1), (3.0, 0), (4.0, 1)] {
        data.push_row_ids(&[x], &[g]).unwrap();
    }
    let template = Template::empty(&schema);
    for config in [
        EngineConfig::AdaptiveSfs,
        EngineConfig::Hybrid { top_k: 2 },
        EngineConfig::SfsD,
    ] {
        let mut engine =
            SkylineEngine::build(Arc::new(data.clone()), template.clone(), config).unwrap();
        // 1 insert + 1 delete before the rebuild, 2 inserts + 1 delete mid-build.
        engine.insert_row(&[5.0], &[0]).unwrap();
        engine.delete_row(0).unwrap();
        let snapshot = engine.begin_rebuild().unwrap();
        engine.insert_row(&[6.0], &[1]).unwrap();
        engine.insert_row(&[7.0], &[0]).unwrap();
        engine.delete_row(1).unwrap();
        let pending = snapshot.build_next().unwrap();
        engine.install_generation(pending).unwrap();

        let stats = engine.maintenance_stats();
        assert_eq!(stats.inserts, 3, "config {config:?}");
        assert_eq!(stats.deletes, 2, "config {config:?}");
        assert_eq!(stats.rebuilds, 1, "config {config:?}");
        assert_eq!(stats.reclaimed_rows, 1, "only the pre-snapshot tombstone");
        // And the installed state is still exactly the live rows.
        let pref = Preference::none(1);
        assert_eq!(
            engine.query(&pref).unwrap().skyline,
            live_oracle(&engine, &pref),
            "config {config:?}"
        );
    }
}

/// Queries racing generation swaps never observe a torn or stale-epoch result.
///
/// The writer inserts dominated rows (never skyline members) and deletes them again, with
/// rebuilds interleaved, so the skyline's *values* are invariant throughout while row ids
/// renumber under the readers. Every read validates its own epoch via `query_at` under one
/// read guard and checks the returned rows' values against the invariant.
#[test]
fn queries_during_swaps_are_never_torn_or_stale() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::nominal("g", NominalDomain::anonymous(3)),
    ])
    .unwrap();
    let mut data = Dataset::empty(schema.clone());
    // Per nominal value, the minimal-x row is the unique skyline member under no preference.
    for (x, g) in [(1.0, 0), (2.0, 1), (3.0, 2), (7.0, 0), (8.0, 1), (9.0, 2)] {
        data.push_row_ids(&[x], &[g]).unwrap();
    }
    let template = Template::empty(&schema);
    let shared = SharedEngine::new(
        SkylineEngine::build(Arc::new(data), template, EngineConfig::Hybrid { top_k: 3 }).unwrap(),
    );
    let pref = Preference::none(1);
    // The invariant: the skyline is always the three minimal rows, by value.
    let expected: Vec<(i64, ValueId)> = vec![(1, 0), (2, 1), (3, 2)];

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let shared_ref = &shared;
        let done_ref = &done;
        let expected_ref = &expected;
        let pref_ref = &pref;
        for _ in 0..3 {
            scope.spawn(move || {
                let mut scratch = EngineScratch::default();
                while !done_ref.load(Ordering::Relaxed) {
                    let engine = shared_ref.read();
                    let epoch = engine.epoch();
                    // Never EpochMismatch: epoch and query run under one guard.
                    let outcome = engine.query_at(pref_ref, epoch, &mut scratch).unwrap();
                    let mut values: Vec<(i64, ValueId)> = outcome
                        .skyline
                        .iter()
                        .map(|&p| {
                            assert!(engine.is_row_live(p), "torn result: dead row {p} served");
                            (
                                engine.dataset().numeric(p, 0) as i64,
                                engine.dataset().nominal(p, 0),
                            )
                        })
                        .collect();
                    values.sort_unstable();
                    assert_eq!(&values, expected_ref, "torn result at {epoch}");
                }
            });
        }
        // Writer: churn dominated rows and rebuild generations under the readers.
        for round in 0..60 {
            shared
                .write()
                .insert_row(&[50.0 + round as f64], &[(round % 3) as ValueId])
                .unwrap();
            let last = (shared.read().dataset().len() - 1) as PointId;
            shared.write().delete_row(last).unwrap();
            if round % 5 == 0 {
                shared.rebuild_now().unwrap();
            }
        }
        // One closing rebuild reclaims the tombstones of the final rounds.
        shared.rebuild_now().unwrap();
        done.store(true, Ordering::Relaxed);
    });

    let engine = shared.read();
    assert!(engine.maintenance_stats().rebuilds >= 13);
    assert_eq!(
        engine.dataset().len(),
        6,
        "every dominated row was reclaimed"
    );
}
