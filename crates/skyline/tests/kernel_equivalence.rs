//! Property-based equivalence of the compiled dominance kernel and the parallel
//! preprocessing path against their reference implementations.
//!
//! Three contracts are pinned here:
//!
//! 1. [`CompiledRelation`] ≡ [`DominanceContext`]: `dominates` and `compare` agree on every
//!    point pair, for random datasets, templates and query preferences.
//! 2. Packed ≡ scalar ≡ reference on every path that scans a window: the bit-parallel
//!    64-lane kernel ([`KernelMode::Packed`], the runtime default), the scalar compiled
//!    walk it falls back to, and the reference context produce identical skylines through
//!    BNL, the SFS dense-window scan, and the cross-fragment `merge_skylines` operator —
//!    across 2–8 total dimensions, ragged window lengths straddling the 64/128 lane-block
//!    boundaries, and both all-ranked and mixed ranked/unranked nominal orders.
//! 3. Parallel divide-and-conquer preprocessing ≡ serial: `AdaptiveSfs::build_with_workers`
//!    produces a **bit-for-bit identical** sorted list for any worker count, and engines of
//!    every [`EngineConfig`] answer queries identically no matter how their Adaptive SFS
//!    structure was preprocessed.

use proptest::prelude::*;
use skyline::prelude::*;
use skyline_core::algo::{bnl, sfs};
use skyline_core::score::ScoreFn;
use skyline_core::{merge_skylines, with_kernel_mode, KernelMode, PartialOrder};

/// A compact description of a random test instance.
#[derive(Debug, Clone)]
struct Instance {
    numeric: Vec<Vec<f64>>,
    nominal: Vec<Vec<ValueId>>,
    cardinalities: Vec<usize>,
    /// Per nominal dimension: the query's ordered choice list.
    query_choices: Vec<Vec<ValueId>>,
    /// Whether the template prefers the most frequent value.
    template_most_frequent: bool,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    // 2 numeric dimensions, 2 nominal dimensions with cardinalities 3 and 4.
    let cardinalities = vec![3usize, 4usize];
    let n = 1usize..48;
    n.prop_flat_map(move |rows| {
        let cards = cardinalities.clone();
        let numeric = proptest::collection::vec(
            proptest::collection::vec(0i32..6, rows)
                .prop_map(|v| v.into_iter().map(f64::from).collect()),
            2,
        );
        let nominal = cards
            .iter()
            .map(|&c| proptest::collection::vec(0..(c as ValueId), rows))
            .collect::<Vec<_>>();
        let query = cards
            .iter()
            .map(|&c| {
                proptest::sample::subsequence((0..c as ValueId).collect::<Vec<_>>(), 0..=c.min(3))
                    .prop_shuffle()
            })
            .collect::<Vec<_>>();
        (numeric, nominal, query, any::<bool>()).prop_map(
            move |(numeric, nominal, query_choices, tmpl)| Instance {
                numeric,
                nominal,
                cardinalities: cards.clone(),
                query_choices,
                template_most_frequent: tmpl,
            },
        )
    })
}

fn build_dataset(instance: &Instance) -> std::sync::Arc<Dataset> {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::numeric("y"),
        Dimension::nominal("g", NominalDomain::anonymous(instance.cardinalities[0])),
        Dimension::nominal("h", NominalDomain::anonymous(instance.cardinalities[1])),
    ])
    .unwrap();
    std::sync::Arc::new(
        Dataset::from_columns(schema, instance.numeric.clone(), instance.nominal.clone()).unwrap(),
    )
}

fn build_template(data: &Dataset, instance: &Instance) -> Template {
    if instance.template_most_frequent {
        Template::most_frequent_value(data).unwrap()
    } else {
        Template::empty(data.schema())
    }
}

/// Builds the query so that it refines the template (template prefix first).
fn build_query(template: &Template, instance: &Instance) -> Preference {
    let mut pref = Preference::none(2);
    for j in 0..2 {
        let mut choices: Vec<ValueId> = template
            .implicit()
            .map(|t| t.dim(j).choices().to_vec())
            .unwrap_or_default();
        for &v in &instance.query_choices[j] {
            if !choices.contains(&v) {
                choices.push(v);
            }
        }
        pref.set_dim(j, ImplicitPreference::new(choices).unwrap());
    }
    pref
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn kernel_agrees_with_dominance_context_on_every_pair(instance in instance_strategy()) {
        let data = build_dataset(&instance);
        let template = build_template(&data, &instance);
        let query = build_query(&template, &instance);

        let ctx = DominanceContext::for_query(&data, &template, &query).unwrap();
        let kernel = CompiledRelation::compile_query(&data, &template, &query).unwrap();
        for p in data.point_ids() {
            for q in data.point_ids() {
                prop_assert_eq!(
                    kernel.dominates(p, q),
                    ctx.dominates(p, q),
                    "dominates({}, {})", p, q
                );
                prop_assert_eq!(
                    kernel.compare(p, q),
                    ctx.compare(p, q),
                    "compare({}, {})", p, q
                );
            }
        }

        // Template-only relations must agree as well (the preprocessing path).
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        let kernel = CompiledRelation::for_template(
            std::sync::Arc::new(PointBlock::new(&data)),
            &template,
        )
        .unwrap();
        for p in data.point_ids() {
            for q in data.point_ids() {
                prop_assert_eq!(kernel.dominates(p, q), ctx.dominates(p, q));
                prop_assert_eq!(kernel.compare(p, q), ctx.compare(p, q));
            }
        }
    }

    #[test]
    fn parallel_preprocessing_is_bit_for_bit_serial(instance in instance_strategy()) {
        let data = build_dataset(&instance);
        let template = build_template(&data, &instance);
        let query = build_query(&template, &instance);

        let serial = AdaptiveSfs::build_serial(data.clone(), &template).unwrap();
        prop_assert_eq!(serial.preprocess_stats().workers, 1);
        for workers in [2, 3, 4, 7] {
            let parallel =
                AdaptiveSfs::build_with_workers(data.clone(), &template, workers).unwrap();
            prop_assert_eq!(parallel.preprocess_stats().workers, workers);
            // Bit-for-bit: identical entries (points AND f64 scores) in identical order.
            prop_assert_eq!(
                serial.sorted_entries(),
                parallel.sorted_entries(),
                "workers = {}", workers
            );
            prop_assert_eq!(serial.template_skyline(), parallel.template_skyline());
            prop_assert_eq!(
                serial.query(&query).unwrap(),
                parallel.query(&query).unwrap()
            );
        }
    }

    #[test]
    fn every_engine_config_answers_identically_under_parallel_preprocessing(
        instance in instance_strategy()
    ) {
        let data = build_dataset(&instance);
        let template = build_template(&data, &instance);
        let query = build_query(&template, &instance);

        let ctx = DominanceContext::for_query(&data, &template, &query).unwrap();
        let expected = bnl::skyline(&ctx);
        let configs = [
            EngineConfig::SfsD,
            EngineConfig::AdaptiveSfs,
            EngineConfig::IpoTree,
            EngineConfig::BitmapIpoTree,
            EngineConfig::Hybrid { top_k: 2 },
        ];
        for config in configs {
            let engine =
                SkylineEngine::build(data.clone(), template.clone(), config).unwrap();
            prop_assert_eq!(
                &engine.query(&query).unwrap().skyline,
                &expected,
                "config {:?}", config
            );
            // Scratch reuse must not change answers: ask twice through one scratch.
            let mut scratch = EngineScratch::new();
            prop_assert_eq!(
                &engine.query_with_scratch(&query, &mut scratch).unwrap().skyline,
                &expected,
                "scratch first pass, config {:?}", config
            );
            prop_assert_eq!(
                &engine.query_with_scratch(&query, &mut scratch).unwrap().skyline,
                &expected,
                "scratch second pass, config {:?}", config
            );
        }
    }
}

/// A random instance over the widened design space the packed kernel monomorphizes on:
/// 1–4 numeric × 1–4 nominal dimensions (2–8 total), row counts chosen to straddle the
/// 64-lane block boundaries, and per-dimension partial orders that may or may not be
/// layered-rank representable (mixed ranked/unranked).
#[derive(Debug, Clone)]
struct WideInstance {
    numeric: Vec<Vec<f64>>,
    nominal: Vec<Vec<ValueId>>,
    cardinalities: Vec<usize>,
    /// Per nominal dimension: acyclic `a ≺ b` edges defining a general partial order.
    edges: Vec<Vec<(ValueId, ValueId)>>,
    /// Per nominal dimension: the ordered choice list for the implicit-preference query.
    query_choices: Vec<Vec<ValueId>>,
}

fn wide_instance_strategy() -> impl Strategy<Value = WideInstance> {
    let rows = prop_oneof![
        1usize..48,     // the classic small windows
        60usize..70,    // ragged around one lane block (63/64/65)
        Just(128usize), // exactly two full blocks
        125usize..132,  // ragged around two blocks
    ];
    (1usize..=4, 1usize..=4, rows).prop_flat_map(|(nd, md, n)| {
        let cards: Vec<usize> = (0..md).map(|j| 3 + (j % 3)).collect();
        let numeric = proptest::collection::vec(
            proptest::collection::vec(0i32..5, n)
                .prop_map(|v| v.into_iter().map(f64::from).collect::<Vec<f64>>()),
            nd,
        );
        let nominal = cards
            .iter()
            .map(|&c| proptest::collection::vec(0..(c as ValueId), n))
            .collect::<Vec<_>>();
        // Only `a < b` edges, so `from_pairs` always gets a DAG. Dense edge sets close
        // into weak (ranked) orders, sparse ones leave incomparable islands (unranked);
        // both shapes show up, which is the point.
        let edges = cards
            .iter()
            .map(|&c| {
                let all: Vec<(ValueId, ValueId)> = (0..c as ValueId)
                    .flat_map(|a| (a + 1..c as ValueId).map(move |b| (a, b)))
                    .collect();
                let top = all.len().min(4);
                proptest::sample::subsequence(all, 0..=top)
            })
            .collect::<Vec<_>>();
        let query = cards
            .iter()
            .map(|&c| {
                proptest::sample::subsequence((0..c as ValueId).collect::<Vec<_>>(), 0..=c.min(3))
                    .prop_shuffle()
            })
            .collect::<Vec<_>>();
        (numeric, nominal, edges, query).prop_map(
            move |(numeric, nominal, edges, query_choices)| WideInstance {
                numeric,
                nominal,
                cardinalities: cards.clone(),
                edges,
                query_choices,
            },
        )
    })
}

fn build_wide_dataset(instance: &WideInstance) -> std::sync::Arc<Dataset> {
    let mut dims = Vec::new();
    let names = ["a", "b", "c", "d", "g", "h", "i", "j"];
    for (i, _) in instance.numeric.iter().enumerate() {
        dims.push(Dimension::numeric(names[i]));
    }
    for (j, &card) in instance.cardinalities.iter().enumerate() {
        dims.push(Dimension::nominal(
            names[4 + j],
            NominalDomain::anonymous(card),
        ));
    }
    let schema = Schema::new(dims).unwrap();
    std::sync::Arc::new(
        Dataset::from_columns(schema, instance.numeric.clone(), instance.nominal.clone()).unwrap(),
    )
}

/// Pins packed ≡ scalar ≡ reference on both window walks: BNL against the reference BNL
/// skyline (`expected`), and the SFS presorted scan against the reference context's scan
/// over the same `sorted` order. The scan is compared scan-to-scan, not scan-to-BNL: a
/// score that is merely weakly monotone (ties broken by id) makes SFS output order-
/// dependent, and all three implementations must be order-dependent *identically*.
fn assert_all_paths_match<D: Dominance>(
    dom: &D,
    sorted: &[PointId],
    all: &[PointId],
    expected: &[PointId],
    expected_scan: &[PointId],
    what: &str,
) {
    let packed = with_kernel_mode(KernelMode::Packed, || bnl::skyline_of(dom, all));
    let scalar = with_kernel_mode(KernelMode::Scalar, || bnl::skyline_of(dom, all));
    assert_eq!(&packed, expected, "packed bnl vs reference ({what})");
    assert_eq!(&scalar, expected, "scalar bnl vs reference ({what})");
    let packed_scan = with_kernel_mode(KernelMode::Packed, || sfs::scan_presorted(dom, sorted));
    let scalar_scan = with_kernel_mode(KernelMode::Scalar, || sfs::scan_presorted(dom, sorted));
    assert_eq!(
        &packed_scan, expected_scan,
        "packed sfs vs reference ({what})"
    );
    assert_eq!(
        &scalar_scan, expected_scan,
        "scalar sfs vs reference ({what})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Packed ≡ scalar ≡ reference under **general partial-order templates** (mixed
    /// ranked/unranked dimensions) on wide schemas and lane-boundary window lengths, for
    /// the BNL window, the SFS dense-window scan, and the cross-fragment merge.
    #[test]
    fn packed_scalar_and_reference_agree_on_wide_templates(
        instance in wide_instance_strategy()
    ) {
        let data = build_wide_dataset(&instance);
        let orders: Vec<PartialOrder> = instance
            .cardinalities
            .iter()
            .zip(&instance.edges)
            .map(|(&c, edges)| PartialOrder::from_pairs(c, edges.iter().copied()).unwrap())
            .collect();
        let template = Template::from_partial_orders(data.schema(), orders).unwrap();

        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        let kernel =
            CompiledRelation::for_template(std::sync::Arc::new(PointBlock::new(&data)), &template)
                .unwrap();

        // Pair-for-pair agreement (bounded: the pairwise loop is O(n²) and the packed
        // paths are covered by the scan assertions below at every size).
        let all: Vec<PointId> = data.point_ids().collect();
        if all.len() <= 48 {
            for &p in &all {
                for &q in &all {
                    prop_assert_eq!(
                        kernel.dominates(p, q),
                        ctx.dominates(p, q),
                        "dominates({}, {})", p, q
                    );
                }
            }
        }

        let expected = bnl::skyline_of(&ctx, &all);
        let score = ScoreFn::default_ranking(data.schema());
        let sorted = score.sort_by_score(&data, &all);
        let expected_scan = sfs::scan_presorted(&ctx, &sorted);
        assert_all_paths_match(&kernel, &sorted, &all, &expected, &expected_scan, "template");

        // Cross-fragment merge: 3-way ragged split, fragment skylines merged back must
        // equal the global skyline, packed and scalar alike.
        let fragments: Vec<Vec<PointId>> = (0..3)
            .map(|s| {
                let rows: Vec<PointId> =
                    all.iter().copied().filter(|p| p % 3 == s).collect();
                with_kernel_mode(KernelMode::Scalar, || bnl::skyline_of(&kernel, &rows))
            })
            .collect();
        let views: Vec<&[PointId]> = fragments.iter().map(Vec::as_slice).collect();
        let mut merged_packed =
            with_kernel_mode(KernelMode::Packed, || merge_skylines(&kernel, &views));
        let mut merged_scalar =
            with_kernel_mode(KernelMode::Scalar, || merge_skylines(&kernel, &views));
        merged_packed.sort_unstable();
        merged_scalar.sort_unstable();
        prop_assert_eq!(&merged_packed, &expected, "packed merge vs reference");
        prop_assert_eq!(&merged_scalar, &expected, "scalar merge vs reference");
    }

    /// The same three-way agreement under **implicit-preference queries** (the paper's
    /// all-ranked form) on wide schemas, through the query-compiled kernel.
    #[test]
    fn packed_scalar_and_reference_agree_on_wide_queries(
        instance in wide_instance_strategy()
    ) {
        let data = build_wide_dataset(&instance);
        let template = Template::empty(data.schema());
        let mut query = Preference::none(instance.cardinalities.len());
        for (j, choices) in instance.query_choices.iter().enumerate() {
            query.set_dim(j, ImplicitPreference::new(choices.clone()).unwrap());
        }

        let ctx = DominanceContext::for_query(&data, &template, &query).unwrap();
        let kernel = CompiledRelation::compile_query(&data, &template, &query).unwrap();
        let all: Vec<PointId> = data.point_ids().collect();
        if all.len() <= 48 {
            for &p in &all {
                for &q in &all {
                    prop_assert_eq!(
                        kernel.dominates(p, q),
                        ctx.dominates(p, q),
                        "dominates({}, {})", p, q
                    );
                }
            }
        }

        let expected = bnl::skyline_of(&ctx, &all);
        let score = ScoreFn::for_preference(data.schema(), &query).unwrap();
        let sorted = score.sort_by_score(&data, &all);
        // `for_preference` scores are monotone w.r.t. query dominance, so here the scan
        // must also equal the BNL skyline (up to order).
        let expected_scan = sfs::scan_presorted(&ctx, &sorted);
        let mut scan_sorted = expected_scan.clone();
        scan_sorted.sort_unstable();
        assert_eq!(&scan_sorted, &expected, "reference scan vs reference bnl");
        assert_all_paths_match(&kernel, &sorted, &all, &expected, &expected_scan, "query");
    }
}

/// Deterministic spot check: the auto-parallel `build` and the pinned variants agree on a
/// dataset large enough to cross the parallel threshold.
#[test]
fn auto_build_matches_serial_on_a_large_dataset() {
    let config = ExperimentConfig {
        n: 6000,
        numeric_dims: 2,
        nominal_dims: 2,
        cardinality: 5,
        theta: 1.0,
        pref_order: 2,
        distribution: Distribution::AntiCorrelated,
        seed: 11,
    };
    let data = std::sync::Arc::new(config.generate_dataset());
    let template = config.template(&data);
    let auto = AdaptiveSfs::build(data.clone(), &template).unwrap();
    let serial = AdaptiveSfs::build_serial(data.clone(), &template).unwrap();
    let four = AdaptiveSfs::build_with_workers(data, &template, 4).unwrap();
    assert_eq!(auto.sorted_entries(), serial.sorted_entries());
    assert_eq!(serial.sorted_entries(), four.sorted_entries());
    assert_eq!(four.preprocess_stats().workers, 4);
    assert!(auto.preprocess_stats().workers >= 1);
}
