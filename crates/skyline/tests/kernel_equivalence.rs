//! Property-based equivalence of the compiled dominance kernel and the parallel
//! preprocessing path against their reference implementations.
//!
//! Two contracts are pinned here:
//!
//! 1. [`CompiledRelation`] ≡ [`DominanceContext`]: `dominates` and `compare` agree on every
//!    point pair, for random datasets, templates and query preferences.
//! 2. Parallel divide-and-conquer preprocessing ≡ serial: `AdaptiveSfs::build_with_workers`
//!    produces a **bit-for-bit identical** sorted list for any worker count, and engines of
//!    every [`EngineConfig`] answer queries identically no matter how their Adaptive SFS
//!    structure was preprocessed.

use proptest::prelude::*;
use skyline::prelude::*;
use skyline_core::algo::bnl;

/// A compact description of a random test instance.
#[derive(Debug, Clone)]
struct Instance {
    numeric: Vec<Vec<f64>>,
    nominal: Vec<Vec<ValueId>>,
    cardinalities: Vec<usize>,
    /// Per nominal dimension: the query's ordered choice list.
    query_choices: Vec<Vec<ValueId>>,
    /// Whether the template prefers the most frequent value.
    template_most_frequent: bool,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    // 2 numeric dimensions, 2 nominal dimensions with cardinalities 3 and 4.
    let cardinalities = vec![3usize, 4usize];
    let n = 1usize..48;
    n.prop_flat_map(move |rows| {
        let cards = cardinalities.clone();
        let numeric = proptest::collection::vec(
            proptest::collection::vec(0i32..6, rows)
                .prop_map(|v| v.into_iter().map(f64::from).collect()),
            2,
        );
        let nominal = cards
            .iter()
            .map(|&c| proptest::collection::vec(0..(c as ValueId), rows))
            .collect::<Vec<_>>();
        let query = cards
            .iter()
            .map(|&c| {
                proptest::sample::subsequence((0..c as ValueId).collect::<Vec<_>>(), 0..=c.min(3))
                    .prop_shuffle()
            })
            .collect::<Vec<_>>();
        (numeric, nominal, query, any::<bool>()).prop_map(
            move |(numeric, nominal, query_choices, tmpl)| Instance {
                numeric,
                nominal,
                cardinalities: cards.clone(),
                query_choices,
                template_most_frequent: tmpl,
            },
        )
    })
}

fn build_dataset(instance: &Instance) -> std::sync::Arc<Dataset> {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::numeric("y"),
        Dimension::nominal("g", NominalDomain::anonymous(instance.cardinalities[0])),
        Dimension::nominal("h", NominalDomain::anonymous(instance.cardinalities[1])),
    ])
    .unwrap();
    std::sync::Arc::new(
        Dataset::from_columns(schema, instance.numeric.clone(), instance.nominal.clone()).unwrap(),
    )
}

fn build_template(data: &Dataset, instance: &Instance) -> Template {
    if instance.template_most_frequent {
        Template::most_frequent_value(data).unwrap()
    } else {
        Template::empty(data.schema())
    }
}

/// Builds the query so that it refines the template (template prefix first).
fn build_query(template: &Template, instance: &Instance) -> Preference {
    let mut pref = Preference::none(2);
    for j in 0..2 {
        let mut choices: Vec<ValueId> = template
            .implicit()
            .map(|t| t.dim(j).choices().to_vec())
            .unwrap_or_default();
        for &v in &instance.query_choices[j] {
            if !choices.contains(&v) {
                choices.push(v);
            }
        }
        pref.set_dim(j, ImplicitPreference::new(choices).unwrap());
    }
    pref
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn kernel_agrees_with_dominance_context_on_every_pair(instance in instance_strategy()) {
        let data = build_dataset(&instance);
        let template = build_template(&data, &instance);
        let query = build_query(&template, &instance);

        let ctx = DominanceContext::for_query(&data, &template, &query).unwrap();
        let kernel = CompiledRelation::compile_query(&data, &template, &query).unwrap();
        for p in data.point_ids() {
            for q in data.point_ids() {
                prop_assert_eq!(
                    kernel.dominates(p, q),
                    ctx.dominates(p, q),
                    "dominates({}, {})", p, q
                );
                prop_assert_eq!(
                    kernel.compare(p, q),
                    ctx.compare(p, q),
                    "compare({}, {})", p, q
                );
            }
        }

        // Template-only relations must agree as well (the preprocessing path).
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        let kernel = CompiledRelation::for_template(
            std::sync::Arc::new(PointBlock::new(&data)),
            &template,
        )
        .unwrap();
        for p in data.point_ids() {
            for q in data.point_ids() {
                prop_assert_eq!(kernel.dominates(p, q), ctx.dominates(p, q));
                prop_assert_eq!(kernel.compare(p, q), ctx.compare(p, q));
            }
        }
    }

    #[test]
    fn parallel_preprocessing_is_bit_for_bit_serial(instance in instance_strategy()) {
        let data = build_dataset(&instance);
        let template = build_template(&data, &instance);
        let query = build_query(&template, &instance);

        let serial = AdaptiveSfs::build_serial(data.clone(), &template).unwrap();
        prop_assert_eq!(serial.preprocess_stats().workers, 1);
        for workers in [2, 3, 4, 7] {
            let parallel =
                AdaptiveSfs::build_with_workers(data.clone(), &template, workers).unwrap();
            prop_assert_eq!(parallel.preprocess_stats().workers, workers);
            // Bit-for-bit: identical entries (points AND f64 scores) in identical order.
            prop_assert_eq!(
                serial.sorted_entries(),
                parallel.sorted_entries(),
                "workers = {}", workers
            );
            prop_assert_eq!(serial.template_skyline(), parallel.template_skyline());
            prop_assert_eq!(
                serial.query(&query).unwrap(),
                parallel.query(&query).unwrap()
            );
        }
    }

    #[test]
    fn every_engine_config_answers_identically_under_parallel_preprocessing(
        instance in instance_strategy()
    ) {
        let data = build_dataset(&instance);
        let template = build_template(&data, &instance);
        let query = build_query(&template, &instance);

        let ctx = DominanceContext::for_query(&data, &template, &query).unwrap();
        let expected = bnl::skyline(&ctx);
        let configs = [
            EngineConfig::SfsD,
            EngineConfig::AdaptiveSfs,
            EngineConfig::IpoTree,
            EngineConfig::BitmapIpoTree,
            EngineConfig::Hybrid { top_k: 2 },
        ];
        for config in configs {
            let engine =
                SkylineEngine::build(data.clone(), template.clone(), config).unwrap();
            prop_assert_eq!(
                &engine.query(&query).unwrap().skyline,
                &expected,
                "config {:?}", config
            );
            // Scratch reuse must not change answers: ask twice through one scratch.
            let mut scratch = EngineScratch::new();
            prop_assert_eq!(
                &engine.query_with_scratch(&query, &mut scratch).unwrap().skyline,
                &expected,
                "scratch first pass, config {:?}", config
            );
            prop_assert_eq!(
                &engine.query_with_scratch(&query, &mut scratch).unwrap().skyline,
                &expected,
                "scratch second pass, config {:?}", config
            );
        }
    }
}

/// Deterministic spot check: the auto-parallel `build` and the pinned variants agree on a
/// dataset large enough to cross the parallel threshold.
#[test]
fn auto_build_matches_serial_on_a_large_dataset() {
    let config = ExperimentConfig {
        n: 6000,
        numeric_dims: 2,
        nominal_dims: 2,
        cardinality: 5,
        theta: 1.0,
        pref_order: 2,
        distribution: Distribution::AntiCorrelated,
        seed: 11,
    };
    let data = std::sync::Arc::new(config.generate_dataset());
    let template = config.template(&data);
    let auto = AdaptiveSfs::build(data.clone(), &template).unwrap();
    let serial = AdaptiveSfs::build_serial(data.clone(), &template).unwrap();
    let four = AdaptiveSfs::build_with_workers(data, &template, 4).unwrap();
    assert_eq!(auto.sorted_entries(), serial.sorted_entries());
    assert_eq!(serial.sorted_entries(), four.sorted_entries());
    assert_eq!(four.preprocess_stats().workers, 4);
    assert!(auto.preprocess_stats().workers >= 1);
}
