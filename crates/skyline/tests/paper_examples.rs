//! Integration tests that reproduce every worked example of the paper:
//! Table 1/2 (customer preferences), Table 3 + Figure 2 (IPO-tree contents) and Example 1 /
//! Figure 3 (query evaluation walkthrough).

use skyline::prelude::*;

/// Table 1: vacation packages with one nominal attribute.
fn table1() -> std::sync::Arc<Dataset> {
    let schema = Schema::new(vec![
        Dimension::numeric("price"),
        Dimension::numeric("class-neg"),
        Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
    ])
    .unwrap();
    let mut b = DatasetBuilder::new(schema);
    for (price, class, group) in [
        (1600.0, 4.0, "T"),
        (2400.0, 1.0, "T"),
        (3000.0, 5.0, "H"),
        (3600.0, 4.0, "H"),
        (2400.0, 2.0, "M"),
        (3000.0, 3.0, "M"),
    ] {
        b.push_row([RowValue::Num(price), RowValue::Num(-class), group.into()])
            .unwrap();
    }
    std::sync::Arc::new(b.build().unwrap())
}

/// Table 3: the same packages with a second nominal attribute (airline).
fn table3() -> std::sync::Arc<Dataset> {
    let schema = Schema::new(vec![
        Dimension::numeric("price"),
        Dimension::numeric("class-neg"),
        Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
        Dimension::nominal_with_labels("airline", ["G", "R", "W"]),
    ])
    .unwrap();
    let mut b = DatasetBuilder::new(schema);
    for (price, class, group, airline) in [
        (1600.0, 4.0, "T", "G"),
        (2400.0, 1.0, "T", "G"),
        (3000.0, 5.0, "H", "G"),
        (3600.0, 4.0, "H", "R"),
        (2400.0, 2.0, "M", "R"),
        (3000.0, 3.0, "M", "W"),
    ] {
        b.push_row([
            RowValue::Num(price),
            RowValue::Num(-class),
            group.into(),
            airline.into(),
        ])
        .unwrap();
    }
    std::sync::Arc::new(b.build().unwrap())
}

/// Package names in row order, for readable assertions.
const NAMES: [&str; 6] = ["a", "b", "c", "d", "e", "f"];

fn named(skyline: &[PointId]) -> Vec<&'static str> {
    skyline.iter().map(|&p| NAMES[p as usize]).collect()
}

#[test]
fn table2_customer_preferences() {
    let data = table1();
    let template = Template::empty(data.schema());
    // Every engine configuration must reproduce Table 2 exactly.
    let configs = [
        EngineConfig::SfsD,
        EngineConfig::AdaptiveSfs,
        EngineConfig::IpoTree,
        EngineConfig::BitmapIpoTree,
        EngineConfig::Hybrid { top_k: 2 },
    ];
    let customers = [
        ("Alice", "T < M < *", vec!["a", "c"]),
        ("Bob", "*", vec!["a", "c", "e", "f"]),
        ("Chris", "H < M < *", vec!["a", "c", "e"]),
        ("David", "H < M < T", vec!["a", "c", "e"]),
        ("Emily", "H < T < *", vec!["a", "c"]),
        ("Fred", "M < *", vec!["a", "c", "e", "f"]),
    ];
    for config in configs {
        let engine = SkylineEngine::build(data.clone(), template.clone(), config).unwrap();
        for (customer, pref_text, expected) in &customers {
            let pref = Preference::parse(data.schema(), [("hotel-group", *pref_text)]).unwrap();
            let outcome = engine.query(&pref).unwrap();
            assert_eq!(
                &named(&outcome.skyline),
                expected,
                "{customer} under {config:?}"
            );
        }
    }
}

#[test]
fn figure2_ipo_tree_contents() {
    let data = table3();
    let template = Template::empty(data.schema());
    let tree = IpoTreeBuilder::new().build(&data, &template).unwrap();

    // Root: S = {a, c, d, e, f}; 21 nodes in total.
    assert_eq!(named(tree.skyline()), vec!["a", "c", "d", "e", "f"]);
    assert_eq!(tree.node_count(), 21);

    // Node 6 of Figure 2 ("T ≺ ∗, G ≺ ∗") has A = {d, e, f}.
    let node = tree.node_for_choices(&[Some(0), Some(0)]).unwrap();
    assert_eq!(named(tree.node(node).disqualified()), vec!["d", "e", "f"]);
    // Figure 2 also shows A = {d, f} under "H ≺ ∗, G ≺ ∗" and A = {d} under "M ≺ ∗, G ≺ ∗"
    // and under "φ, G ≺ ∗".
    let node = tree.node_for_choices(&[Some(1), Some(0)]).unwrap();
    assert_eq!(named(tree.node(node).disqualified()), vec!["d", "f"]);
    let node = tree.node_for_choices(&[Some(2), Some(0)]).unwrap();
    assert_eq!(named(tree.node(node).disqualified()), vec!["d"]);
    let node = tree.node_for_choices(&[None, Some(0)]).unwrap();
    assert_eq!(named(tree.node(node).disqualified()), vec!["d"]);
    // The R ≺ ∗ and W ≺ ∗ airline children disqualify nothing, as drawn.
    for group_choice in [None, Some(0), Some(1), Some(2)] {
        for airline in [1u16, 2u16] {
            let node = tree
                .node_for_choices(&[group_choice, Some(airline)])
                .unwrap();
            assert!(
                tree.node(node).disqualified().is_empty(),
                "{group_choice:?}, airline {airline}"
            );
        }
    }
}

#[test]
fn example1_query_walkthrough() {
    let data = table3();
    let template = Template::empty(data.schema());
    let tree = IpoTreeBuilder::new().build(&data, &template).unwrap();

    // Q_A = "M ≺ ∗"                          → {a, c, d, e, f}
    let q_a = Preference::parse(data.schema(), [("hotel-group", "M < *")]).unwrap();
    assert_eq!(
        named(&tree.query(&data, &q_a).unwrap()),
        vec!["a", "c", "d", "e", "f"]
    );

    // Q_B = "M ≺ ∗, G ≺ ∗"                   → {a, c, e, f}
    let q_b = Preference::parse(
        data.schema(),
        [("hotel-group", "M < *"), ("airline", "G < *")],
    )
    .unwrap();
    assert_eq!(
        named(&tree.query(&data, &q_b).unwrap()),
        vec!["a", "c", "e", "f"]
    );

    // Q_C = "M ≺ H ≺ ∗, G ≺ ∗"               → {a, c, e, f}
    let q_c = Preference::parse(
        data.schema(),
        [("hotel-group", "M < H < *"), ("airline", "G < *")],
    )
    .unwrap();
    assert_eq!(
        named(&tree.query(&data, &q_c).unwrap()),
        vec!["a", "c", "e", "f"]
    );

    // Q_D = "M ≺ H ≺ ∗, G ≺ R ≺ ∗" (Figure 3) → {a, c, e, f}, evaluated through 4 leaves.
    let q_d = Preference::parse(
        data.schema(),
        [("hotel-group", "M < H < *"), ("airline", "G < R < *")],
    )
    .unwrap();
    let (result, stats) = tree.query_with_stats(&data, &q_d).unwrap();
    assert_eq!(named(&result), vec!["a", "c", "e", "f"]);
    assert_eq!(
        stats.leaf_results, 4,
        "Figure 3 processes 4 leaf sub-queries"
    );
}

#[test]
fn figure1_merging_property_example() {
    // Figure 1: SKY(M ≺ ∗) = {a, c, e, f}, SKY(H ≺ ∗) = {a, c, e}, PSKY = {e, f},
    // SKY(M ≺ H ≺ ∗) = (SKY1 ∩ SKY2) ∪ PSKY1 = {a, c, e, f}   (over the Table 1 data).
    let data = table1();
    let template = Template::empty(data.schema());
    let engine = SkylineEngine::build(data.clone(), template, EngineConfig::SfsD).unwrap();

    let sky1 = engine
        .query(&Preference::parse(data.schema(), [("hotel-group", "M < *")]).unwrap())
        .unwrap()
        .skyline;
    let sky2 = engine
        .query(&Preference::parse(data.schema(), [("hotel-group", "H < *")]).unwrap())
        .unwrap()
        .skyline;
    let sky3 = engine
        .query(&Preference::parse(data.schema(), [("hotel-group", "M < H < *")]).unwrap())
        .unwrap()
        .skyline;
    assert_eq!(named(&sky1), vec!["a", "c", "e", "f"]);
    assert_eq!(named(&sky2), vec!["a", "c", "e"]);
    assert_eq!(named(&sky3), vec!["a", "c", "e", "f"]);

    // Recombine by hand exactly as Theorem 2 prescribes.
    let psky1: Vec<PointId> = sky1
        .iter()
        .copied()
        .filter(|&p| data.nominal_label(p, 0) == "M")
        .collect();
    assert_eq!(named(&psky1), vec!["e", "f"]);
    let mut merged: Vec<PointId> = sky1.iter().copied().filter(|p| sky2.contains(p)).collect();
    for p in psky1 {
        if !merged.contains(&p) {
            merged.push(p);
        }
    }
    merged.sort_unstable();
    assert_eq!(merged, sky3);
}

#[test]
fn nursery_real_data_setup_matches_section_5_2() {
    // 12,960 instances, 8 attributes, two nominal attributes of cardinality 4.
    let data = std::sync::Arc::new(skyline::datagen::nursery::generate());
    assert_eq!(data.len(), 12_960);
    assert_eq!(data.schema().arity(), 8);
    assert_eq!(data.schema().nominal_count(), 2);
    assert_eq!(data.schema().nominal_cardinalities(), vec![4, 4]);

    // The paper's algorithms all agree on it with the default template.
    let template = Template::most_frequent_value(&data).unwrap();
    let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
    let engine =
        SkylineEngine::build(data.clone(), template.clone(), EngineConfig::IpoTree).unwrap();
    let pref = Preference::parse(
        data.schema(),
        [
            ("form", "complete < foster < *"),
            ("children", "1 < more < *"),
        ],
    )
    .unwrap();
    let from_tree = engine.query(&pref).unwrap().skyline;
    let from_asfs = asfs.query(&pref).unwrap();
    assert_eq!(from_tree, from_asfs);
    assert!(!from_tree.is_empty());
}
