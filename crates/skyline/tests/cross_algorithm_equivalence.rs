//! Property-based cross-algorithm equivalence: on random datasets and random implicit
//! preferences, every algorithm of the paper (BNL oracle, SFS-D, Adaptive SFS in both scan
//! modes, set-based IPO tree, bitmap IPO tree, hybrid engine) must return exactly the same
//! skyline.

use proptest::prelude::*;
use skyline::prelude::*;
use skyline_core::algo::bnl;

/// A compact description of a random test instance.
#[derive(Debug, Clone)]
struct Instance {
    numeric: Vec<Vec<f64>>,
    nominal: Vec<Vec<ValueId>>,
    cardinalities: Vec<usize>,
    /// Per nominal dimension: the query's ordered choice list.
    query_choices: Vec<Vec<ValueId>>,
    /// Whether the template prefers the most frequent value.
    template_most_frequent: bool,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    // 2 numeric dimensions, 2 nominal dimensions with cardinalities 3 and 4.
    let cardinalities = vec![3usize, 4usize];
    let n = 1usize..40;
    n.prop_flat_map(move |rows| {
        let cards = cardinalities.clone();
        let numeric = proptest::collection::vec(
            proptest::collection::vec(0i32..6, rows)
                .prop_map(|v| v.into_iter().map(f64::from).collect()),
            2,
        );
        let nominal = cards
            .iter()
            .map(|&c| proptest::collection::vec(0..(c as ValueId), rows))
            .collect::<Vec<_>>();
        let query = cards
            .iter()
            .map(|&c| {
                proptest::sample::subsequence((0..c as ValueId).collect::<Vec<_>>(), 0..=c.min(3))
                    .prop_shuffle()
            })
            .collect::<Vec<_>>();
        (numeric, nominal, query, any::<bool>()).prop_map(
            move |(numeric, nominal, query_choices, tmpl)| Instance {
                numeric,
                nominal,
                cardinalities: cards.clone(),
                query_choices,
                template_most_frequent: tmpl,
            },
        )
    })
}

fn build_dataset(instance: &Instance) -> std::sync::Arc<Dataset> {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::numeric("y"),
        Dimension::nominal("g", NominalDomain::anonymous(instance.cardinalities[0])),
        Dimension::nominal("h", NominalDomain::anonymous(instance.cardinalities[1])),
    ])
    .unwrap();
    std::sync::Arc::new(
        Dataset::from_columns(schema, instance.numeric.clone(), instance.nominal.clone()).unwrap(),
    )
}

/// Builds the query so that it refines the template (template prefix first).
fn build_query(data: &Dataset, template: &Template, instance: &Instance) -> Preference {
    let mut pref = Preference::none(2);
    for j in 0..2 {
        let mut choices: Vec<ValueId> = template
            .implicit()
            .map(|t| t.dim(j).choices().to_vec())
            .unwrap_or_default();
        for &v in &instance.query_choices[j] {
            if !choices.contains(&v) {
                choices.push(v);
            }
        }
        pref.set_dim(j, ImplicitPreference::new(choices).unwrap());
    }
    let _ = data;
    pref
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn all_algorithms_return_the_same_skyline(instance in instance_strategy()) {
        let data = build_dataset(&instance);
        let template = if instance.template_most_frequent {
            Template::most_frequent_value(&data).unwrap()
        } else {
            Template::empty(data.schema())
        };
        let query = build_query(&data, &template, &instance);

        // Oracle: brute-force BNL under the combined relation.
        let ctx = DominanceContext::for_query(&data, &template, &query).unwrap();
        let expected = bnl::skyline(&ctx);

        // SFS-D.
        let sfsd = SkylineEngine::build(data.clone(), template.clone(), EngineConfig::SfsD).unwrap();
        prop_assert_eq!(&sfsd.query(&query).unwrap().skyline, &expected);

        // Adaptive SFS, both scan modes.
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
        prop_assert_eq!(&asfs.query(&query).unwrap(), &expected);
        let (full, _) = asfs
            .query_with_stats(&query, skyline::adaptive::ScanMode::FullRescan)
            .unwrap();
        prop_assert_eq!(&full, &expected);
        // Progressive iterator yields the same members.
        let mut streamed: Vec<PointId> = asfs.query_progressive(&query).unwrap().collect();
        streamed.sort_unstable();
        prop_assert_eq!(&streamed, &expected);

        // IPO tree (set-based, both build strategies) and bitmap variant.
        let tree = IpoTreeBuilder::new().build(&data, &template).unwrap();
        prop_assert_eq!(&tree.query(&data, &query).unwrap(), &expected);
        let direct = IpoTreeBuilder::new()
            .strategy(BuildStrategy::Direct)
            .build(&data, &template)
            .unwrap();
        prop_assert_eq!(&direct.query(&data, &query).unwrap(), &expected);
        let bitmap = BitmapIpoTree::from_tree(&tree, &data);
        prop_assert_eq!(&bitmap.query(&data, &query).unwrap(), &expected);

        // Hybrid engine (small top_k so the fallback path is exercised often).
        let hybrid = SkylineEngine::build(data.clone(), template.clone(), EngineConfig::Hybrid { top_k: 2 }).unwrap();
        prop_assert_eq!(&hybrid.query(&query).unwrap().skyline, &expected);
    }

    #[test]
    fn skyline_members_are_never_dominated(instance in instance_strategy()) {
        let data = build_dataset(&instance);
        let template = Template::empty(data.schema());
        let query = build_query(&data, &template, &instance);
        let ctx = DominanceContext::for_query(&data, &template, &query).unwrap();
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
        let skyline = asfs.query(&query).unwrap();
        for &p in &skyline {
            for q in data.point_ids() {
                prop_assert!(!ctx.dominates(q, p), "skyline member {p} is dominated by {q}");
            }
        }
        // And every non-member is dominated by someone.
        for p in data.point_ids() {
            if !skyline.contains(&p) {
                prop_assert!(
                    data.point_ids().any(|q| ctx.dominates(q, p)),
                    "non-member {p} is not dominated"
                );
            }
        }
    }
}

/// A second generator family with *variable shape*: 1–2 numeric dimensions, 1–3 nominal
/// dimensions, cardinalities 2–6 and a narrow numeric value range (dense dominance ties),
/// exercising schema shapes the fixed-shape instances above never produce.
#[derive(Debug, Clone)]
struct WideInstance {
    numeric: Vec<Vec<f64>>,
    nominal: Vec<Vec<ValueId>>,
    cardinality: usize,
    query_choices: Vec<Vec<ValueId>>,
}

fn wide_instance_strategy() -> impl Strategy<Value = WideInstance> {
    (1usize..25, 1usize..=2, 1usize..=3, 2usize..=6).prop_flat_map(
        |(rows, numeric_dims, nominal_dims, card)| {
            let numeric = proptest::collection::vec(
                proptest::collection::vec(0i32..4, rows)
                    .prop_map(|v| v.into_iter().map(f64::from).collect::<Vec<f64>>()),
                numeric_dims,
            );
            let nominal = proptest::collection::vec(
                proptest::collection::vec(0..(card as ValueId), rows),
                nominal_dims,
            );
            let query = proptest::collection::vec(
                proptest::sample::subsequence((0..card as ValueId).collect::<Vec<_>>(), 0..=card)
                    .prop_shuffle(),
                nominal_dims,
            );
            (numeric, nominal, query).prop_map(move |(numeric, nominal, query_choices)| {
                WideInstance {
                    numeric,
                    nominal,
                    cardinality: card,
                    query_choices,
                }
            })
        },
    )
}

fn build_wide_dataset(instance: &WideInstance) -> std::sync::Arc<Dataset> {
    let mut dims = Vec::new();
    for i in 0..instance.numeric.len() {
        dims.push(Dimension::numeric(format!("n{i}")));
    }
    for j in 0..instance.nominal.len() {
        dims.push(Dimension::nominal(
            format!("c{j}"),
            NominalDomain::anonymous(instance.cardinality),
        ));
    }
    let schema = Schema::new(dims).unwrap();
    std::sync::Arc::new(
        Dataset::from_columns(schema, instance.numeric.clone(), instance.nominal.clone()).unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Every engine configuration and every IPO-tree build path (MDC, direct, parallel,
    /// truncated-but-complete top-k) agrees with the BNL oracle on variable-shape instances.
    #[test]
    fn all_engine_configs_agree_on_wide_shapes(instance in wide_instance_strategy()) {
        let data = build_wide_dataset(&instance);
        let template = Template::empty(data.schema());
        let query = Preference::from_dims(
            instance
                .query_choices
                .iter()
                .map(|c| ImplicitPreference::new(c.clone()).unwrap())
                .collect(),
        );

        let ctx = DominanceContext::for_query(&data, &template, &query).unwrap();
        let expected = bnl::skyline(&ctx);

        // Every engine configuration. `IpoTreeTopK(cardinality)` materializes every value, so
        // it must accept (and agree on) arbitrary queries.
        let configs = [
            EngineConfig::SfsD,
            EngineConfig::AdaptiveSfs,
            EngineConfig::IpoTree,
            EngineConfig::IpoTreeTopK(instance.cardinality),
            EngineConfig::BitmapIpoTree,
            EngineConfig::Hybrid { top_k: 1 },
        ];
        for config in configs {
            let engine = SkylineEngine::build(data.clone(), template.clone(), config).unwrap();
            let outcome = engine.query(&query).unwrap();
            prop_assert_eq!(&outcome.skyline, &expected, "config {:?} diverged", config);
        }

        // Both explicit build strategies and the parallel build path produce equivalent trees.
        let mdc = IpoTreeBuilder::new().build(&data, &template).unwrap();
        let direct = IpoTreeBuilder::new()
            .strategy(BuildStrategy::Direct)
            .build(&data, &template)
            .unwrap();
        let parallel = IpoTreeBuilder::new().parallel(true).build(&data, &template).unwrap();
        prop_assert_eq!(&mdc.query(&data, &query).unwrap(), &expected);
        prop_assert_eq!(&direct.query(&data, &query).unwrap(), &expected);
        prop_assert_eq!(&parallel.query(&data, &query).unwrap(), &expected);
    }

    /// On wide shapes, refining a query (appending one more value to some dimension) never
    /// grows the skyline beyond the base answer, and every engine stays consistent with the
    /// refined oracle (Theorem 1 exercised through the public engine API).
    #[test]
    fn refinement_stays_consistent_on_wide_shapes(instance in wide_instance_strategy()) {
        let data = build_wide_dataset(&instance);
        let template = Template::empty(data.schema());
        let base = Preference::from_dims(
            instance
                .query_choices
                .iter()
                .map(|c| ImplicitPreference::new(c.clone()).unwrap())
                .collect(),
        );
        // Refine: append the smallest unlisted value on each dimension (if any).
        let refined = Preference::from_dims(
            instance
                .query_choices
                .iter()
                .map(|c| {
                    let mut choices = c.clone();
                    if let Some(v) =
                        (0..instance.cardinality as ValueId).find(|v| !choices.contains(v))
                    {
                        choices.push(v);
                    }
                    ImplicitPreference::new(choices).unwrap()
                })
                .collect(),
        );
        prop_assert!(refined.refines(&base));

        let base_ctx = DominanceContext::for_query(&data, &template, &base).unwrap();
        let refined_ctx = DominanceContext::for_query(&data, &template, &refined).unwrap();
        let base_sky = bnl::skyline(&base_ctx);
        let refined_sky = bnl::skyline(&refined_ctx);
        for p in &refined_sky {
            prop_assert!(base_sky.contains(p), "refinement admitted new member {}", p);
        }

        let engine = SkylineEngine::build(data.clone(), template.clone(), EngineConfig::IpoTree).unwrap();
        prop_assert_eq!(&engine.query(&base).unwrap().skyline, &base_sky);
        prop_assert_eq!(&engine.query(&refined).unwrap().skyline, &refined_sky);
    }
}
