//! Property-based tests of the paper's formal results:
//!
//! * the dominance relation is a strict partial order;
//! * Property 1 (order containment is dimension-wise);
//! * Theorem 1 (monotonicity of skylines under refinement);
//! * Theorem 2 (the merging property that powers IPO-tree query evaluation).

use proptest::prelude::*;
use skyline::prelude::*;
use skyline_core::algo::bnl;

const CARD: usize = 4;

fn dataset_strategy() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<Vec<ValueId>>)> {
    (1usize..35).prop_flat_map(|rows| {
        let numeric = proptest::collection::vec(
            proptest::collection::vec(0i32..5, rows)
                .prop_map(|v| v.into_iter().map(f64::from).collect()),
            2,
        );
        let nominal =
            proptest::collection::vec(proptest::collection::vec(0..(CARD as ValueId), rows), 2);
        (numeric, nominal)
    })
}

fn build(numeric: Vec<Vec<f64>>, nominal: Vec<Vec<ValueId>>) -> Dataset {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::numeric("y"),
        Dimension::nominal("g", NominalDomain::anonymous(CARD)),
        Dimension::nominal("h", NominalDomain::anonymous(CARD)),
    ])
    .unwrap();
    Dataset::from_columns(schema, numeric, nominal).unwrap()
}

fn preference_strategy() -> impl Strategy<Value = Vec<Vec<ValueId>>> {
    proptest::collection::vec(
        proptest::sample::subsequence((0..CARD as ValueId).collect::<Vec<_>>(), 0..=3)
            .prop_shuffle(),
        2,
    )
}

fn to_preference(choices: &[Vec<ValueId>]) -> Preference {
    Preference::from_dims(
        choices
            .iter()
            .map(|c| ImplicitPreference::new(c.clone()).unwrap())
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn dominance_is_a_strict_partial_order(
        (numeric, nominal) in dataset_strategy(),
        choices in preference_strategy(),
    ) {
        let data = build(numeric, nominal);
        let template = Template::empty(data.schema());
        let pref = to_preference(&choices);
        let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
        let points: Vec<PointId> = data.point_ids().collect();
        for &p in &points {
            // Irreflexive.
            prop_assert!(!ctx.dominates(p, p));
            for &q in &points {
                // Asymmetric.
                if ctx.dominates(p, q) {
                    prop_assert!(!ctx.dominates(q, p), "asymmetry violated for ({p}, {q})");
                }
                // Transitive.
                for &r in &points {
                    if ctx.dominates(p, q) && ctx.dominates(q, r) {
                        prop_assert!(ctx.dominates(p, r), "transitivity violated for ({p}, {q}, {r})");
                    }
                }
            }
        }
    }

    #[test]
    fn property1_containment_is_dimension_wise(choices in preference_strategy()) {
        // R ⊆ R'  iff  Rᵢ ⊆ R'ᵢ for every i — with R the prefix-truncated version of R'.
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal("g", NominalDomain::anonymous(CARD)),
            Dimension::nominal("h", NominalDomain::anonymous(CARD)),
        ])
        .unwrap();
        let full = to_preference(&choices);
        let truncated = Preference::from_dims(
            choices
                .iter()
                .map(|c| ImplicitPreference::new(c.iter().copied().take(1).collect::<Vec<_>>()).unwrap())
                .collect(),
        );
        prop_assert!(full.refines(&truncated));
        let full_orders = full.to_partial_orders(&schema).unwrap();
        let truncated_orders = truncated.to_partial_orders(&schema).unwrap();
        for (t, f) in truncated_orders.iter().zip(&full_orders) {
            prop_assert!(t.is_contained_in(f));
        }
    }

    #[test]
    fn theorem1_monotonicity(
        (numeric, nominal) in dataset_strategy(),
        choices in preference_strategy(),
        extra in proptest::collection::vec(0..(CARD as ValueId), 2),
    ) {
        let data = build(numeric, nominal);
        let template = Template::empty(data.schema());

        // R̃: the base preference; R̃′: a refinement obtained by appending one more value per
        // dimension (when it is not already listed).
        let base = to_preference(&choices);
        let mut refined_choices = choices.clone();
        for (j, &v) in extra.iter().enumerate() {
            if !refined_choices[j].contains(&v) {
                refined_choices[j].push(v);
            }
        }
        let refined = to_preference(&refined_choices);
        prop_assert!(refined.refines(&base));

        let base_ctx = DominanceContext::for_query(&data, &template, &base).unwrap();
        let refined_ctx = DominanceContext::for_query(&data, &template, &refined).unwrap();
        let base_sky = bnl::skyline(&base_ctx);
        let refined_sky = bnl::skyline(&refined_ctx);
        // Theorem 1: a point outside SKY(R̃) can never enter SKY(R̃′).
        for p in &refined_sky {
            prop_assert!(base_sky.contains(p), "point {p} gained skyline membership under a refinement");
        }
    }

    #[test]
    fn theorem2_merging_property(
        (numeric, nominal) in dataset_strategy(),
        other_dim_choice in proptest::sample::subsequence((0..CARD as ValueId).collect::<Vec<_>>(), 0..=2),
        split_values in proptest::sample::subsequence((0..CARD as ValueId).collect::<Vec<_>>(), 2..=CARD).prop_shuffle(),
    ) {
        let data = build(numeric, nominal);
        let template = Template::empty(data.schema());
        let x = split_values.len();

        // R̃′  : v₁ ≺ … ≺ v_{x-1} ≺ ∗ on dimension 0 (plus a fixed preference on dimension 1)
        // R̃″  : v_x ≺ ∗ on dimension 0 (same on dimension 1)
        // R̃‴  : v₁ ≺ … ≺ v_x ≺ ∗ on dimension 0 (same on dimension 1)
        let other = ImplicitPreference::new(other_dim_choice.clone()).unwrap();
        let r_prime = Preference::from_dims(vec![
            ImplicitPreference::new(split_values[..x - 1].to_vec()).unwrap(),
            other.clone(),
        ]);
        let r_double = Preference::from_dims(vec![
            ImplicitPreference::new(vec![split_values[x - 1]]).unwrap(),
            other.clone(),
        ]);
        let r_triple = Preference::from_dims(vec![
            ImplicitPreference::new(split_values.clone()).unwrap(),
            other,
        ]);

        let sky = |pref: &Preference| -> Vec<PointId> {
            let ctx = DominanceContext::for_query(&data, &template, pref).unwrap();
            bnl::skyline(&ctx)
        };
        let sky_prime = sky(&r_prime);
        let sky_double = sky(&r_double);
        let sky_triple = sky(&r_triple);

        // PSKY(R̃′): members of SKY(R̃′) whose dimension-0 value is among v₁ … v_{x-1}.
        let psky: Vec<PointId> = sky_prime
            .iter()
            .copied()
            .filter(|&p| split_values[..x - 1].contains(&data.nominal(p, 0)))
            .collect();
        let mut merged: Vec<PointId> =
            sky_prime.iter().copied().filter(|p| sky_double.contains(p)).collect();
        for p in psky {
            if !merged.contains(&p) {
                merged.push(p);
            }
        }
        merged.sort_unstable();
        prop_assert_eq!(merged, sky_triple);
    }
}
