//! Property-based tests of incremental maintenance (Section 4.3): after any sequence of row
//! insertions and deletions, the maintained structure answers queries exactly like a
//! from-scratch computation over the live rows.

use proptest::prelude::*;
use skyline::prelude::*;
use skyline_core::algo::bnl;

const CARD: usize = 3;

#[derive(Debug, Clone)]
enum Update {
    Insert {
        numeric: Vec<f64>,
        nominal: Vec<ValueId>,
    },
    Delete {
        index: usize,
    },
}

fn update_strategy() -> impl Strategy<Value = Update> {
    prop_oneof![
        (
            proptest::collection::vec(0i32..6, 2),
            proptest::collection::vec(0..(CARD as ValueId), 1),
        )
            .prop_map(|(n, c)| Update::Insert {
                numeric: n.into_iter().map(f64::from).collect(),
                nominal: c,
            }),
        (0usize..64).prop_map(|index| Update::Delete { index }),
    ]
}

fn initial_dataset(rows: &[(Vec<f64>, Vec<ValueId>)]) -> Dataset {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::numeric("y"),
        Dimension::nominal("g", NominalDomain::anonymous(CARD)),
    ])
    .unwrap();
    let mut data = Dataset::empty(schema);
    for (numeric, nominal) in rows {
        data.push_row_ids(numeric, nominal).unwrap();
    }
    data
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn maintained_structure_matches_rebuild(
        initial in proptest::collection::vec(
            (
                proptest::collection::vec(0i32..6, 2).prop_map(|v| v.into_iter().map(f64::from).collect::<Vec<f64>>()),
                proptest::collection::vec(0..(CARD as ValueId), 1),
            ),
            1..20,
        ),
        updates in proptest::collection::vec(update_strategy(), 0..25),
        query_choices in proptest::sample::subsequence((0..CARD as ValueId).collect::<Vec<_>>(), 0..=2).prop_shuffle(),
    ) {
        let data = initial_dataset(&initial);
        let template = Template::empty(data.schema());
        let mut maintained = MaintainedAdaptiveSfs::new(data, template.clone()).unwrap();

        for update in updates {
            match update {
                Update::Insert { numeric, nominal } => {
                    maintained.insert_row(&numeric, &nominal).unwrap();
                }
                Update::Delete { index } => {
                    let total = maintained.dataset().len();
                    let target = (index % total) as PointId;
                    maintained.delete_row(target).unwrap();
                }
            }
        }

        // 1. The maintained template skyline equals a from-scratch skyline over the live rows.
        let ctx = DominanceContext::for_template(maintained.dataset(), &template).unwrap();
        let live: Vec<PointId> = maintained
            .dataset()
            .point_ids()
            .filter(|&p| !maintained.is_deleted(p))
            .collect();
        prop_assert_eq!(maintained.template_skyline(), bnl::skyline_of(&ctx, &live));

        // 2. Query answers equal the brute-force skyline over the live rows.
        let pref = Preference::from_dims(vec![ImplicitPreference::new(query_choices).unwrap()]);
        let query_ctx = DominanceContext::for_query(maintained.dataset(), &template, &pref).unwrap();
        let expected = bnl::skyline_of(&query_ctx, &live);
        prop_assert_eq!(maintained.query(&pref).unwrap(), expected);
    }
}
