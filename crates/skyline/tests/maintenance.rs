//! Property-based tests of incremental maintenance (Section 4.3), now at the engine level:
//! after any interleaved sequence of row insertions, logical deletions and compactions, every
//! mutable engine configuration answers queries exactly like a from-scratch computation over
//! the live rows — and the dominance-region-restricted delete path is equivalent to the full
//! rescan. Frozen (pure IPO-tree) configurations must reject mutations.

use proptest::prelude::*;
use skyline::prelude::*;
use skyline_core::algo::bnl;
use std::sync::Arc;

const CARD: usize = 3;

#[derive(Debug, Clone)]
enum Update {
    Insert {
        numeric: Vec<f64>,
        nominal: Vec<ValueId>,
    },
    Delete {
        index: usize,
    },
    Compact,
}

fn update_strategy() -> impl Strategy<Value = Update> {
    // The vendored proptest shim's `prop_oneof!` is unweighted: compaction ops come out as
    // often as inserts/deletes, which just exercises the compact path harder.
    prop_oneof![
        (
            proptest::collection::vec(0i32..6, 2),
            proptest::collection::vec(0..(CARD as ValueId), 1),
        )
            .prop_map(|(n, c)| Update::Insert {
                numeric: n.into_iter().map(f64::from).collect(),
                nominal: c,
            }),
        (0usize..64).prop_map(|index| Update::Delete { index }),
        (0usize..64).prop_map(|index| Update::Delete { index: index / 2 }),
        Just(Update::Compact),
    ]
}

fn initial_dataset(rows: &[(Vec<f64>, Vec<ValueId>)]) -> Dataset {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::numeric("y"),
        Dimension::nominal("g", NominalDomain::anonymous(CARD)),
    ])
    .unwrap();
    let mut data = Dataset::empty(schema);
    for (numeric, nominal) in rows {
        data.push_row_ids(numeric, nominal).unwrap();
    }
    data
}

type Rows = Vec<(Vec<f64>, Vec<ValueId>)>;

fn rows_strategy() -> impl Strategy<Value = Rows> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0i32..6, 2)
                .prop_map(|v| v.into_iter().map(f64::from).collect::<Vec<f64>>()),
            proptest::collection::vec(0..(CARD as ValueId), 1),
        ),
        1..20,
    )
}

/// Brute-force skyline over the engine's live rows.
fn live_oracle(engine: &SkylineEngine, pref: &Preference) -> Vec<PointId> {
    let ctx = DominanceContext::for_query(engine.dataset(), engine.template(), pref).unwrap();
    let live: Vec<PointId> = engine
        .dataset()
        .point_ids()
        .filter(|&p| engine.is_row_live(p))
        .collect();
    bnl::skyline_of(&ctx, &live)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Mutable configurations: maintained answers equal a from-scratch rebuild after every
    /// interleaving of inserts, deletes and compactions.
    #[test]
    fn mutated_engines_match_rebuild_for_every_mutable_config(
        initial in rows_strategy(),
        updates in proptest::collection::vec(update_strategy(), 0..25),
        query_choices in proptest::sample::subsequence((0..CARD as ValueId).collect::<Vec<_>>(), 0..=2).prop_shuffle(),
    ) {
        let data = initial_dataset(&initial);
        let template = Template::empty(data.schema());
        let data = Arc::new(data);
        let pref = Preference::from_dims(vec![ImplicitPreference::new(query_choices).unwrap()]);

        for config in [
            EngineConfig::SfsD,
            EngineConfig::AdaptiveSfs,
            EngineConfig::Hybrid { top_k: 2 },
        ] {
            let mut engine =
                SkylineEngine::build(data.clone(), template.clone(), config).unwrap();
            prop_assert!(engine.supports_mutation());
            let mut epoch = engine.epoch();
            prop_assert_eq!(epoch, DatasetEpoch::INITIAL);

            for update in &updates {
                match update {
                    Update::Insert { numeric, nominal } => {
                        let next = engine.insert_row(numeric, nominal).unwrap();
                        prop_assert!(next > epoch, "inserts must bump the epoch");
                        epoch = next;
                    }
                    Update::Delete { index } => {
                        let total = engine.dataset().len();
                        let target = (index % total) as PointId;
                        let was_live = engine.is_row_live(target);
                        let next = engine.delete_row(target).unwrap();
                        prop_assert_eq!(
                            next > epoch,
                            was_live,
                            "exactly the live deletes bump the epoch"
                        );
                        epoch = next;
                    }
                    Update::Compact => {
                        if let Some(asfs) = engine.adaptive_mut() {
                            asfs.compact();
                        }
                    }
                }
            }

            // The engine's answers equal the brute-force skyline over the live rows.
            let expected = live_oracle(&engine, &pref);
            prop_assert_eq!(
                engine.query(&pref).unwrap().skyline,
                expected,
                "config {:?}",
                config
            );
            // And the maintained template skyline (when there is one) equals a rebuild.
            if let Some(asfs) = engine.adaptive() {
                let ctx = DominanceContext::for_template(
                    engine.dataset(),
                    engine.template(),
                ).unwrap();
                let live: Vec<PointId> = engine
                    .dataset()
                    .point_ids()
                    .filter(|&p| engine.is_row_live(p))
                    .collect();
                prop_assert_eq!(asfs.template_skyline(), bnl::skyline_of(&ctx, &live));
            }
            // query_at: the current epoch is accepted, a stale one is rejected.
            let mut scratch = EngineScratch::default();
            prop_assert!(engine.query_at(&pref, engine.epoch(), &mut scratch).is_ok());
            engine.insert_row(&[0.0, 0.0], &[0]).unwrap();
            prop_assert!(matches!(
                engine.query_at(&pref, epoch, &mut scratch),
                Err(SkylineError::EpochMismatch { .. })
            ));
        }
    }

    /// The dominance-region-restricted delete path is exactly equivalent to the full live
    /// rescan, and never tests more resurface candidates.
    #[test]
    fn restricted_delete_equals_full_rescan(
        initial in rows_strategy(),
        updates in proptest::collection::vec(update_strategy(), 0..25),
    ) {
        let data = initial_dataset(&initial);
        let template = Template::empty(data.schema());
        let mut restricted = AdaptiveSfs::build(data, &template).unwrap();
        let mut full = restricted.clone();

        for update in &updates {
            match update {
                Update::Insert { numeric, nominal } => {
                    restricted.insert_row(numeric, nominal).unwrap();
                    full.insert_row(numeric, nominal).unwrap();
                }
                Update::Delete { index } => {
                    let target = (index % restricted.dataset().len()) as PointId;
                    let a = restricted.delete_row(target).unwrap();
                    let b = full.delete_row_rescan_all(target).unwrap();
                    prop_assert_eq!(a, b);
                }
                Update::Compact => {
                    restricted.compact();
                    full.compact();
                }
            }
            prop_assert_eq!(restricted.template_skyline(), full.template_skyline());
        }
        prop_assert!(
            restricted.maintenance_stats().resurface_candidates
                <= full.maintenance_stats().resurface_candidates,
            "restricted path tested {} candidates, full path {}",
            restricted.maintenance_stats().resurface_candidates,
            full.maintenance_stats().resurface_candidates,
        );
    }

    /// Frozen configurations reject mutations and stay at the initial epoch.
    #[test]
    fn frozen_configs_reject_mutations(initial in rows_strategy()) {
        let data = Arc::new(initial_dataset(&initial));
        let template = Template::empty(data.schema());
        for config in [
            EngineConfig::IpoTree,
            EngineConfig::IpoTreeTopK(2),
            EngineConfig::BitmapIpoTree,
        ] {
            let mut engine =
                SkylineEngine::build(data.clone(), template.clone(), config).unwrap();
            prop_assert!(!engine.supports_mutation());
            prop_assert!(engine.insert_row(&[0.0, 0.0], &[0]).is_err());
            prop_assert!(engine.delete_row(0).is_err());
            prop_assert_eq!(engine.epoch(), DatasetEpoch::INITIAL);
            prop_assert_eq!(engine.live_rows(), engine.dataset().len());
        }
    }
}

/// The hybrid engine never answers from its stale tree after a mutation: every preference —
/// including ones the tree fully materializes — routes to the maintained Adaptive-SFS side
/// and matches the oracle.
#[test]
fn hybrid_engine_abandons_stale_tree_after_mutation() {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::nominal("g", NominalDomain::anonymous(3)),
    ])
    .unwrap();
    let mut data = Dataset::empty(schema.clone());
    for (x, g) in [(3.0, 0), (2.0, 1), (1.0, 2), (5.0, 0)] {
        data.push_row_ids(&[x], &[g]).unwrap();
    }
    let template = Template::empty(&schema);
    let mut engine =
        SkylineEngine::build(data, template, EngineConfig::Hybrid { top_k: 3 }).unwrap();
    let pref = Preference::from_dims(vec![ImplicitPreference::new([0]).unwrap()]);

    // Fresh engine: the fully materialized preference is answered by the tree.
    assert_eq!(engine.query(&pref).unwrap().method, MethodUsed::IpoTree);

    // Insert a row that changes this very answer: value 0 with the global minimum x.
    engine.insert_row(&[0.0], &[0]).unwrap();
    let outcome = engine.query(&pref).unwrap();
    assert_eq!(
        outcome.method,
        MethodUsed::AdaptiveSfs,
        "a stale tree must never answer"
    );
    assert_eq!(outcome.skyline, live_oracle(&engine, &pref));

    // Deletes reroute too, and answers track the shrinking live set.
    engine.delete_row(4).unwrap();
    let outcome = engine.query(&pref).unwrap();
    assert_eq!(outcome.method, MethodUsed::AdaptiveSfs);
    assert_eq!(outcome.skyline, live_oracle(&engine, &pref));
}

/// The tree-drift regression: churn that pushes a materialized value out of the top k used to
/// re-materialize a different value set on rebuild, so preferences previously served from the
/// tree silently regressed to the Adaptive-SFS fallback forever. With hysteresis the value is
/// retained until it falls *well* out of the top k.
#[test]
fn rebuilt_truncated_tree_keeps_serving_churned_preferences() {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::nominal("g", NominalDomain::anonymous(CARD)),
    ])
    .unwrap();
    let mut data = Dataset::empty(schema.clone());
    // Value 0 is the clear top-1: frequencies 0 → 3, 1 → 2, 2 → 1.
    for (x, g) in [(3.0, 0), (4.0, 0), (5.0, 0), (2.0, 1), (6.0, 1), (1.0, 2)] {
        data.push_row_ids(&[x], &[g]).unwrap();
    }
    let template = Template::empty(&schema);
    let engine = SharedEngine::new(
        SkylineEngine::build(Arc::new(data), template, EngineConfig::Hybrid { top_k: 1 }).unwrap(),
    );
    let pref = Preference::from_dims(vec![ImplicitPreference::first_order(0)]);
    assert!(engine.read().serves_from_tree(&pref));
    assert_eq!(
        engine.read().query(&pref).unwrap().method,
        MethodUsed::IpoTree
    );

    // Churn: value 1 overtakes value 0 (frequencies 1 → 4, 0 → 3) and the rebuild
    // re-materializes. Value 0 is now rank 2 — inside the 2k hysteresis window — so the
    // rebuilt tree keeps it and the preference stays on the tree path.
    for x in [7.0, 8.0] {
        engine.write().insert_row(&[x], &[1]).unwrap();
    }
    engine.rebuild_now().unwrap();
    assert!(
        engine.read().serves_from_tree(&pref),
        "a displaced-but-close value must stay materialized across the rebuild"
    );
    let outcome = engine.read().query(&pref).unwrap();
    assert_eq!(outcome.method, MethodUsed::IpoTree);
    assert_eq!(outcome.skyline, live_oracle(&engine.read(), &pref));

    // Heavier churn: value 2 overtakes too (2 → 5), pushing value 0 to rank 3 — outside the
    // window. The rebuild demotes it and the engine falls back, still correctly.
    for x in [9.0, 10.0, 11.0, 12.0] {
        engine.write().insert_row(&[x], &[2]).unwrap();
    }
    engine.rebuild_now().unwrap();
    assert!(!engine.read().serves_from_tree(&pref));
    let outcome = engine.read().query(&pref).unwrap();
    assert_eq!(outcome.method, MethodUsed::AdaptiveSfs);
    assert_eq!(outcome.skyline, live_oracle(&engine.read(), &pref));
}
