//! Additional cross-crate invariant tests: progressiveness of Adaptive SFS, consistency of the
//! materialized first-order skylines inside the IPO tree, statistics sanity, and preference
//! round-trips through the textual syntax.

use proptest::prelude::*;
use skyline::prelude::*;
use skyline_core::algo::bnl;
use skyline_core::stats;
use skyline_ipo::build::first_order_preference;

const CARD: usize = 4;

fn dataset_strategy() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<Vec<ValueId>>)> {
    (1usize..30).prop_flat_map(|rows| {
        let numeric = proptest::collection::vec(
            proptest::collection::vec(0i32..5, rows)
                .prop_map(|v| v.into_iter().map(f64::from).collect()),
            2,
        );
        let nominal =
            proptest::collection::vec(proptest::collection::vec(0..(CARD as ValueId), rows), 2);
        (numeric, nominal)
    })
}

fn build(numeric: Vec<Vec<f64>>, nominal: Vec<Vec<ValueId>>) -> std::sync::Arc<Dataset> {
    let schema = Schema::new(vec![
        Dimension::numeric("x"),
        Dimension::numeric("y"),
        Dimension::nominal("g", NominalDomain::anonymous(CARD)),
        Dimension::nominal("h", NominalDomain::anonymous(CARD)),
    ])
    .unwrap();
    std::sync::Arc::new(Dataset::from_columns(schema, numeric, nominal).unwrap())
}

fn preference_strategy() -> impl Strategy<Value = Vec<Vec<ValueId>>> {
    proptest::collection::vec(
        proptest::sample::subsequence((0..CARD as ValueId).collect::<Vec<_>>(), 0..=3)
            .prop_shuffle(),
        2,
    )
}

fn to_preference(choices: &[Vec<ValueId>]) -> Preference {
    Preference::from_dims(
        choices
            .iter()
            .map(|c| ImplicitPreference::new(c.clone()).unwrap())
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Every prefix of the progressive stream is a subset of the final skyline, the stream has
    /// no duplicates, and the scores of the emitted points never decrease.
    #[test]
    fn progressive_stream_is_prefix_closed_and_monotone(
        (numeric, nominal) in dataset_strategy(),
        choices in preference_strategy(),
    ) {
        let data = build(numeric, nominal);
        let template = Template::empty(data.schema());
        let pref = to_preference(&choices);
        let asfs = AdaptiveSfs::build(data.clone(), &template).unwrap();
        let full = asfs.query(&pref).unwrap();
        let score = skyline_core::score::ScoreFn::for_preference(data.schema(), &pref).unwrap();

        let mut seen = std::collections::HashSet::new();
        let mut last_score = f64::NEG_INFINITY;
        for p in asfs.query_progressive(&pref).unwrap() {
            prop_assert!(full.contains(&p), "streamed point {p} is not in the final skyline");
            prop_assert!(seen.insert(p), "point {p} streamed twice");
            let s = score.score(&data, p);
            prop_assert!(s >= last_score - 1e-9, "scores must be non-decreasing");
            last_score = s;
        }
        prop_assert_eq!(seen.len(), full.len());
    }

    /// The first-order skylines materialized inside the IPO tree agree with (a) the query path
    /// through the same tree and (b) the brute-force oracle.
    #[test]
    fn materialized_first_order_skylines_are_consistent(
        (numeric, nominal) in dataset_strategy(),
        g_choice in proptest::option::of(0..CARD as ValueId),
        h_choice in proptest::option::of(0..CARD as ValueId),
    ) {
        let data = build(numeric, nominal);
        let template = Template::empty(data.schema());
        let tree = IpoTreeBuilder::new().build(&data, &template).unwrap();
        let choices = [g_choice, h_choice];
        let materialized = tree.first_order_skyline(&choices).unwrap();
        let pref = first_order_preference(2, &choices);
        prop_assert_eq!(&materialized, &tree.query(&data, &pref).unwrap());
        let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
        prop_assert_eq!(&materialized, &bnl::skyline(&ctx));
    }

    /// Statistics are internally consistent: AFFECT ⊆ SKY(R), SKY(R') ⊆ SKY(R), and the three
    /// percentages stay within [0, 100].
    #[test]
    fn statistics_are_bounded_and_consistent(
        (numeric, nominal) in dataset_strategy(),
        choices in preference_strategy(),
    ) {
        let data = build(numeric, nominal);
        let template = Template::empty(data.schema());
        let pref = to_preference(&choices);
        let template_ctx = DominanceContext::for_template(&data, &template).unwrap();
        let template_sky = bnl::skyline(&template_ctx);
        let query_ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
        let query_sky = bnl::skyline(&query_ctx);

        let affected = stats::affected_points(&data, &template_sky, &pref);
        for p in &affected {
            prop_assert!(template_sky.contains(p));
        }
        for p in &query_sky {
            prop_assert!(template_sky.contains(p), "Theorem 1: SKY(R') ⊆ SKY(R)");
        }
        let s = stats::collect_stats(&data, &template_sky, &query_sky, &pref);
        for pct in [s.template_skyline_pct(), s.affected_pct(), s.query_skyline_pct()] {
            prop_assert!((0.0..=100.0 + 1e-9).contains(&pct));
        }
        prop_assert_eq!(s.affected, affected.len());
        prop_assert_eq!(s.dataset_size, data.len());
    }

    /// Formatting a preference with schema labels and re-parsing it is the identity.
    #[test]
    fn preference_display_parse_roundtrip(choices in preference_strategy()) {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::nominal_with_labels("g", ["g0", "g1", "g2", "g3"]),
            Dimension::nominal_with_labels("h", ["h0", "h1", "h2", "h3"]),
        ])
        .unwrap();
        let pref = to_preference(&choices);
        pref.validate(&schema).unwrap();
        // Render each dimension back to its textual form and parse it again.
        let mut specs: Vec<(String, String)> = Vec::new();
        for (j, name) in ["g", "h"].iter().enumerate() {
            let domain = schema.nominal_domain(j).unwrap();
            let text = pref
                .dim(j)
                .choices()
                .iter()
                .map(|&v| domain.label(v).unwrap().to_string())
                .chain(std::iter::once("*".to_string()))
                .collect::<Vec<_>>()
                .join(" < ");
            specs.push((name.to_string(), text));
        }
        let reparsed = Preference::parse(
            &schema,
            specs.iter().map(|(d, t)| (d.as_str(), t.as_str())),
        )
        .unwrap();
        prop_assert_eq!(reparsed, pref);
    }
}

/// The hybrid engine never returns an error for valid refinements of its template, regardless
/// of whether the listed values are materialized.
#[test]
fn hybrid_engine_total_over_valid_queries() {
    let config = ExperimentConfig {
        n: 600,
        numeric_dims: 2,
        nominal_dims: 2,
        cardinality: 12,
        theta: 1.0,
        pref_order: 3,
        distribution: Distribution::AntiCorrelated,
        seed: 77,
    };
    let data = std::sync::Arc::new(config.generate_dataset());
    let template = config.template(&data);
    let engine = SkylineEngine::build(
        data.clone(),
        template.clone(),
        EngineConfig::Hybrid { top_k: 2 },
    )
    .unwrap();
    let mut generator = config.query_generator();
    for order in 1..=4 {
        for _ in 0..10 {
            let pref = generator.random_preference(data.schema(), &template, order, None);
            let outcome = engine.query(&pref).unwrap();
            let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
            assert_eq!(outcome.skyline, bnl::skyline(&ctx));
        }
    }
}
